"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
