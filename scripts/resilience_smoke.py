"""End-to-end SIGINT/resume smoke test across real process boundaries.

    PYTHONPATH=src python scripts/resilience_smoke.py

The orchestrator spawns three child processes against one tiny synthetic
corpus, driven by the shared process harness in
``tests/training/faults.py`` (spawn in own group, marker-synchronized
signals, orphan sweep):

1. ``reference`` — trains uninterrupted and records its history + final
   parameters;
2. ``victim``    — same run with snapshotting enabled; the orchestrator
   sends it a real SIGINT once epoch 2 is done, and the trainer's signal
   handler writes a final graceful snapshot before exiting 130;
3. ``resume``    — a fresh process that resumes from the victim's snapshot
   directory and records its history + final parameters.

The smoke test passes iff the resumed run's history and parameters are
**identical** to the reference run's — the bit-exact-resume guarantee of
`repro.training.resilience`, exercised with genuine signals and process
restarts rather than in-process simulation. Exits non-zero on any mismatch.
"""

import json
import os
import sys
import tempfile

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests", "training"))

EPOCHS = 4
INTERRUPT_AFTER_EPOCH = 2

# Children re-enter this file through ``python -c`` (how the harness spawns
# processes); argv then carries the role line main() dispatches on.
_CHILD_SCRIPT = (
    "import runpy, sys\n"
    f"runpy.run_path({os.path.abspath(__file__)!r}, run_name='__main__')\n"
)


def _train(snapshot_dir=None, resume=False):
    """One deterministic tiny run; returns (trainer, model)."""
    from repro.data import BatchIterator, QGDataset
    from repro.data.synthetic import SyntheticConfig, generate_corpus
    from repro.models import ModelConfig, build_model
    from repro.training import ResilienceConfig, Trainer, TrainerConfig

    corpus = generate_corpus(SyntheticConfig(num_train=24, num_dev=8, num_test=1, seed=5))
    encoder, decoder = QGDataset.build_vocabs(corpus.train, 500, 120)
    train_set = QGDataset(corpus.train, encoder, decoder)
    dev_set = QGDataset(corpus.dev, encoder, decoder)
    model = build_model(
        "acnn",
        ModelConfig(embedding_dim=12, hidden_size=16, num_layers=1, dropout=0.3, seed=0),
        len(encoder),
        len(decoder),
    )
    resilience = None
    if snapshot_dir is not None:
        resilience = ResilienceConfig(directory=snapshot_dir, handle_signals=True)
    trainer = Trainer(
        model,
        BatchIterator(train_set, batch_size=8, seed=0),
        BatchIterator(dev_set, batch_size=8, shuffle=False),
        TrainerConfig(epochs=EPOCHS, learning_rate=0.5),
        epoch_callback=lambda r: print(f"EPOCH {r.epoch} DONE", flush=True),
        resilience=resilience,
    )
    trainer.train(resume_from=snapshot_dir if resume else None)
    return trainer, model


def _dump(trainer, model, out_prefix):
    from repro.tensor.serialization import save_arrays

    with open(out_prefix + ".history.json", "w", encoding="utf-8") as handle:
        json.dump(trainer.history.to_payload(), handle)
    save_arrays(out_prefix + ".params.npz", model.state_dict())


def _child(role, snapdir, out_prefix):
    from repro.training import TrainingInterrupted

    if role == "reference":
        trainer, model = _train()
        _dump(trainer, model, out_prefix)
    elif role == "victim":
        try:
            _train(snapshot_dir=snapdir)
        except TrainingInterrupted as exc:
            print(f"interrupted, snapshot at {exc.snapshot_path}", flush=True)
            return 130
        print("victim was never interrupted", file=sys.stderr)
        return 1
    elif role == "resume":
        trainer, model = _train(snapshot_dir=snapdir, resume=True)
        _dump(trainer, model, out_prefix)
    return 0


def _spawn(role, snapdir, out_prefix):
    from faults import spawn_process

    env = {
        "PYTHONPATH": os.path.join(REPO_ROOT, "src")
        + os.pathsep
        + os.environ.get("PYTHONPATH", "")
    }
    return spawn_process(
        _CHILD_SCRIPT,
        args=["--role", role, snapdir, out_prefix],
        env=env,
        cwd=REPO_ROOT,
    )


def _orchestrate():
    import numpy as np

    from faults import assert_no_orphans, interrupt_group, wait_for_marker

    from repro.tensor.serialization import load_arrays

    with tempfile.TemporaryDirectory() as workdir:
        snapdir = os.path.join(workdir, "snapshots")
        ref_prefix = os.path.join(workdir, "reference")
        res_prefix = os.path.join(workdir, "resumed")

        print("[1/3] reference run (uninterrupted)", flush=True)
        reference = _spawn("reference", snapdir, ref_prefix)
        assert reference.wait(timeout=600) == 0, "reference run failed"

        print(f"[2/3] victim run (SIGINT after epoch {INTERRUPT_AFTER_EPOCH})", flush=True)
        victim = _spawn("victim", snapdir, ref_prefix)
        seen = wait_for_marker(
            victim, f"EPOCH {INTERRUPT_AFTER_EPOCH} DONE", timeout=600
        )
        for line in seen:
            print(f"  victim: {line}", flush=True)
        interrupt_group(victim)
        code = victim.wait(timeout=600)
        assert code == 130, f"victim should exit 130 after graceful SIGINT, got {code}"
        assert_no_orphans([victim.pid])

        print("[3/3] resume run (fresh process)", flush=True)
        resumed = _spawn("resume", snapdir, res_prefix)
        assert resumed.wait(timeout=600) == 0, "resume run failed"

        with open(ref_prefix + ".history.json", encoding="utf-8") as handle:
            ref_history = json.load(handle)
        with open(res_prefix + ".history.json", encoding="utf-8") as handle:
            res_history = json.load(handle)
        assert ref_history == res_history, (
            "resumed history differs from uninterrupted run:\n"
            f"  reference: {ref_history}\n  resumed:   {res_history}"
        )

        ref_params = load_arrays(ref_prefix + ".params.npz")
        res_params = load_arrays(res_prefix + ".params.npz")
        assert set(ref_params) == set(res_params)
        for name in ref_params:
            assert np.array_equal(ref_params[name], res_params[name]), (
                f"parameter {name} differs after resume"
            )

    print("resilience smoke test: OK (bit-exact resume across SIGINT + process restart)")
    return 0


def main() -> int:
    if len(sys.argv) >= 4 and sys.argv[1] == "--role":
        return _child(sys.argv[2], sys.argv[3], sys.argv[4])
    return _orchestrate()


if __name__ == "__main__":
    raise SystemExit(main())
