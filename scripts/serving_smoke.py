"""End-to-end serving smoke test: a 200-request chaos fleet, fully checked.

    PYTHONPATH=src python scripts/serving_smoke.py [output_dir]

Builds a tiny ACNN, wraps it in the hardened inference service with every
fault type armed at a 10% per-request rate, and drives 200 requests (plus
a sprinkle of garbage traffic) through the micro-batcher on a manual
clock. Then checks the serving layer's whole contract:

1. zero uncaught exceptions — every request resolves to a typed outcome;
2. >= 90% of the valid requests are served (any degradation rung counts);
3. the accounting is consistent: outcomes, the service ledger, and the
   telemetry counters all agree, rung-by-rung and shed-reason-by-reason;
4. faults were actually injected (the run proves resilience, not luck);
5. a second run with the same seed is byte-identical;
6. the telemetry trace is schema-valid end to end;
7. a mixed-length chaos fleet through the continuous-batching engine
   sustains >= 1.5x the static micro-batcher's served-requests per
   simulated second (per-boundary stall faults advance a manual clock at
   every encode/decode step, so "time" is deterministic step accounting),
   byte-identical across repeat runs; the comparison is written to
   ``BENCH_continuous_batching.json`` in the repo root.

The trace is left under ``<output_dir>`` (default ``results/serving``) so
CI can upload it as an artifact. Exits non-zero on any violation.
"""

import os
import sys
from collections import Counter

import numpy as np

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

NUM_REQUESTS = 200
FAULT_RATE = 0.10
SEED = 7

SENTENCES = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "tovenka built the glass spire .",
    "the ilex bridge spans the morda .",
]
QUESTIONS = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who built the glass spire ?",
    "what spans the morda ?",
]
GARBAGE = ["", "   ", "\t", "zzzq xxkw qqpy vvmn jjwz"]  # rejected, not crashed


def build_fleet(trace_path: str | None):
    from repro.data import QGDataset, QGExample
    from repro.models import ModelConfig, build_model
    from repro.observability import JsonlSink, Telemetry
    from repro.serving import (
        FaultPlan,
        InferenceService,
        ManualClock,
        MicroBatcher,
        ServiceConfig,
    )

    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()),
                  question=tuple(q.split()))
        for s, q in zip(SENTENCES, QUESTIONS)
    ]
    encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=3)
    model = build_model("acnn", config, len(encoder), len(decoder))

    telemetry = Telemetry([JsonlSink(trace_path)]) if trace_path else Telemetry([])
    service = InferenceService(
        model,
        encoder,
        decoder,
        config=ServiceConfig(default_deadline_seconds=2.0),
        clock=ManualClock(),
        telemetry=telemetry,
        fault_plan=FaultPlan(
            seed=SEED,
            per_request=True,
            nan_rate=FAULT_RATE,
            slow_rate=FAULT_RATE,
            error_rate=FAULT_RATE,
            slow_seconds=0.2,
        ),
    )
    batcher = MicroBatcher(service, max_batch=4, queue_limit=16)
    return service, batcher, telemetry


def request_texts() -> list[str]:
    words = sorted({w for s in SENTENCES for w in s.split() if w != "."})
    rng = np.random.default_rng(555)
    texts = []
    for index in range(NUM_REQUESTS):
        if index % 40 == 17:  # garbage traffic rides along
            texts.append(GARBAGE[(index // 40) % len(GARBAGE)])
        else:
            size = int(rng.integers(3, 7))
            texts.append(" ".join(rng.choice(words, size=size)))
    return texts


def run_fleet(trace_path: str | None):
    from repro.serving import GenerationRequest

    service, batcher, telemetry = build_fleet(trace_path)
    outcomes = []
    for index, text in enumerate(request_texts()):
        outcome = batcher.submit(
            GenerationRequest(text, request_id=f"req-{index:03d}", beam_size=3, max_length=12)
        )
        if outcome is not None:
            outcomes.append(outcome)
        if (index + 1) % 4 == 0:
            outcomes.extend(batcher.drain())
    outcomes.extend(batcher.drain())
    report = service.report()
    telemetry.close()
    return outcomes, report


def rows(outcomes):
    out = []
    for o in sorted(outcomes, key=lambda o: o.request_id):
        if o.result is not None:
            out.append((o.request_id, o.status, o.result.tokens, o.result.rung, o.result.attempts))
        else:
            out.append((o.request_id, o.status, o.error, o.reason))
    return out


# ----------------------------------------------------------------------
# Static vs. continuous throughput under a mixed-length chaos fleet
# ----------------------------------------------------------------------
BENCH_REQUESTS = 96
STEP_SECONDS = 0.05
LENGTH_MIX = [4, 8, 12]  # cohabiting short/medium/long requests
MIN_SPEEDUP = 1.5


def build_bench_service():
    """A service whose every encode/step boundary costs STEP_SECONDS of
    simulated time (batch-size-independent step cost), with a sprinkle of
    NaN and error chaos riding along — all on a manual clock."""
    from repro.data import QGDataset, QGExample
    from repro.models import ModelConfig, build_model
    from repro.observability import Telemetry
    from repro.serving import FaultPlan, InferenceService, ManualClock, ServiceConfig

    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()),
                  question=tuple(q.split()))
        for s, q in zip(SENTENCES, QUESTIONS)
    ]
    encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=3)
    model = build_model("acnn", config, len(encoder), len(decoder))
    clock = ManualClock()
    service = InferenceService(
        model,
        encoder,
        decoder,
        # Deadlines off the table: this phase measures pure throughput.
        config=ServiceConfig(default_deadline_seconds=10_000.0),
        clock=clock,
        telemetry=Telemetry([]),
        fault_plan=FaultPlan(
            seed=SEED,
            slow_rate=1.0,
            slow_seconds=STEP_SECONDS,
            nan_rate=0.01,
            error_rate=0.01,
        ),
    )
    return service, clock


def bench_requests():
    from repro.serving import GenerationRequest

    words = sorted({w for s in SENTENCES for w in s.split() if w != "."})
    rng = np.random.default_rng(777)
    requests = []
    for index in range(BENCH_REQUESTS):
        size = int(rng.integers(3, 7))
        requests.append(
            GenerationRequest(
                " ".join(rng.choice(words, size=size)),
                request_id=f"bench-{index:03d}",
                beam_size=3,
                max_length=LENGTH_MIX[index % len(LENGTH_MIX)],
            )
        )
    return requests


def run_static_bench():
    from repro.serving import MicroBatcher

    service, clock = build_bench_service()
    batcher = MicroBatcher(service, max_batch=4, queue_limit=BENCH_REQUESTS)
    outcomes = []
    for request in bench_requests():
        outcome = batcher.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
    outcomes.extend(batcher.drain())
    return outcomes, clock.now(), service


def run_continuous_bench():
    from repro.serving import ContinuousBatchingEngine, EngineConfig

    service, clock = build_bench_service()
    engine = ContinuousBatchingEngine(
        service,
        EngineConfig(max_rows=12, queue_limit=BENCH_REQUESTS, admit_per_step=4, pad_to=12),
    )
    outcomes = []
    for request in bench_requests():
        outcome = engine.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
    outcomes.extend(engine.drain())
    return outcomes, clock.now(), service, engine


def run_throughput_bench(bench_path: str):
    import json

    static_outcomes, static_seconds, _ = run_static_bench()
    continuous_outcomes, continuous_seconds, service, engine = run_continuous_bench()

    repeat_outcomes, repeat_seconds, _, _ = run_continuous_bench()
    assert rows(continuous_outcomes) == rows(repeat_outcomes), (
        "continuous bench differs across identical runs"
    )
    assert continuous_seconds == repeat_seconds

    static_served = sum(1 for o in static_outcomes if o.status == "served")
    continuous_served = sum(1 for o in continuous_outcomes if o.status == "served")
    assert len(static_outcomes) == len(continuous_outcomes) == BENCH_REQUESTS
    assert static_served >= 0.9 * BENCH_REQUESTS
    assert continuous_served >= 0.9 * BENCH_REQUESTS

    static_rate = static_served / static_seconds
    continuous_rate = continuous_served / continuous_seconds
    speedup = continuous_rate / static_rate

    payload = {
        "benchmark": "continuous_batching",
        "description": (
            "served-requests per simulated second, mixed-length chaos fleet "
            "(beam 3, lengths 4/8/12 interleaved): step-level continuous "
            "batching vs the static MicroBatcher. Every encode/decode "
            "boundary costs one deterministic clock stall, so throughput is "
            "pure step accounting; NaN/error chaos rides along."
        ),
        "command": "PYTHONPATH=src python scripts/serving_smoke.py",
        "requests": BENCH_REQUESTS,
        "step_seconds": STEP_SECONDS,
        "length_mix": LENGTH_MIX,
        "static": {
            "frontend": "MicroBatcher(max_batch=4)",
            "served": static_served,
            "sim_seconds": round(static_seconds, 2),
            "served_per_sim_second": round(static_rate, 3),
        },
        "continuous": {
            "frontend": "ContinuousBatchingEngine(max_rows=12, admit_per_step=4)",
            "served": continuous_served,
            "sim_seconds": round(continuous_seconds, 2),
            "served_per_sim_second": round(continuous_rate, 3),
            "engine_stats": engine.stats.as_dict(),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "byte_identical_repeat": True,
    }
    with open(bench_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(
        f"      static:     {static_served}/{BENCH_REQUESTS} served in "
        f"{static_seconds:.2f}s sim -> {static_rate:.3f} req/s", flush=True,
    )
    print(
        f"      continuous: {continuous_served}/{BENCH_REQUESTS} served in "
        f"{continuous_seconds:.2f}s sim -> {continuous_rate:.3f} req/s "
        f"({speedup:.2f}x)", flush=True,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"continuous batching speedup {speedup:.2f}x < required {MIN_SPEEDUP}x"
    )
    return payload


def main() -> int:
    from repro.observability import read_trace

    output_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join("results", "serving")
    os.makedirs(output_dir, exist_ok=True)
    trace_path = os.path.join(output_dir, "trace.jsonl")
    if os.path.exists(trace_path):
        os.remove(trace_path)

    print(f"[1/5] chaos fleet: {NUM_REQUESTS} requests, {FAULT_RATE:.0%} fault rate "
          f"per kind -> {trace_path}", flush=True)
    outcomes, report = run_fleet(trace_path)

    assert len(outcomes) == NUM_REQUESTS, (
        f"request accounting leak: {len(outcomes)} outcomes for {NUM_REQUESTS} requests"
    )
    statuses = Counter(o.status for o in outcomes)
    valid = NUM_REQUESTS - statuses.get("rejected", 0)
    served = statuses.get("served", 0)
    print(f"      outcomes: {dict(statuses)}; injected: {report['injected']}", flush=True)
    assert sum(report["injected"].values()) > 0, "no faults injected; chaos proves nothing"
    assert served >= 0.9 * valid, f"served {served}/{valid} valid requests (< 90%)"

    print("[2/5] checking ledger consistency", flush=True)
    assert report["served"] == served
    assert report["rejected"] == statuses.get("rejected", 0)
    assert report["shed"] == statuses.get("shed", 0)
    assert report["failed"] == statuses.get("failed", 0)
    assert sum(report["served_by_rung"].values()) == served
    assert sum(report["shed_by_reason"].values()) == report["shed"]

    print("[3/5] validating the telemetry trace", flush=True)
    records = list(read_trace(trace_path))  # raises SchemaViolation on any bad line
    counters = Counter()
    for record in records:
        if record["kind"] == "counter":
            counters[record["name"]] += record["value"]
    assert counters.get("serving.served", 0) == served, "serving.served counter drifted"
    for rung, count in report["served_by_rung"].items():
        assert counters.get(f"serving.rung.{rung}", 0) == count, f"rung counter {rung} drifted"
    for reason, count in report["shed_by_reason"].items():
        assert counters.get(f"serving.shed.{reason}", 0) == count, f"shed counter {reason} drifted"

    print("[4/5] repeat run must be byte-identical", flush=True)
    outcomes_again, report_again = run_fleet(None)
    assert rows(outcomes) == rows(outcomes_again), "outputs differ across identical runs"
    assert report == report_again, "accounting differs across identical runs"

    bench_path = os.path.join(REPO_ROOT, "BENCH_continuous_batching.json")
    print(f"[5/5] static vs continuous throughput -> {bench_path}", flush=True)
    bench = run_throughput_bench(bench_path)

    degraded = served - report["served_by_rung"].get("beam", 0)
    print(
        f"serving smoke test: OK ({served}/{valid} valid requests served, "
        f"{degraded} degraded, {statuses.get('rejected', 0)} rejected, "
        f"{report['shed']} shed, {report['failed']} failed; "
        f"{sum(report['injected'].values())} faults injected; "
        f"continuous batching {bench['speedup']:.2f}x static)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
