"""Assemble EXPERIMENTS.md from the recorded result JSON files.

    python scripts/write_experiments_md.py

Reads results/table1_default.json and results/table2_default.json plus the
paper's published numbers and writes the paper-vs-measured record. Run after
`scripts/run_default_experiments.py` (or the dedicated table runners).
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.evaluation.reporting import format_markdown_table
from repro.experiments.table1 import PAPER_TABLE1
from repro.experiments.table2 import PAPER_TABLE2

ROOT = os.path.join(os.path.dirname(__file__), "..")
RESULTS = os.path.join(ROOT, "results")


def _load(name):
    with open(os.path.join(RESULTS, name), encoding="utf-8") as handle:
        return json.load(handle)


HEADER = """\
# EXPERIMENTS — paper vs. measured

All measured numbers come from the `DEFAULT` experiment scale (synthetic
SQuAD-style corpus: 2,000/250/250 examples; 2-layer LSTMs, hidden 48,
embeddings 32; SGD lr 1.0 halved at epoch 10 of 14; dropout 0.3; beam 3 —
the paper's recipe at CPU dimensions, see DESIGN.md). Regenerate with
`python scripts/run_default_experiments.py table1 table2` (or
`ACNN_BENCH_SCALE=default pytest benchmarks/ --benchmark-only`, which also
asserts the qualitative orderings). Rendered outputs live under `results/`.

**What is comparable and what is not.** The substrate is a synthetic corpus
and a ~12x-smaller model, so absolute BLEU/ROUGE values are *not*
comparable to the paper's SQuAD numbers (ours run higher: templated
questions are far more predictable than natural ones). The reproduction
targets are the paper's comparative claims, checked per table below.
"""


def main() -> int:
    table1 = _load("table1_default.json")
    table2 = _load("table2_default.json")

    bleu4 = {name: s["BLEU-4"] for name, s in table1.items()}
    rouge = {name: s["ROUGE-L"] for name, s in table1.items()}

    t2 = {name: s for name, s in table2.items()}
    len100, len120, len150 = (
        t2["ACNN-para-100"], t2["ACNN-para-120"], t2["ACNN-para-150"]
    )

    claims_t1 = [
        (
            "Both ACNN variants beat every baseline on every metric",
            all(
                table1[acnn][m] > table1[base][m]
                for acnn in ("ACNN-sent", "ACNN-para")
                for base in ("Seq2Seq", "Du-sent", "Du-para")
                for m in ("BLEU-1", "BLEU-2", "BLEU-3", "BLEU-4", "ROUGE-L")
            ),
        ),
        ("ACNN-sent > Du-sent (the paper's headline copy-mechanism gain)",
         bleu4["ACNN-sent"] > bleu4["Du-sent"] and rouge["ACNN-sent"] > rouge["Du-sent"]),
        ("ACNN-para > Du-para", bleu4["ACNN-para"] > bleu4["Du-para"]),
        ("ACNN-sent > ACNN-para (sentence beats noisy paragraph)",
         bleu4["ACNN-sent"] > bleu4["ACNN-para"]),
        ("Attention models > Seq2Seq on BLEU-4",
         min(bleu4["Du-sent"], bleu4["Du-para"]) > bleu4["Seq2Seq"]),
    ]

    claims_t2 = [
        ("length 100 > length 150 on BLEU-4", len100["BLEU-4"] > len150["BLEU-4"]),
        ("length 100 > length 150 on ROUGE-L", len100["ROUGE-L"] > len150["ROUGE-L"]),
        (
            "monotone BLEU-4 degradation 100 >= 120 >= 150",
            len100["BLEU-4"] >= len120["BLEU-4"] >= len150["BLEU-4"],
        ),
    ]

    def claims_md(claims):
        lines = []
        for text, held in claims:
            lines.append(f"- {'HOLDS' if held else '**DOES NOT HOLD**'} — {text}")
        return "\n".join(lines)

    parts = [HEADER]
    parts.append("## Table 1 — main comparison\n")
    parts.append("Paper (SQuAD, Du et al. split):\n")
    parts.append(format_markdown_table(PAPER_TABLE1))
    parts.append("\nMeasured (synthetic corpus, DEFAULT scale):\n")
    parts.append(format_markdown_table(table1))
    parts.append("\nClaims under reproduction:\n")
    parts.append(claims_md(claims_t1))
    parts.append(
        "\nNotes: the copy mechanism's margin is much *larger* here than in the"
        " paper because the synthetic corpus concentrates the difficulty in"
        " rare-entity tokens, which only a copy path can emit. Du-sent and"
        " Du-para report identical rows because converged generation-only"
        " models on this corpus collapse to the same deterministic"
        " template-to-question mapping with UNK/head entities at the entity"
        " slots — the Du-attention seed-variance study below measures exactly"
        " zero score variance across three seeds, confirming the unique"
        " limiting solution (the models differ early in training and disagree"
        " when under-trained).\n"
    )

    parts.append("## Table 2 — paragraph truncation length\n")
    parts.append("Paper:\n")
    parts.append(format_markdown_table(PAPER_TABLE2))
    parts.append("\nMeasured:\n")
    parts.append(format_markdown_table(table2))
    parts.append("\nClaims under reproduction:\n")
    parts.append(claims_md(claims_t2))
    parts.append(
        "\nMechanism note: synthetic paragraphs place the answer-bearing"
        " sentence at a random position within the first 100 tokens"
        " (`SyntheticConfig.fact_window`), so every truncation window contains"
        " it but longer windows admit strictly more distractor facts — the"
        " paper's noise explanation, §4.2.\n\n"
        "Honest-reproduction note: the paper's Table 2 deltas are small"
        " (≤ 0.6 BLEU-1 between adjacent lengths). The seed-variance study"
        " below measures this recipe's noise floor at BLEU-4 std 3.4 / range"
        " 6.5 across seeds — several times the paper's effect size — and the"
        " measured lengths land within ~1 BLEU-4 point of each other with no"
        " monotone trend. The claim is therefore *not resolvable* at CPU"
        " scale, rather than confirmed or refuted. The strong length effect"
        " that does replicate is sentence vs. paragraph (Table 1: ACNN-sent ≫"
        " ACNN-para), the same noise mechanism at a much larger dose.\n"
    )

    parts.append("## Figure 1 — architecture\n")
    parts.append(
        "Reproduced structurally rather than graphically: `ACNN.describe()`"
        " emits the component diagram (bi-LSTM encoder → global attention →"
        " decoder → P_att / P_cop mixed by the z_k gate), and"
        " `benchmarks/bench_figure1.py` asserts the model contains exactly the"
        " schematic's components (encoder/decoder embeddings, bidirectional"
        " encoder, attention W_h, readout W_k, output W_y, copy projection V,"
        " switch parameters W_d/W_c/W_s). See results/figure1_*.txt.\n"
    )

    parts.append("## Extensions (beyond the paper)\n")
    parts.append(
        "Each extension has a registered experiment and benchmark"
        " (`python -m repro.experiments list`). Headline observations at the"
        " default scale (full tables inlined below):\n\n"
        "- **Adaptive gate is adaptive** (`examples/inspect_copying.py`): mean"
        " z at copy steps 0.93 vs 0.44 at generation steps over 258 traced"
        " decoding steps — Eq. 4 behaves as the paper claims.\n"
        "- **Switch ablation** (`ablation-switch`): the learned gate wins"
        " decisively — BLEU-4 54.7 vs 0.0 (z=0, no copy), 14.9 (z=0.5), 4.1"
        " (z=1, copy only). The *adaptive* part of the ACNN is load-bearing,"
        " not just the copy path's existence.\n"
        "- **Learning curve** (`learning-curve`): the ACNN leads the baseline"
        " at every training-set size (ROUGE-L gaps of +11 to +38); at 250"
        " examples the ACNN already produces usable questions (ROUGE-L 35)"
        " where the baseline sits at 16 — the paper's §1 limited-data"
        " motivation, quantified.\n"
        "- **Domain transfer** (`domain-transfer`, §5 future work): trained on"
        " geography templates, the ACNN retains 24% OOV-entity recall on"
        " unseen people/organisation templates (66% in-domain); the"
        " attention-only baseline recalls 0% in both — the copy skill"
        " transfers across domains, as the paper conjectured.\n"
        "- **Beam width** (`ablation-beam`): beam 3 beats greedy by ~1.2"
        " BLEU-4; beam 5 adds only ~0.1 — the paper's beam-3 choice sits at"
        " the knee.\n"
        "- **Coverage** (`ablation-coverage`): ~+0.5 BLEU-4 at convergence;"
        " its repetition fix matters mainly for under-trained models (the"
        " stutter visible in the quickstart disappears with coverage).\n"
        "- **Answer features** (`ablation-answer`): inside/outside-answer tags"
        " add +7.1 BLEU-4 by disambiguating *which* question to ask about a"
        " multi-fact sentence (Zhou et al. 2017, cited in related work).\n"
        "- **Seed variance** (`variance`): the noise floor used to judge"
        " Table 2 above; see the inlined table.\n"
    )

    extension_files = [
        ("ablation-switch", "ablation_switch_default.txt"),
        ("learning-curve", "learning_curve_default.txt"),
        ("ablation-coverage", "ablation_coverage_default.txt"),
        ("ablation-beam", "ablation_beam_default.txt"),
        ("ablation-answer", "ablation_answer_default.txt"),
        ("domain-transfer", "domain_transfer_default.txt"),
        ("variance", "variance_default.txt"),
        ("variance (Du-attention baseline)", "variance_du_default.txt"),
    ]
    for key, filename in extension_files:
        path = os.path.join(RESULTS, filename)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                body = handle.read().strip()
            parts.append(f"### `{key}` (measured, default scale)\n\n```\n{body}\n```\n")

    out_path = os.path.join(ROOT, "EXPERIMENTS.md")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
