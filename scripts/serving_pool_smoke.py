"""Multi-process serving fleet smoke test: 200 requests, chaos, hot reload.

    PYTHONPATH=src python scripts/serving_pool_smoke.py [output_dir]

Builds a tiny ACNN and drives a 200-request fleet through a 3-worker
:class:`repro.serving.ServingPool` with one injected worker kill
mid-decode and one prepare/commit hot weight reload mid-fleet. Then
checks the pool's whole contract:

1. >= 99% of the requests are served; the ledger balances exactly
   (served + rejected + shed + failed == submitted, one outcome each);
2. the injected kill really happened: a worker died, its in-flight
   requests were re-dispatched, and a restarted worker rejoined;
3. the reload was atomic: every served response carries exactly one
   weight fingerprint (the pre-reload or post-reload one, never a mix),
   and both halves are byte-identical to single-process reference runs
   on the matching weights;
4. zero orphans: every worker pid is gone after shutdown;
5. the telemetry trace is schema-valid end to end and contains the pool
   lifecycle markers (worker restart, reload).

The deterministic contract (counts + booleans, no timing) is written to
``BENCH_serving_pool.json`` in the repo root so CI can diff it; the
wall-clock numbers go to ``<output_dir>/serving_pool_bench.json``. Exits
non-zero on any violation.
"""

import json
import os
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

NUM_REQUESTS = 200
POOL_WORKERS = 3
RELOAD_AT = 120  # submission index of the mid-fleet hot reload
KILL_ON_SERVE = {1: 4}  # worker 1 dies on its 4th request
SEED_OLD = 3
SEED_NEW = 11

SENTENCES = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "tovenka built the glass spire .",
    "the ilex bridge spans the morda .",
]
QUESTIONS = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who built the glass spire ?",
    "what spans the morda ?",
]


def build_parts():
    from repro.data import QGDataset, QGExample
    from repro.models import ModelConfig, build_model

    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()),
                  question=tuple(q.split()))
        for s, q in zip(SENTENCES, QUESTIONS)
    ]
    encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)

    def model(seed):
        config = ModelConfig(
            embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=seed
        )
        return build_model("acnn", config, len(encoder), len(decoder))

    return encoder, decoder, model


def request_stream():
    from repro.serving import GenerationRequest

    # A generous explicit deadline: at fleet scale the wall-clock queue wait
    # exceeds the 5 s default, and deadline-floor degradation is timing-
    # dependent — this smoke pins the byte-parity contract, not deadline
    # chaos (the serving suite covers that).
    return [
        GenerationRequest(
            SENTENCES[index % len(SENTENCES)],
            request_id=f"req-{index:04d}",
            deadline_seconds=600.0,
        )
        for index in range(NUM_REQUESTS)
    ]


def rows(outcomes):
    out = []
    for o in sorted(outcomes, key=lambda o: o.request_id):
        r = o.result
        out.append((o.request_id, o.status, o.reason,
                    r.tokens if r else None,
                    round(r.log_prob, 12) if r else None,
                    r.rung if r else None))
    return out


def single_process_reference(requests, seed):
    from repro.observability import Telemetry
    from repro.serving import ContinuousBatchingEngine, EngineConfig, InferenceService

    encoder, decoder, model = build_parts()
    service = InferenceService(model(seed), encoder, decoder, telemetry=Telemetry([]))
    # The whole half is submitted up front, so the reference queue must
    # hold it; the pool never queues more than a handful per worker.
    engine = ContinuousBatchingEngine(
        service, EngineConfig(queue_limit=len(requests) + 8)
    )
    outcomes = []
    for request in requests:
        outcome = engine.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
    outcomes.extend(engine.drain())
    return rows(outcomes)


def main() -> int:
    from repro.observability import JsonlSink, Telemetry, read_trace
    from repro.serving import PoolConfig, PoolFaultPlan, ServingPool
    from repro.training.checkpoint import save_checkpoint

    output_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        REPO_ROOT, "results", "serving_pool"
    )
    os.makedirs(output_dir, exist_ok=True)
    trace_path = os.path.join(output_dir, "trace.jsonl")
    if os.path.exists(trace_path):
        os.remove(trace_path)

    encoder, decoder, model = build_parts()
    checkpoint_dir = os.path.join(output_dir, "reload-checkpoint")
    save_checkpoint(os.path.join(checkpoint_dir, "model"), model(SEED_NEW), {"seed": SEED_NEW})

    telemetry = Telemetry([JsonlSink(trace_path)])
    pool = ServingPool(
        model(SEED_OLD), encoder, decoder,
        telemetry=telemetry,
        config=PoolConfig(workers=POOL_WORKERS, heartbeat_interval=0.1,
                          poll_interval=0.01, restart_backoff=0.05),
        fault_plan=PoolFaultPlan(kill_on_serve=KILL_ON_SERVE),
    )

    requests = request_stream()
    outcomes = []
    started = time.perf_counter()
    reload_seconds = 0.0
    old_fp = pool.fingerprint
    try:
        pool.start()
        for index, request in enumerate(requests):
            if index == RELOAD_AT:
                # Let the pre-reload half fully resolve so the fingerprint
                # split in the ledger is exactly RELOAD_AT / the rest.
                outcomes.extend(pool.drain())
                reload_started = time.perf_counter()
                new_fp = pool.reload_weights(checkpoint_dir)
                reload_seconds = time.perf_counter() - reload_started
            outcome = pool.submit(request)
            if outcome is not None:
                outcomes.append(outcome)
            outcomes.extend(pool.pump())
        outcomes.extend(pool.drain())
        worker_pids = pool.live_worker_pids()
        report = pool.report()
    finally:
        pool.shutdown()
        telemetry.close()
    elapsed = time.perf_counter() - started

    failures = []

    def check(ok, message):
        print(("  ok  " if ok else "  FAIL") + "  " + message, flush=True)
        if not ok:
            failures.append(message)

    stats = pool.stats
    served = [o for o in outcomes if o.status == "served"]
    check(len(outcomes) == NUM_REQUESTS, f"one outcome per request ({len(outcomes)}/{NUM_REQUESTS})")
    check(stats.finished == stats.submitted == NUM_REQUESTS,
          f"ledger balances (finished={stats.finished}, submitted={stats.submitted})")
    check(len(served) >= 0.99 * NUM_REQUESTS,
          f"served >= 99% ({len(served)}/{NUM_REQUESTS})")
    check(stats.duplicate_results == 0, "no duplicate completions")

    check(stats.worker_deaths >= 1, f"injected kill happened (deaths={stats.worker_deaths})")
    check(stats.redispatched >= 1, f"in-flight re-dispatched (redispatched={stats.redispatched})")
    check(stats.worker_restarts >= 1, f"killed worker restarted (restarts={stats.worker_restarts})")

    check(stats.reloads == 1 and new_fp != old_fp, "hot reload committed a new fingerprint")
    pre = [o for o in served if o.fingerprint == old_fp]
    post = [o for o in served if o.fingerprint == new_fp]
    check(len(pre) + len(post) == len(served),
          "every response attributes to exactly one fingerprint")
    check(all(int(o.request_id.split("-")[1]) < RELOAD_AT for o in pre)
          and all(int(o.request_id.split("-")[1]) >= RELOAD_AT for o in post),
          f"fingerprint split is exactly at the reload ({len(pre)}/{len(post)})")

    pre_rows = rows(pre)
    post_rows = rows(post)
    check(pre_rows == single_process_reference(requests[:RELOAD_AT], SEED_OLD),
          "pre-reload half byte-identical to single-process on old weights")
    check(post_rows == single_process_reference(requests[RELOAD_AT:], SEED_NEW),
          "post-reload half byte-identical to single-process on new weights")

    check(len(worker_pids) >= 1, f"fleet was live pre-shutdown ({len(worker_pids)} workers)")
    check(report["workers"], "coordinator report covers the fleet")
    orphans = []
    for pid in worker_pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        orphans.append(pid)
    check(orphans == [], f"zero orphans after shutdown (live={orphans})")
    check(pool.live_worker_pids() == [], "pool reports no live workers")

    records = list(read_trace(trace_path))  # raises SchemaViolation on a bad line
    names = {r.get("name") for r in records if r.get("kind") == "run"}
    check("pool_worker_restarted" in names, "trace has the worker-restart marker")
    check("pool_reload" in names, "trace has the reload marker")
    check(len(records) > 0, f"telemetry trace written ({len(records)} records)")

    contract = {
        "benchmark": "serving_pool",
        "description": (
            f"{NUM_REQUESTS}-request fleet through a {POOL_WORKERS}-worker "
            "fork-based ServingPool with one injected worker kill mid-decode "
            "and one prepare/commit hot weight reload mid-fleet. Deterministic "
            "contract only — wall-clock numbers live in results/."
        ),
        "command": "PYTHONPATH=src python scripts/serving_pool_smoke.py",
        "requests": NUM_REQUESTS,
        "workers": POOL_WORKERS,
        "reload_at": RELOAD_AT,
        "served": len(served),
        "ledger": {key: stats.as_dict()[key] for key in
                   ("submitted", "finished", "served", "rejected", "shed",
                    "failed", "duplicate_results")},
        "chaos": {
            "worker_kill_injected": stats.worker_deaths >= 1,
            "redispatched_requests": stats.redispatched >= 1,
            "worker_restarted": stats.worker_restarts >= 1,
        },
        "reload": {
            "committed": stats.reloads == 1,
            "single_fingerprint_per_response": len(pre) + len(post) == len(served),
            "pre_reload_byte_identical": pre_rows == single_process_reference(
                requests[:RELOAD_AT], SEED_OLD),
            "post_reload_byte_identical": post_rows == single_process_reference(
                requests[RELOAD_AT:], SEED_NEW),
        },
        "zero_orphans": orphans == [] and pool.live_worker_pids() == [],
        "contract_holds": not failures,
    }
    bench_path = os.path.join(REPO_ROOT, "BENCH_serving_pool.json")
    with open(bench_path, "w", encoding="utf-8") as handle:
        json.dump(contract, handle, indent=2)
        handle.write("\n")

    timing = {
        "requests": NUM_REQUESTS,
        "workers": POOL_WORKERS,
        "wall_seconds": round(elapsed, 3),
        "requests_per_second": round(NUM_REQUESTS / elapsed, 2),
        "reload_seconds": round(reload_seconds, 3),
        "trace_records": len(records),
    }
    with open(os.path.join(output_dir, "serving_pool_bench.json"), "w",
              encoding="utf-8") as handle:
        json.dump(timing, handle, indent=2)
        handle.write("\n")

    print(flush=True)
    if failures:
        print(f"serving pool smoke: {len(failures)} violation(s)", flush=True)
        return 1
    print(
        f"serving pool smoke: all checks passed "
        f"({len(served)}/{NUM_REQUESTS} served in {elapsed:.1f}s, "
        f"reload {reload_seconds * 1000:.0f}ms)",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
