"""Table 2 at DEFAULT scale, reusing Table 1's ACNN-para run for length 100.

Table 2's ACNN-para-100 configuration is bit-identical to Table 1's
ACNN-para (same corpus seed, model seed, truncation 100), so its scores are
spliced from results/table1_default.json instead of retrained.
"""
import json, os, sys
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from repro.experiments.configs import DEFAULT
from repro.experiments.table2 import run_table2

result = run_table2(DEFAULT, lengths=(150, 120), verbose=True)
scores = dict(result.scores)
with open("results/table1_default.json") as fh:
    table1 = json.load(fh)
scores["ACNN-para-100"] = table1["ACNN-para"]

with open("results/table2_default.json", "w") as fh:
    json.dump(scores, fh, indent=2)

from repro.evaluation.reporting import format_table
from repro.experiments.table2 import PAPER_TABLE2
rendered = format_table(scores, title="Table 2 (measured, scale=default)")
rendered += "\n\n" + format_table(PAPER_TABLE2, title="Table 2 (paper, SQuAD)")
rendered += "\n\n(ACNN-para-100 spliced from Table 1's identical ACNN-para run)"
with open("results/table2_default.txt", "w") as fh:
    fh.write(rendered + "\n")
print(rendered)
print("##### TABLE2 DONE #####")
