#!/usr/bin/env python
"""End-to-end numerical-robustness smoke test (run by the ``numerics`` CI job).

Injects a NaN into the middle of a real ACNN forward pass and proves the
whole containment chain works:

1. **Provenance** — ``detect_anomaly()`` attributes the NaN to the exact
   op (the Eq. 4 switch-gate ``sigmoid``), with shapes, dtype, creation
   site, and the upstream causal chain.
2. **Quarantine** — a trainer running with ``overflow_policy="skip"``
   drops the poisoned batch (typed event + ``anomaly:sigmoid`` cause in
   telemetry), does *not* roll back to a snapshot, and finishes the run.
3. **Tolerance** — the finished run's final loss is finite and close to a
   clean reference run's (one skipped batch must not derail training).

Exit status 0 on success; any broken link in the chain raises.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary
from repro.models import ModelConfig, build_model
from repro.nn import numerics as numerics_module
from repro.observability import MemorySink, Telemetry, use_telemetry
from repro.tensor import NumericalAnomaly, detect_anomaly
from repro.training import Trainer, TrainerConfig

EPOCHS = 3
TOLERANCE_NOTE = "one quarantined batch must not derail the run"


def build_setup():
    sentences = [
        ("zorvex", "was", "born", "in", "quuxland", "."),
        ("mira", "founded", "the", "guild", "in", "spring", "."),
        ("the", "river", "flows", "north", "past", "the", "mill", "."),
        ("old", "maps", "show", "a", "road", "under", "the", "lake", "."),
    ]
    questions = [
        ("where", "was", "zorvex", "born", "?"),
        ("who", "founded", "the", "guild", "?"),
        ("which", "way", "does", "the", "river", "flow", "?"),
        ("what", "do", "old", "maps", "show", "?"),
    ]
    examples = [
        QGExample(sentence=s, paragraph=s, question=q) for s, q in zip(sentences, questions)
    ]
    encoder = Vocabulary.build([example.sentence for example in examples])
    decoder = Vocabulary.build([example.question for example in examples])
    dataset = QGDataset(examples, encoder, decoder)
    config = ModelConfig(embedding_dim=8, hidden_size=6, num_layers=1, dropout=0.0, seed=7)
    model = build_model("acnn", config, len(encoder), len(decoder))
    iterator = BatchIterator(dataset, batch_size=2, shuffle=False)
    return model, iterator


class SigmoidPoisoner:
    """Wraps the blessed sigmoid; poisons its input on demand, once."""

    def __init__(self):
        self.real = numerics_module.sigmoid
        self.armed = False
        self.fired = False

    def __call__(self, x):
        if self.armed and not self.fired:
            self.fired = True
            # Corrupt the already-computed input array in place: its
            # producing op saw finite values, so the first non-finite op
            # *output* the tape observes belongs to this sigmoid.
            x.data.flat[0] = np.nan
        return self.real(x)

    def install(self):
        numerics_module.sigmoid = self

    def uninstall(self):
        numerics_module.sigmoid = self.real


def check_provenance() -> None:
    model, iterator = build_setup()
    batch = next(iter(iterator))
    poisoner = SigmoidPoisoner()
    poisoner.install()
    poisoner.armed = True
    try:
        with detect_anomaly(emit_telemetry=False):
            try:
                model.loss(batch)
            except NumericalAnomaly as exc:
                assert exc.op == "sigmoid", f"attributed to {exc.op!r}, expected 'sigmoid'"
                assert exc.kind == "nan", f"kind {exc.kind!r}"
                assert exc.phase == "forward", f"phase {exc.phase!r}"
                assert exc.record is not None and exc.record.site, "missing creation site"
                assert exc.chain, "missing causal chain"
                print(f"[1/3] provenance ok: {exc.record.describe()}")
                print(f"      chain: {exc.chain_summary()}")
                return
        raise AssertionError("injected NaN was not detected by detect_anomaly()")
    finally:
        poisoner.uninstall()


def run_training(inject: bool) -> tuple[Trainer, MemorySink]:
    model, iterator = build_setup()
    sink = MemorySink()
    telemetry = Telemetry([sink])
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=EPOCHS, detect_anomaly=True, overflow_policy="skip"),
        telemetry=telemetry,
    )
    poisoner = SigmoidPoisoner()
    poisoner.install()
    poisoner.armed = inject
    try:
        with use_telemetry(telemetry):
            trainer.train()
    finally:
        poisoner.uninstall()
    if inject:
        assert poisoner.fired, "poisoner never fired"
    return trainer, sink


def check_quarantine_and_tolerance() -> None:
    reference, _ = run_training(inject=False)
    injected, sink = run_training(inject=True)

    assert len(injected.history) == EPOCHS, "run did not complete all epochs"
    assert injected.overflow_skipped == 1, f"skipped {injected.overflow_skipped}, expected 1"
    assert not injected.history.events, "quarantine must not trigger snapshot rollback"

    quarantines = [r for r in sink.of_kind("run") if r["name"] == "overflow_quarantine"]
    assert len(quarantines) == 1, f"expected 1 quarantine marker, got {len(quarantines)}"
    cause = quarantines[0]["data"]["cause"]
    assert cause == "anomaly:sigmoid", f"quarantine cause {cause!r}"

    anomalies = [r for r in sink.of_kind("run") if r["name"] == "anomaly"]
    assert anomalies and anomalies[0]["data"]["op"] == "sigmoid", "anomaly marker missing op"
    print(f"[2/3] quarantine ok: cause={cause}, skipped={injected.overflow_skipped}, "
          f"no rollback, {len(injected.history)} epochs completed")

    final_ref = reference.history.records[-1].train_loss
    final_inj = injected.history.records[-1].train_loss
    assert np.isfinite(final_inj), f"final loss not finite: {final_inj}"
    tolerance = max(0.5, 0.25 * abs(final_ref))
    assert abs(final_inj - final_ref) <= tolerance, (
        f"final loss {final_inj:.4f} vs reference {final_ref:.4f} "
        f"exceeds tolerance {tolerance:.4f} ({TOLERANCE_NOTE})"
    )
    print(f"[3/3] tolerance ok: final loss {final_inj:.4f} vs reference {final_ref:.4f} "
          f"(tolerance {tolerance:.4f})")


def main() -> int:
    check_provenance()
    check_quarantine_and_tolerance()
    print("anomaly smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
