"""End-to-end telemetry smoke test: trace a real run, validate the contract.

    PYTHONPATH=src python scripts/telemetry_smoke.py [output_dir]

Trains and evaluates one ACNN system at the smoke scale with telemetry
enabled, then checks the produced ``trace.jsonl`` against everything the
observability layer promises:

1. every line is schema-valid (``repro.observability.schema``);
2. the ``seq`` stream is gap-free from 0;
3. the training signal is present: per-step loss / grad-norm gauges, the
   learning rate, token throughput, and the switch-gate statistics;
4. decode throughput (tokens/sec, hypotheses/sec) and eval scores landed;
5. the span tree is well-formed and child phase timings never exceed their
   parent's duration, with the root spans bounded by measured wall-clock.

The trace is left under ``<output_dir>`` (default ``results/telemetry``) so
CI can upload it as an artifact. Exits non-zero on any violation.
"""

import os
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

REQUIRED_NAMES = (
    "train.loss",
    "train.grad_norm",
    "train.lr",
    "train.param_norm",
    "train.tokens",
    "train.tokens.per_sec",
    "train.batch_seconds",
    "train.gate.z_mean",
    "train.gate.z_entropy",
    "train.gate.copy_rate",
    "decode.steps",
    "decode.tokens.per_sec",
    "decode.hypotheses.per_sec",
    "decode.gate.z_mean",
    "eval.BLEU-4",
    "eval.ROUGE-L",
    "eval.examples.per_sec",
    "train_start",
    "train_finish",
)

REQUIRED_SPANS = (
    "epoch",
    "forward",
    "backward",
    "optimizer_step",
    "evaluate",
    "eval",
    "encode",
    "decode.batch",
    "metrics",
)


def main() -> int:
    from repro.experiments.configs import SCALES
    from repro.experiments.runner import TABLE1_SYSTEMS, run_system
    from repro.observability import build_span_tree, read_trace

    output_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join("results", "telemetry")
    spec = TABLE1_SYSTEMS[3]  # ACNN-sent: exercises the switch gate end to end

    print(f"[1/3] traced smoke run: {spec.label} -> {output_dir}", flush=True)
    started = time.perf_counter()
    run_system(spec, SCALES["smoke"], telemetry_dir=output_dir, log_every=4)
    wall_clock = time.perf_counter() - started

    trace_path = os.path.join(output_dir, spec.key, "trace.jsonl")
    print(f"[2/3] validating {trace_path}", flush=True)
    records = list(read_trace(trace_path))  # raises SchemaViolation on any bad line
    assert records, "trace is empty"

    sequence = [record["seq"] for record in records]
    assert sequence == list(range(len(records))), "seq stream has gaps"

    names = {record["name"] for record in records}
    missing = [name for name in REQUIRED_NAMES if name not in names]
    assert not missing, f"required events missing from trace: {missing}"

    loss_steps = [r["step"] for r in records if r["name"] == "train.loss"]
    assert loss_steps == sorted(loss_steps), "training steps regressed"
    assert len(loss_steps) == len(set(loss_steps)), "duplicate per-step loss gauges"

    print("[3/3] checking the span tree", flush=True)
    spans = [record for record in records if record["kind"] == "span"]
    span_names = {record["name"] for record in spans}
    missing_spans = [name for name in REQUIRED_SPANS if name not in span_names]
    assert not missing_spans, f"required spans missing: {missing_spans}"

    roots = build_span_tree(spans)

    def check(node):
        assert node.child_time <= node.duration + 1e-6, (
            f"span {node.name}: children ({node.child_time:.6f}s) exceed "
            f"parent ({node.duration:.6f}s)"
        )
        for child in node.children:
            check(child)

    for root in roots:
        check(root)
    spans_total = sum(root.duration for root in roots)
    assert spans_total <= wall_clock, (
        f"root spans ({spans_total:.3f}s) exceed measured wall-clock ({wall_clock:.3f}s)"
    )

    print(
        f"telemetry smoke test: OK ({len(records)} events, "
        f"{len(spans)} spans, {spans_total:.2f}s traced of {wall_clock:.2f}s wall-clock)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
