"""Regenerate every default-scale result recorded in EXPERIMENTS.md.

    python scripts/run_default_experiments.py [experiment ...]

Runs each experiment at the DEFAULT scale and writes its rendered output to
``results/<key>_default.txt`` (plus JSON score dumps for the paper tables).
With no arguments, runs everything in EXPERIMENTS.md order. This is the
script behind the recorded numbers; `ACNN_BENCH_SCALE=default pytest
benchmarks/ --benchmark-only` exercises the same code paths with assertions.
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.experiments.configs import DEFAULT
from repro.experiments.registry import EXPERIMENTS

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

ORDER = [
    "table1",
    "table2",
    "ablation-switch",
    "learning-curve",
    "ablation-coverage",
    "ablation-answer",
    "ablation-beam",
    "domain-transfer",
    "figure1",
]


def main() -> int:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    keys = sys.argv[1:] or ORDER
    for key in keys:
        experiment = EXPERIMENTS[key]
        print(f"##### {key} #####", flush=True)
        start = time.perf_counter()
        result = experiment.runner(DEFAULT, verbose=True)
        elapsed = time.perf_counter() - start
        rendered = result.render()
        out_path = os.path.join(RESULTS_DIR, f"{key.replace('-', '_')}_default.txt")
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(rendered + f"\n\n(elapsed: {elapsed:.0f}s)\n")
        if hasattr(result, "scores"):
            with open(out_path.replace(".txt", ".json"), "w", encoding="utf-8") as handle:
                json.dump(result.scores, handle, indent=2)
        print(rendered, flush=True)
        print(f"(elapsed: {elapsed:.0f}s)\n", flush=True)
    print("##### ALL EXPERIMENTS DONE #####")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
