#!/usr/bin/env python
"""Numerics lint: flag unguarded numerical primitives in ``src/repro``.

The ACNN loss chains softmax → sigmoid gate → log-of-mixture (paper
Eq. 5-7), which makes raw ``np.log`` / ``np.exp`` / ``np.sqrt`` and bare
division the four ways a run silently goes NaN. The guarded forms live in
:mod:`repro.nn.numerics` (the *blessed* module); every raw use anywhere
else must either migrate to a helper or carry an explicit per-line waiver::

    total += np.log(count)  # numerics: ok — count >= 1 by construction

The waiver is deliberate friction: it forces the author to write down the
reason the site cannot overflow, where the next reader can see it.

What is flagged
---------------
- Calls to ``np.log`` / ``np.log2`` / ``np.log10`` / ``np.exp`` /
  ``np.expm1`` / ``np.sqrt`` / ``np.power`` (any alias of numpy).
- Division (``/``, ``/=``) whose denominator is not *obviously safe*:
  a nonzero numeric literal, an additive-floor expression
  (``x + 1e-12``), or a guard call (``max``, ``maximum``, ``clip``,
  ``len``, ``float``, ``int``).

Exit status: 0 when clean, 1 when findings remain.

Usage::

    python scripts/lint_numerics.py            # lints src/repro
    python scripts/lint_numerics.py PATH ...   # lints specific files/trees
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"

#: The one module allowed to touch the raw primitives without waivers.
BLESSED = {Path("src/repro/nn/numerics.py")}

#: Fused-kernel files where waivers do NOT excuse raw transcendental calls.
#: These run inside arena replay, where a silent NaN has no tape node to
#: blame — every log/exp/sqrt must route through repro.nn.numerics so the
#: guarded kernels (np_fast_sigmoid, np_stable_softmax, np_safe_*) are the
#: only transcendental code paths.
STRICT_FUSED = {
    Path("src/repro/nn/functional.py"),
    Path("src/repro/tensor/lazy.py"),
}

WAIVER = "# numerics: ok"

DANGEROUS_NUMPY_FUNCS = {"log", "log2", "log10", "exp", "expm1", "sqrt", "power"}

#: Call names treated as guards when they produce the denominator.
SAFE_DENOMINATOR_CALLS = {"max", "maximum", "clip", "len", "float", "int"}

NUMPY_ALIASES = {"np", "numpy"}


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.message}"


def _call_name(node: ast.expr) -> str | None:
    """Dotted-name tail of a call target (``np.maximum`` → ``maximum``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_numpy_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in NUMPY_ALIASES
    )


def _is_positive_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value > 0
    return False


def _is_nonzero_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value != 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_nonzero_constant(node.operand)
    return False


def _is_safe_denominator(node: ast.expr) -> bool:
    """Heuristic: can this expression be trusted never to be zero?"""
    if _is_nonzero_constant(node):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        # Additive floor: ``norm + 1e-12`` (either operand the floor).
        return _is_positive_constant(node.left) or _is_positive_constant(node.right)
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in SAFE_DENOMINATOR_CALLS or (name or "").startswith("safe_")
    return False


class _NumericsVisitor(ast.NodeVisitor):
    def __init__(self, path: Path, waived_lines: set[int], strict: bool = False):
        self.path = path
        self.waived = waived_lines
        self.strict = strict
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, message: str, waivable: bool = True) -> None:
        if waivable and node.lineno in self.waived:
            return
        self.findings.append(Finding(self.path, node.lineno, node.col_offset, message))

    def visit_Call(self, node: ast.Call) -> None:
        if _is_numpy_attr(node.func) and node.func.attr in DANGEROUS_NUMPY_FUNCS:
            if self.strict:
                self._flag(
                    node,
                    f"raw np.{node.func.attr} in a fused-kernel file — waivers do "
                    "not apply here; route through repro.nn.numerics "
                    "(np_fast_sigmoid, np_stable_softmax, np_safe_*)",
                    waivable=False,
                )
            else:
                self._flag(
                    node,
                    f"raw np.{node.func.attr} — use repro.nn.numerics "
                    f"(np_safe_{node.func.attr if node.func.attr != 'power' else 'exp'} "
                    f"or a tensor helper), or add a '{WAIVER} — <reason>' waiver",
                )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div) and not _is_safe_denominator(node.right):
            self._flag(
                node,
                "bare division with unguarded denominator — use "
                f"repro.nn.numerics.safe_div/np_safe_div, guard with "
                f"max()/clip()/(x + eps), or add a '{WAIVER} — <reason>' waiver",
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Div) and not _is_safe_denominator(node.value):
            self._flag(
                node,
                "bare /= with unguarded denominator — guard the divisor or add "
                f"a '{WAIVER} — <reason>' waiver",
            )
        self.generic_visit(node)


def lint_file(path: Path, strict: bool = False) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, f"syntax error: {exc.msg}")]
    waived = {
        number for number, line in enumerate(source.splitlines(), start=1) if WAIVER in line
    }
    visitor = _NumericsVisitor(path, waived, strict=strict)
    visitor.visit(tree)
    return visitor.findings


def iter_targets(arguments: list[str]) -> list[Path]:
    roots = [Path(argument) for argument in arguments] or [DEFAULT_TARGET]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    return files


def main(arguments: list[str]) -> int:
    findings: list[Finding] = []
    checked = 0
    for path in iter_targets(arguments):
        try:
            relative = path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            relative = path
        if relative in BLESSED:
            continue
        checked += 1
        findings.extend(lint_file(path, strict=relative in STRICT_FUSED))
    for finding in findings:
        print(finding)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"numerics lint: {checked} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
