"""End-to-end smoke test + scaling benchmark for the elastic runtime.

    PYTHONPATH=src python scripts/elastic_smoke.py [--bench-out FILE]

Trains one tiny synthetic setup three times — 1, 2, and 4 gradient
workers, with a worker KILLED mid-run in the 4-worker configuration — and
asserts the whole determinism-and-recovery contract at once:

- every run finishes (the injected kill degrades the run, never ends it);
- final parameters are byte-identical across all three runs;
- per-epoch train/dev losses are identical across all three runs;
- the killed worker was detected, restarted, and its micro-batch was
  recomputed bit-exactly;
- zero orphaned worker processes survive any run;
- every live worker reported a plausible resident-set size through the
  ``elastic.worker<rank>.rss_mb`` telemetry gauge.

With ``--bench-out`` it additionally writes throughput / scaling-efficiency
numbers (per worker count) in the repo's BENCH_*.json format. Exits
non-zero on any violated assertion.
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests", "training"))

EPOCHS = 3
MICROBATCHES_PER_STEP = 4  # pinned: defines ONE trajectory for all runs
KILL_PLAN = {2: 2}  # 4-worker run: kill rank 2 on its 2nd micro-batch


def _build_setup():
    from repro.data import BatchIterator, QGDataset
    from repro.data.synthetic import SyntheticConfig, generate_corpus
    from repro.models import ModelConfig, build_model

    # Big enough that per-micro-batch compute dominates the gradient IPC —
    # otherwise the scaling numbers only measure pipe bandwidth.
    corpus = generate_corpus(SyntheticConfig(num_train=96, num_dev=16, num_test=1, seed=5))
    encoder, decoder = QGDataset.build_vocabs(corpus.train, 500, 120)
    train_set = QGDataset(corpus.train, encoder, decoder)
    dev_set = QGDataset(corpus.dev, encoder, decoder)
    model = build_model(
        "acnn",
        ModelConfig(embedding_dim=32, hidden_size=48, num_layers=1, dropout=0.3, seed=0),
        len(encoder),
        len(decoder),
    )
    dev_iterator = BatchIterator(dev_set, batch_size=8, shuffle=False)
    return model, train_set, dev_iterator


def _run(workers: int, fault_plan=None):
    from faults import assert_no_orphans
    from repro.observability import MemorySink, Telemetry
    from repro.training import ElasticConfig, ElasticTrainer, TrainerConfig, WorkerFaultPlan

    model, train_set, dev_iterator = _build_setup()
    sink = MemorySink()
    if fault_plan is not None:
        fault_plan = WorkerFaultPlan(kill_on_compute=fault_plan)
    trainer = ElasticTrainer(
        model,
        train_set,
        batch_size=8,
        dev_iterator=dev_iterator,
        config=TrainerConfig(epochs=EPOCHS, learning_rate=0.5),
        elastic=ElasticConfig(
            workers=workers,
            microbatches_per_step=MICROBATCHES_PER_STEP,
            worker_timeout=10.0,
            heartbeat_interval=0.1,
            restart_backoff=0.05,
        ),
        fault_plan=fault_plan,
        telemetry=Telemetry([sink]),
        run_seed=7,
    )
    spawned: list[int] = []
    original_spawn = trainer._spawn_worker
    trainer._spawn_worker = lambda handle: (original_spawn(handle), spawned.append(handle.process.pid))[0]

    start = time.perf_counter()
    history = trainer.train()
    wall = time.perf_counter() - start

    assert trainer.live_worker_pids() == [], f"workers={workers}: pool not shut down"
    assert_no_orphans(spawned)

    # Per-worker memory is observable: every live rank heartbeats its RSS
    # and the supervisor gauges it as elastic.worker<rank>.rss_mb.
    rss_gauges = {
        record["name"]: record["value"]
        for record in sink.of_kind("gauge")
        if record["name"].endswith(".rss_mb")
    }
    if workers:
        expected = {f"elastic.worker{rank}.rss_mb" for rank in range(workers)}
        assert expected <= set(rss_gauges), (
            f"workers={workers}: missing RSS gauges, saw {sorted(rss_gauges)}"
        )
        assert all(1.0 < value < 16384.0 for value in rss_gauges.values()), (
            f"implausible worker RSS readings: {rss_gauges}"
        )
    examples_seen = len(train_set) * EPOCHS
    tokens_seen = sum(len(ex.tgt_output_ids) for ex in train_set.encoded) * EPOCHS
    return {
        "workers": workers,
        "params": trainer.model.state_dict(),
        "losses": [(r.train_loss, r.dev_loss) for r in history.records],
        "wall_seconds": wall,
        "examples_per_second": examples_seen / wall,
        "tokens_per_second": tokens_seen / wall,
        "worker_deaths": trainer.worker_deaths,
        "worker_restarts": trainer.worker_restarts,
    }


def main() -> int:
    import numpy as np

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-out", default=None, help="write BENCH-format JSON here")
    args = parser.parse_args()

    runs = []
    for workers, fault_plan in ((1, None), (2, None), (4, KILL_PLAN)):
        label = f"workers={workers}" + (" (+1 injected kill)" if fault_plan else "")
        print(f"[{len(runs) + 1}/3] {label}", flush=True)
        runs.append(_run(workers, fault_plan))
        print(
            f"    {runs[-1]['wall_seconds']:.1f}s, "
            f"{runs[-1]['examples_per_second']:.1f} examples/s, "
            f"deaths={runs[-1]['worker_deaths']}",
            flush=True,
        )

    reference = runs[0]
    for other in runs[1:]:
        assert other["losses"] == reference["losses"], (
            f"loss trajectory diverged at workers={other['workers']}:\n"
            f"  reference: {reference['losses']}\n  observed:  {other['losses']}"
        )
        assert reference["params"].keys() == other["params"].keys()
        for name in reference["params"]:
            assert np.array_equal(reference["params"][name], other["params"][name]), (
                f"parameter {name} differs at workers={other['workers']}"
            )
    killed = runs[2]
    assert killed["worker_deaths"] == 1, f"expected 1 injected death, saw {killed['worker_deaths']}"
    assert killed["worker_restarts"] == 1, "killed worker was not restarted"

    if args.bench_out:
        base = reference["examples_per_second"]
        payload = {
            "benchmark": "elastic_training",
            "description": (
                "elastic data-parallel training throughput at 1/2/4 gradient "
                "workers on a tiny synthetic corpus; the 4-worker run absorbs "
                "one injected worker kill"
            ),
            "command": "PYTHONPATH=src python scripts/elastic_smoke.py --bench-out BENCH_elastic_training.json",
            "equivalence": "final parameters and per-epoch losses byte-identical across all worker counts",
            "host_cpus": os.cpu_count(),
            "configs": [
                {
                    "name": f"workers_{run['workers']}"
                    + ("_one_kill" if run["worker_deaths"] else ""),
                    "workers": run["workers"],
                    "wall_seconds": run["wall_seconds"],
                    "examples_per_second": run["examples_per_second"],
                    "tokens_per_second": run["tokens_per_second"],
                    "speedup_vs_1_worker": round(run["examples_per_second"] / base, 2),
                    "scaling_efficiency": round(
                        run["examples_per_second"] / (base * run["workers"]), 2
                    ),
                    "worker_deaths": run["worker_deaths"],
                    "worker_restarts": run["worker_restarts"],
                }
                for run in runs
            ],
            "note": (
                "speedup is bounded by host_cpus (worker processes time-slice "
                "one core on a single-CPU container) and the model is small, "
                "so per-step gradient IPC is a visible fraction of compute; "
                "the benchmark's point is the bit-exact equivalence column "
                "under real process parallelism and an injected kill, with "
                "throughput honestly recorded for the host it ran on"
            ),
        }
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"bench numbers written to {args.bench_out}")

    print(
        "elastic smoke test: OK (bit-exact parity at 1/2/4 workers, "
        "kill absorbed, zero orphans)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
