"""End-to-end smoke test + benchmark for the crash-safe shard store.

    PYTHONPATH=src python scripts/datastore_smoke.py [--bench-out FILE]

Exercises the durability contract with REAL process kills (``os._exit``
mid-publish in a subprocess — not an in-process exception) and closes the
loop on the store's headline claims:

- ingest killed at an arbitrary publish point resumes to a store that is
  **bit-identical** to an uninterrupted ingest (every file compared);
- the half-ingested store left behind by the kill is already a valid,
  smaller corpus (crash-safety is not just about the final state);
- training from the memory-mapped store matches in-memory lists
  **byte-for-byte** — per-epoch losses and a SHA-256 over every final
  parameter array — at 0, 1, 2, and 4 gradient workers;
- snapshots carry the manifest digest (``trainer.corpus_digest``).

With ``--bench-out`` it additionally writes ingest throughput, streamed-
vs-eager epoch time, and peak-RSS numbers (measured in separate child
processes so each mode's high-water mark is its own) in the repo's
BENCH_*.json format. Exits non-zero on any violated assertion.
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

PARITY_TRAIN = 96  # parity corpus: small, trained at 4 worker counts
BENCH_RECORDS = 2000  # bench corpus: big enough for honest throughput/RSS
SHARD_RECORDS = 32
EPOCHS = 2
KILL_EXIT_CODE = 17
CORPUS_SEED = 5
RUN_SEED = 7


def _corpus(num_train: int):
    from repro.data.synthetic import SyntheticConfig, generate_corpus

    config = SyntheticConfig(num_train=num_train, num_dev=16, num_test=1, seed=CORPUS_SEED)
    return generate_corpus(config).train


def _dir_bytes(directory: str) -> dict[str, bytes]:
    return {
        name: open(os.path.join(directory, name), "rb").read()
        for name in sorted(os.listdir(directory))
    }


def _child(mode: str, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    return subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", mode, *extra],
        capture_output=True,
        text=True,
        env=env,
    )


# ----------------------------------------------------------------------
# Child modes (run in subprocesses so kills and RSS peaks are real)
# ----------------------------------------------------------------------
def _child_kill_ingest(directory: str, num_train: int, kill_at: int) -> int:
    """Ingest, but ``os._exit`` on the Nth file publish: a real mid-write
    kill, with no chance for cleanup handlers to tidy up after us."""
    import repro.tensor.serialization as serialization
    from repro.data import ingest_examples

    original = serialization._publish
    seen = {"publishes": 0}

    def lethal_publish(tmp_path, final_path):
        seen["publishes"] += 1
        if seen["publishes"] >= kill_at:
            os._exit(KILL_EXIT_CODE)
        return original(tmp_path, final_path)

    serialization._publish = lethal_publish
    ingest_examples(_corpus(num_train), directory, shard_records=SHARD_RECORDS)
    return 0  # only reached when kill_at exceeds the publish count


def _child_rss(directory: str, mode: str) -> int:
    """Iterate one epoch of batches, print this process's peak RSS."""
    import resource

    from repro.data import BatchIterator, QGDataset, ShardedCorpus, StreamingQGDataset

    corpus = ShardedCorpus.open(directory)
    encoder, decoder = QGDataset.build_vocabs(list(corpus[:64]), 500, 120)
    if mode == "streamed":
        dataset = StreamingQGDataset(corpus, encoder, decoder)
    else:
        dataset = QGDataset(list(corpus), encoder, decoder)
    total = 0
    for batch in BatchIterator(dataset, batch_size=32, seed=RUN_SEED):
        total += int(batch.src.shape[0])
    assert total == len(corpus)
    print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024)
    return 0


# ----------------------------------------------------------------------
# Smoke sections
# ----------------------------------------------------------------------
def check_kill_resume(tmp_dir: str) -> None:
    from repro.data import ShardedCorpus, ingest_examples

    reference_dir = os.path.join(tmp_dir, "reference")
    ingest_examples(_corpus(PARITY_TRAIN), reference_dir, shard_records=SHARD_RECORDS)
    reference = _dir_bytes(reference_dir)

    # 96 records / 32 per shard = 3 shard + 3 manifest + 1 completing
    # manifest publish. Kill mid-ingest (a shard publish) and at the very
    # last manifest write; the in-process chaos suite sweeps every point.
    for kill_at in (3, 7):
        directory = os.path.join(tmp_dir, f"killed_{kill_at}")
        result = _child("kill-ingest", directory, str(PARITY_TRAIN), str(kill_at))
        assert result.returncode == KILL_EXIT_CODE, (
            f"kill child should die with {KILL_EXIT_CODE}, got "
            f"{result.returncode}: {result.stderr}"
        )

        survivor = ShardedCorpus.open(directory)
        partial = list(survivor)
        full = list(_corpus(PARITY_TRAIN))
        assert partial == full[: len(partial)], "survivor store serves altered records"
        survivor.close()

        resumed = ingest_examples(full, directory, shard_records=SHARD_RECORDS)
        assert resumed.manifest.complete
        assert resumed.resumed_from == len(partial)
        assert _dir_bytes(directory) == reference, (
            f"kill at publish #{kill_at}: resumed store differs from clean ingest"
        )
        print(
            f"  kill at publish #{kill_at}: survivor served {len(partial)} records, "
            f"resume bit-identical",
            flush=True,
        )


def _params_sha256(state_dict) -> str:
    digest = hashlib.sha256()
    for name in sorted(state_dict):
        digest.update(name.encode())
        digest.update(state_dict[name].tobytes())
    return digest.hexdigest()


def _train(container, workers: int):
    from repro.data import BatchIterator, QGDataset, StreamingQGDataset
    from repro.models import ModelConfig, build_model
    from repro.training import ElasticConfig, ElasticTrainer, TrainerConfig

    examples = list(container)
    encoder, decoder = QGDataset.build_vocabs(examples, 500, 120)
    if isinstance(container, list):
        dataset = QGDataset(examples, encoder, decoder)
    else:
        dataset = StreamingQGDataset(container, encoder, decoder)
    model = build_model(
        "acnn",
        ModelConfig(embedding_dim=32, hidden_size=48, num_layers=1, dropout=0.3, seed=0),
        len(encoder),
        len(decoder),
    )
    trainer = ElasticTrainer(
        model,
        dataset,
        batch_size=8,
        dev_iterator=BatchIterator(dataset, batch_size=8, shuffle=False),
        config=TrainerConfig(epochs=EPOCHS, learning_rate=0.5),
        elastic=ElasticConfig(
            workers=workers,
            microbatches_per_step=4,
            worker_timeout=10.0,
            heartbeat_interval=0.1,
            restart_backoff=0.05,
        ),
        run_seed=RUN_SEED,
    )
    history = trainer.train()
    losses = [(r.train_loss, r.dev_loss) for r in history.records]
    return trainer, losses, _params_sha256(trainer.model.state_dict())


def check_train_parity(tmp_dir: str) -> None:
    from repro.data import ShardedCorpus, ingest_examples

    directory = os.path.join(tmp_dir, "parity_store")
    ingested = ingest_examples(_corpus(PARITY_TRAIN), directory, shard_records=SHARD_RECORDS)

    _, memory_losses, memory_sha = _train(_corpus(PARITY_TRAIN), workers=0)
    for workers in (0, 1, 2, 4):
        corpus = ShardedCorpus.open(directory)
        trainer, losses, sha = _train(corpus, workers=workers)
        assert losses == memory_losses, (
            f"shards@{workers} losses diverged:\n  memory: {memory_losses}\n"
            f"  shards: {losses}"
        )
        assert sha == memory_sha, f"shards@{workers}: final parameters differ"
        assert trainer.corpus_digest == ingested.digest, "snapshot digest not stamped"
        corpus.close()
        print(f"  shards@{workers} == memory@0 (params sha256 {sha[:12]}…)", flush=True)


def run_bench(tmp_dir: str) -> dict:
    from repro.data import BatchIterator, QGDataset, ShardedCorpus, StreamingQGDataset
    from repro.data import ingest_examples

    directory = os.path.join(tmp_dir, "bench_store")
    examples = _corpus(BENCH_RECORDS)
    start = time.perf_counter()
    ingest_examples(examples, directory, shard_records=256)
    ingest_seconds = time.perf_counter() - start

    corpus = ShardedCorpus.open(directory)
    encoder, decoder = QGDataset.build_vocabs(list(corpus[:64]), 500, 120)

    # Construction is inside the clock: the eager dataset pays its whole
    # encode-everything cost up front, the streamed one pays per batch.
    def epoch_seconds(build) -> float:
        begin = time.perf_counter()
        count = 0
        for batch in BatchIterator(build(), batch_size=32, seed=RUN_SEED):
            count += int(batch.src.shape[0])
        assert count == len(corpus)
        return time.perf_counter() - begin

    streamed_epoch = epoch_seconds(lambda: StreamingQGDataset(corpus, encoder, decoder))
    eager_epoch = epoch_seconds(lambda: QGDataset(list(corpus), encoder, decoder))

    rss = {}
    for mode in ("streamed", "eager"):
        result = _child("rss", directory, mode)
        assert result.returncode == 0, f"rss child ({mode}) failed: {result.stderr}"
        rss[mode] = int(result.stdout.strip())
    corpus.close()

    return {
        "records": BENCH_RECORDS,
        "ingest_seconds": ingest_seconds,
        "ingest_records_per_second": BENCH_RECORDS / ingest_seconds,
        "streamed_epoch_seconds": streamed_epoch,
        "eager_epoch_seconds": eager_epoch,
        "peak_rss_streamed_bytes": rss["streamed"],
        "peak_rss_eager_bytes": rss["eager"],
    }


def main() -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-out", default=None, help="write BENCH-format JSON here")
    parser.add_argument("--child", nargs="*", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child:
        mode, *rest = args.child
        if mode == "kill-ingest":
            directory, num_train, kill_at = rest
            return _child_kill_ingest(directory, int(num_train), int(kill_at))
        if mode == "rss":
            return _child_rss(rest[0], rest[1])
        raise SystemExit(f"unknown child mode {mode!r}")

    with tempfile.TemporaryDirectory(prefix="datastore_smoke_") as tmp_dir:
        print("[1/3] kill-mid-ingest resume (real os._exit in a subprocess)", flush=True)
        check_kill_resume(tmp_dir)
        print("[2/3] train parity: memory@0 vs shards@{0,1,2,4}", flush=True)
        check_train_parity(tmp_dir)
        print("[3/3] bench: ingest throughput, epoch time, peak RSS", flush=True)
        bench = run_bench(tmp_dir)
        print(
            f"  {bench['ingest_records_per_second']:.0f} records/s ingest, "
            f"epoch streamed {bench['streamed_epoch_seconds']:.2f}s vs eager "
            f"{bench['eager_epoch_seconds']:.2f}s, peak RSS streamed "
            f"{bench['peak_rss_streamed_bytes'] / 1048576.0:.0f} MiB vs eager "
            f"{bench['peak_rss_eager_bytes'] / 1048576.0:.0f} MiB",
            flush=True,
        )

    if args.bench_out:
        payload = {
            "benchmark": "shard_store",
            "description": (
                "crash-safe shard store: ingest throughput, streamed-vs-eager "
                "epoch iteration, and peak RSS on a synthetic corpus of "
                f"{BENCH_RECORDS} records; smoke sections assert kill-resume "
                "bit-identity and memory-vs-shards training parity first"
            ),
            "command": "PYTHONPATH=src python scripts/datastore_smoke.py --bench-out BENCH_shardstore.json",
            "equivalence": (
                "resumed store bit-identical to uninterrupted ingest; training "
                "losses and final parameters byte-identical between in-memory "
                "lists and the mmap-backed store at 0/1/2/4 workers"
            ),
            "host_cpus": os.cpu_count(),
            "configs": [
                {
                    "name": "ingest",
                    "records": bench["records"],
                    "wall_seconds": bench["ingest_seconds"],
                    "records_per_second": round(bench["ingest_records_per_second"], 1),
                },
                {
                    "name": "epoch_streamed",
                    "wall_seconds": bench["streamed_epoch_seconds"],
                    "peak_rss_mb": round(bench["peak_rss_streamed_bytes"] / 1048576.0, 1),
                },
                {
                    "name": "epoch_eager",
                    "wall_seconds": bench["eager_epoch_seconds"],
                    "peak_rss_mb": round(bench["peak_rss_eager_bytes"] / 1048576.0, 1),
                },
            ],
            "note": (
                "peak RSS is measured in separate child processes (ru_maxrss) "
                "so each mode carries its own high-water mark; the corpus is "
                "small enough that python interpreter overhead dominates both "
                "numbers — the streamed mode's point is that example decoding "
                "and encoding happen per-batch against shared mmap pages "
                "instead of a per-process materialized copy, with wall time "
                "honestly recorded for the host it ran on"
            ),
        }
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"bench numbers written to {args.bench_out}")

    print(
        "datastore smoke test: OK (kill-resume bit-identical, "
        "memory/shards training parity at 0/1/2/4 workers)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
