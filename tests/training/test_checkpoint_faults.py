"""Chaos tests for checkpoint persistence: kills, truncation, tampering.

Every scenario must end in one of two outcomes — the previous valid
generation loads, or :class:`CheckpointCorrupted` is raised. Silently
loading garbage is the one forbidden result.
"""

import json
import os

import numpy as np
import pytest

from faults import (
    SimulatedCrash,
    corrupt_file,
    crash_on_nth_publish,
    truncate_file,
)
from repro.models import ModelConfig, build_model
from repro.tensor.serialization import (
    CHECKSUM_KEY,
    CheckpointCorrupted,
    load_arrays,
    save_arrays,
)
from repro.training import load_checkpoint, save_checkpoint
from repro.training.resilience import SnapshotStore


def _model(seed=0):
    config = ModelConfig(embedding_dim=6, hidden_size=5, num_layers=1, dropout=0.0, seed=seed)
    return build_model("du-attention", config, 20, 15)


def _assert_no_temp_files(directory):
    leftovers = [name for name in os.listdir(directory) if ".tmp." in name]
    assert leftovers == [], f"partial artifacts left at final paths: {leftovers}"


# ----------------------------------------------------------------------
# save_checkpoint / load_checkpoint under kills
# ----------------------------------------------------------------------
def test_kill_mid_npz_write_keeps_previous_generation(tmp_path):
    first = _model(seed=0)
    save_checkpoint(tmp_path / "ckpt", first, metadata={"generation": 1})

    # Publish #1 of the second save is the .npz rename: the kill lands
    # mid-archive-write, before anything reached the final paths.
    with pytest.raises(SimulatedCrash):
        with crash_on_nth_publish(1):
            save_checkpoint(tmp_path / "ckpt", _model(seed=9), metadata={"generation": 2})

    _assert_no_temp_files(tmp_path)
    restored = _model(seed=4)
    assert load_checkpoint(tmp_path / "ckpt", restored) == {"generation": 1}
    for (name, p_new), (_, p_old) in zip(
        restored.named_parameters(), first.named_parameters()
    ):
        assert np.array_equal(p_new.data, p_old.data), name


def test_kill_between_npz_and_json_raises_torn(tmp_path):
    save_checkpoint(tmp_path / "ckpt", _model(seed=0), metadata={"generation": 1})

    # Publish #2 is the .json rename: the new archive landed but its commit
    # record did not, leaving generation-2 parameters under generation-1
    # metadata — a torn pair the digest check must refuse to load.
    with pytest.raises(SimulatedCrash):
        with crash_on_nth_publish(2):
            save_checkpoint(tmp_path / "ckpt", _model(seed=9), metadata={"generation": 2})

    _assert_no_temp_files(tmp_path)
    with pytest.raises(CheckpointCorrupted, match="torn checkpoint"):
        load_checkpoint(tmp_path / "ckpt", _model(seed=4))


def test_missing_npz_with_metadata_raises(tmp_path):
    save_checkpoint(tmp_path / "ckpt", _model())
    os.unlink(tmp_path / "ckpt.npz")
    with pytest.raises(CheckpointCorrupted, match="missing"):
        load_checkpoint(tmp_path / "ckpt", _model(seed=4))


def test_unreadable_metadata_raises(tmp_path):
    save_checkpoint(tmp_path / "ckpt", _model())
    (tmp_path / "ckpt.json").write_text("{ not json", encoding="utf-8")
    with pytest.raises(CheckpointCorrupted, match="unreadable checkpoint metadata"):
        load_checkpoint(tmp_path / "ckpt", _model(seed=4))


# ----------------------------------------------------------------------
# Archive-level damage
# ----------------------------------------------------------------------
def test_truncated_archive_raises(tmp_path):
    path = tmp_path / "arrays.npz"
    save_arrays(path, {"w": np.arange(64, dtype=np.float64)})
    truncate_file(path)
    with pytest.raises(CheckpointCorrupted, match="unreadable array archive"):
        load_arrays(path)


def test_flipped_byte_raises(tmp_path):
    path = tmp_path / "arrays.npz"
    save_arrays(path, {"w": np.arange(256, dtype=np.float64)})
    corrupt_file(path)
    with pytest.raises(CheckpointCorrupted):
        load_arrays(path)


def test_stale_checksum_raises(tmp_path):
    """An archive whose content was swapped under a stale checksum is rejected."""
    path = tmp_path / "arrays.npz"
    save_arrays(path, {"w": np.arange(8, dtype=np.float64)})
    with np.load(path) as archive:
        payload = {key: archive[key] for key in archive.files}
    payload["w"] = payload["w"] + 1.0  # tamper, keep the embedded checksum
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    with pytest.raises(CheckpointCorrupted, match="checksum mismatch"):
        load_arrays(path)


def test_legacy_archive_without_checksum_loads(tmp_path):
    path = tmp_path / "legacy.npz"
    with open(path, "wb") as handle:
        np.savez_compressed(handle, w=np.arange(4, dtype=np.float64))
    loaded = load_arrays(path)
    assert np.array_equal(loaded["w"], np.arange(4, dtype=np.float64))


def test_checksum_key_is_reserved(tmp_path):
    with pytest.raises(ValueError, match="reserved"):
        save_arrays(tmp_path / "x.npz", {CHECKSUM_KEY: np.zeros(1)})


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_arrays(tmp_path / "nope.npz")


def test_failed_atomic_write_leaves_no_artifact(tmp_path):
    with pytest.raises(SimulatedCrash):
        with crash_on_nth_publish(1):
            save_arrays(tmp_path / "never.npz", {"w": np.zeros(3)})
    assert not (tmp_path / "never.npz").exists()
    _assert_no_temp_files(tmp_path)


# ----------------------------------------------------------------------
# SnapshotStore: rotation, fallback, pinning
# ----------------------------------------------------------------------
def _arrays(value):
    return {"model::w": np.full(4, float(value))}


def test_latest_valid_falls_back_past_corrupted_newest(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    store.save(1, _arrays(1), {"epoch": 1})
    store.save(2, _arrays(2), {"epoch": 2})
    truncate_file(tmp_path / "snap-0000000002.npz")

    arrays, meta = store.latest_valid()
    assert meta["step"] == 1
    assert np.array_equal(arrays["model::w"], _arrays(1)["model::w"])


def test_latest_valid_none_when_everything_damaged(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    assert store.latest_valid() is None
    store.save(1, _arrays(1), {})
    truncate_file(tmp_path / "snap-0000000001.npz")
    assert store.latest_valid() is None


def test_torn_snapshot_pair_raises(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    base = store.save(5, _arrays(5), {})
    # Replace the archive under the existing commit record.
    save_arrays(base + ".npz", _arrays(6))
    with pytest.raises(CheckpointCorrupted, match="torn snapshot"):
        store.load(base)


def test_snapshot_missing_archive_raises(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    base = store.save(5, _arrays(5), {})
    os.unlink(base + ".npz")
    with pytest.raises(CheckpointCorrupted, match="archive missing"):
        store.load(base)


def test_rotation_keeps_last_n(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    for step in range(1, 6):
        store.save(step, _arrays(step), {})
    assert store.list_steps() == [3, 4, 5]
    names = sorted(os.listdir(tmp_path))
    assert names == [
        "snap-0000000003.json", "snap-0000000003.npz",
        "snap-0000000004.json", "snap-0000000004.npz",
        "snap-0000000005.json", "snap-0000000005.npz",
    ]


def test_pinned_best_survives_rotation(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=2)
    store.save_pinned("best", _arrays(99), {"epoch": 1, "dev_loss": 0.5})
    for step in range(1, 8):
        store.save(step, _arrays(step), {})
    arrays, meta = store.load_pinned("best")
    assert meta["dev_loss"] == 0.5
    assert np.array_equal(arrays["model::w"], _arrays(99)["model::w"])


def test_pinned_name_cannot_shadow_rotating_snapshots(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=2)
    with pytest.raises(ValueError, match="collides"):
        store.save_pinned("snap-0000000001", _arrays(1), {})


def test_kill_during_snapshot_save_keeps_previous(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    store.save(1, _arrays(1), {"epoch": 1})
    for publish in (1, 2):  # mid-npz, then between npz and json
        with pytest.raises(SimulatedCrash):
            with crash_on_nth_publish(publish):
                store.save(2, _arrays(2), {"epoch": 2})
        arrays, meta = store.latest_valid()
        assert meta["step"] == 1, f"publish #{publish} crash lost the good generation"
        assert np.array_equal(arrays["model::w"], _arrays(1)["model::w"])
        # Clean up the partial generation before the next scenario.
        for suffix in (".json", ".npz"):
            try:
                os.unlink(tmp_path / ("snap-0000000002" + suffix))
            except FileNotFoundError:
                pass


def test_snapshot_json_records_format_and_digest(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    base = store.save(1, _arrays(1), {"epoch": 1})
    with open(base + ".json", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["format"] == 1
    assert len(payload["npz_sha256"]) == 64
    assert payload["meta"]["step"] == 1
