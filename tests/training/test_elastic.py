"""Elastic runtime tests: world-size parity, chaos recovery, degrade, resume.

The determinism contracts (see ``repro/training/sharding.py``) make every
assertion here *byte-exact*: any worker count, any fault schedule, and any
resume point must reproduce the single-process parameters bit for bit, so
the chaos tests compare ``tobytes()`` instead of tolerances.
"""

import os
import signal

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample
from repro.models import ModelConfig, build_model
from repro.training import (
    ElasticConfig,
    ElasticTrainer,
    ResilienceConfig,
    TrainerConfig,
    TrainingDiverged,
    TrainingInterrupted,
    WorkerFaultPlan,
)

from faults import assert_no_orphans, nan_loss_on_nth_batch

RUN_SEED = 7

FAST_POOL = dict(
    microbatches_per_step=2,
    worker_timeout=5.0,
    heartbeat_interval=0.1,
    restart_backoff=0.05,
)


def _make_setup(dropout=0.3):
    sentences = [
        "zorvex was born in karlin .",
        "mira designed the velkin tower .",
        "draxby is the capital of ostavia .",
        "the quen river flows through belcor .",
        "pelor wrote the sunken atlas .",
        "the omber bridge spans the fjord .",
    ]
    questions = [
        "where was zorvex born ?",
        "who designed the velkin tower ?",
        "what is the capital of ostavia ?",
        "what river flows through belcor ?",
        "who wrote the sunken atlas ?",
        "what spans the fjord ?",
    ]
    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
        for s, q in zip(sentences, questions)
    ]
    encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
    dataset = QGDataset(examples, encoder, decoder)
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=dropout, seed=0)
    model = build_model("acnn", config, len(encoder), len(decoder))
    return model, dataset


def _trainer(workers, fault_plan=None, epochs=2, resilience=None, **pool_overrides):
    model, dataset = _make_setup()
    pool = {**FAST_POOL, **pool_overrides}
    dev = BatchIterator(dataset, batch_size=2, shuffle=False)
    return ElasticTrainer(
        model,
        dataset,
        batch_size=2,
        dev_iterator=dev,
        config=TrainerConfig(epochs=epochs, learning_rate=0.5),
        elastic=ElasticConfig(workers=workers, **pool),
        fault_plan=fault_plan,
        resilience=resilience,
        run_seed=RUN_SEED,
    )


def _run(workers, fault_plan=None, epochs=2, **pool_overrides):
    trainer = _trainer(workers, fault_plan=fault_plan, epochs=epochs, **pool_overrides)
    history = trainer.train()
    assert trainer.live_worker_pids() == []
    return trainer.model.state_dict(), history, trainer


def _assert_same_params(reference, other):
    assert reference.keys() == other.keys()
    for key in reference:
        assert np.array_equal(reference[key], other[key]), f"parameter drifted: {key}"


@pytest.fixture(scope="module")
def baseline():
    """The workers=0 (inline) run every other run must reproduce exactly."""
    return _run(0)


# ----------------------------------------------------------------------
# Configuration & fault-plan plumbing
# ----------------------------------------------------------------------
def test_elastic_config_validation():
    with pytest.raises(ValueError):
        ElasticConfig(workers=-1)
    with pytest.raises(ValueError):
        ElasticConfig(microbatches_per_step=0)
    with pytest.raises(ValueError):
        ElasticConfig(worker_timeout=0)
    with pytest.raises(ValueError):
        ElasticConfig(heartbeat_interval=2.0, worker_timeout=1.0)
    with pytest.raises(ValueError):
        ElasticConfig(max_worker_restarts=-1)


def test_fault_plan_triggers_on_exact_compute():
    plan = WorkerFaultPlan(
        kill_on_compute={0: 2}, stall_on_compute={1: 1}, corrupt_on_compute={2: 3}
    )
    assert plan.action_for(0, 1) is None
    assert plan.action_for(0, 2) == "kill"
    assert plan.action_for(1, 1) == "stall"
    assert plan.action_for(2, 3) == "corrupt"
    assert plan.action_for(3, 1) is None


def test_empty_examples_rejected():
    model, dataset = _make_setup()
    with pytest.raises(ValueError):
        ElasticTrainer(model, [], batch_size=2)


# ----------------------------------------------------------------------
# World-size parity: the bit-exact determinism acceptance gate
# ----------------------------------------------------------------------
def test_any_world_size_produces_identical_parameters(baseline):
    """W=0, 1, 2, 4 with pinned microbatches_per_step: byte-identical."""
    ref_params, ref_history, _ = baseline
    for workers in (1, 2, 4):
        params, history, _ = _run(workers)
        _assert_same_params(ref_params, params)
        assert [r.train_loss for r in history.records] == [
            r.train_loss for r in ref_history.records
        ], f"train loss diverged at workers={workers}"
        assert [r.dev_loss for r in history.records] == [
            r.dev_loss for r in ref_history.records
        ], f"dev loss diverged at workers={workers}"


def test_microbatches_per_step_defines_the_trajectory():
    """Changing G changes the optimization; pinning G is what parity needs."""
    params_g2, _, _ = _run(0)
    params_g1, _, _ = _run(0, microbatches_per_step=1)
    assert any(
        not np.array_equal(params_g2[key], params_g1[key]) for key in params_g2
    )


# ----------------------------------------------------------------------
# Chaos: kill / stall / corrupt, all byte-exact after recovery
# ----------------------------------------------------------------------
def test_killed_worker_recovers_bit_exactly(baseline):
    ref_params, ref_history, _ = baseline
    params, history, trainer = _run(2, WorkerFaultPlan(kill_on_compute={1: 2}))
    _assert_same_params(ref_params, params)
    assert history.records[-1].dev_loss == ref_history.records[-1].dev_loss
    assert trainer.worker_deaths == 1
    assert trainer.worker_restarts == 1


def test_kill_plus_stall_still_completes_bit_exactly(baseline):
    """The acceptance scenario: one worker dies, another stalls past its
    heartbeat timeout; training completes without hanging, no orphans,
    identical final parameters and dev loss."""
    ref_params, ref_history, _ = baseline
    params, history, trainer = _run(
        2,
        WorkerFaultPlan(kill_on_compute={0: 1}, stall_on_compute={1: 2}),
        worker_timeout=1.5,
        heartbeat_interval=0.2,
    )
    _assert_same_params(ref_params, params)
    assert history.records[-1].dev_loss == ref_history.records[-1].dev_loss
    assert trainer.worker_deaths == 2


def test_corrupt_gradient_detected_and_recomputed(baseline):
    ref_params, _, _ = baseline
    params, _, trainer = _run(2, WorkerFaultPlan(corrupt_on_compute={0: 1}))
    _assert_same_params(ref_params, params)
    assert trainer.worker_deaths == 1  # the corrupter was declared faulty


def test_restart_budget_exhaustion_degrades_to_inline(baseline):
    """Every worker retired -> the coordinator computes inline, bit-exactly."""
    ref_params, ref_history, _ = baseline
    params, history, trainer = _run(
        2,
        WorkerFaultPlan(kill_on_compute={0: 1, 1: 1}),
        max_worker_restarts=0,
    )
    _assert_same_params(ref_params, params)
    assert [r.dev_loss for r in history.records] == [
        r.dev_loss for r in ref_history.records
    ]
    assert trainer.worker_deaths == 2
    assert trainer.worker_restarts == 0
    assert trainer._degraded is True


def test_no_orphan_processes_after_training(monkeypatch):
    spawned: list[int] = []
    original = ElasticTrainer._spawn_worker

    def recording(self, handle):
        original(self, handle)
        spawned.append(handle.process.pid)

    monkeypatch.setattr(ElasticTrainer, "_spawn_worker", recording)
    # Kill on the FIRST compute so the replacement spawns while work remains.
    _, _, trainer = _run(2, WorkerFaultPlan(kill_on_compute={0: 1}))
    assert trainer.worker_deaths == 1
    assert len(spawned) >= 2  # the initial pool; usually 3 with the respawn
    assert_no_orphans(spawned)


# ----------------------------------------------------------------------
# Divergence: reproducible non-finite gradients are NOT worker faults
# ----------------------------------------------------------------------
def test_deterministic_nan_raises_training_diverged():
    trainer = _trainer(0)
    with nan_loss_on_nth_batch(trainer.model, 2, every_after=True):
        with pytest.raises(TrainingDiverged):
            trainer.train()


def test_deterministic_nan_exhausts_recovery_budget(tmp_path):
    resilience = ResilienceConfig(directory=tmp_path / "snaps", max_retries=2)
    trainer = _trainer(0, resilience=resilience)
    with nan_loss_on_nth_batch(trainer.model, 2, every_after=True):
        with pytest.raises(TrainingDiverged) as info:
            trainer.train()
    assert len(info.value.recovery_log) == 2  # both retries were spent


# ----------------------------------------------------------------------
# Snapshots & resume
# ----------------------------------------------------------------------
def test_resume_from_epoch_end_is_bit_exact(baseline, tmp_path):
    ref_params, ref_history, _ = baseline
    snap_dir = tmp_path / "snaps"
    first = _trainer(0, epochs=1, resilience=ResilienceConfig(directory=snap_dir))
    first.train()
    resumed = _trainer(0, epochs=2, resilience=ResilienceConfig(directory=snap_dir))
    history = resumed.train(resume_from=snap_dir)
    _assert_same_params(ref_params, resumed.model.state_dict())
    assert len(history.records) == 2
    assert history.records[-1].dev_loss == ref_history.records[-1].dev_loss


def test_resume_mid_epoch_is_bit_exact(baseline, tmp_path):
    ref_params, _, _ = baseline
    snap_dir = tmp_path / "snaps"
    interrupted = _trainer(
        0, resilience=ResilienceConfig(directory=snap_dir, handle_signals=True)
    )
    # Flag an interrupt before training: the coordinator notices it after
    # the first optimizer step and writes a mid-epoch "interrupt" snapshot.
    interrupted._interrupt_signum = signal.SIGINT
    with pytest.raises(TrainingInterrupted) as info:
        interrupted.train()
    assert info.value.snapshot_path is not None

    resumed = _trainer(0, resilience=ResilienceConfig(directory=snap_dir))
    resumed.train(resume_from=snap_dir)
    _assert_same_params(ref_params, resumed.model.state_dict())


def test_resume_with_multiprocess_pool_is_bit_exact(baseline, tmp_path):
    ref_params, _, _ = baseline
    snap_dir = tmp_path / "snaps"
    first = _trainer(2, epochs=1, resilience=ResilienceConfig(directory=snap_dir))
    first.train()
    resumed = _trainer(2, epochs=2, resilience=ResilienceConfig(directory=snap_dir))
    resumed.train(resume_from=snap_dir)
    _assert_same_params(ref_params, resumed.model.state_dict())


def test_resume_rejects_mismatched_run_seed(tmp_path):
    snap_dir = tmp_path / "snaps"
    first = _trainer(0, epochs=1, resilience=ResilienceConfig(directory=snap_dir))
    first.train()
    model, dataset = _make_setup()
    mismatched = ElasticTrainer(
        model,
        dataset,
        batch_size=2,
        config=TrainerConfig(epochs=2, learning_rate=0.5),
        elastic=ElasticConfig(workers=0, **FAST_POOL),
        resilience=ResilienceConfig(directory=snap_dir),
        run_seed=RUN_SEED + 1,
    )
    with pytest.raises(ValueError, match="run_seed"):
        mismatched.train(resume_from=snap_dir)


def test_resume_rejects_single_process_snapshots(tmp_path):
    from repro.training import Trainer

    model, dataset = _make_setup()
    snap_dir = tmp_path / "snaps"
    Trainer(
        model,
        BatchIterator(dataset, batch_size=2, seed=0),
        config=TrainerConfig(epochs=1, learning_rate=0.5),
        resilience=ResilienceConfig(directory=snap_dir),
    ).train()
    elastic = _trainer(0, resilience=ResilienceConfig(directory=snap_dir))
    with pytest.raises(ValueError, match="elastic"):
        elastic.train(resume_from=snap_dir)


# ----------------------------------------------------------------------
# Telemetry surface
# ----------------------------------------------------------------------
def test_pool_telemetry_records_membership_and_efficiency():
    from repro.observability import MemorySink, Telemetry

    sink = MemorySink()
    model, dataset = _make_setup()
    trainer = ElasticTrainer(
        model,
        dataset,
        batch_size=2,
        config=TrainerConfig(epochs=1, learning_rate=0.5),
        elastic=ElasticConfig(workers=2, **FAST_POOL),
        telemetry=Telemetry([sink]),
        run_seed=RUN_SEED,
    )
    trainer.train()
    gauges = {record["name"] for record in sink.of_kind("gauge")}
    assert "elastic.world_size" in gauges
    assert "elastic.scaling_efficiency" in gauges
    assert any(name.startswith("elastic.worker") for name in gauges)
    markers = {record["name"] for record in sink.of_kind("run")}
    assert "elastic_start" in markers
    assert "elastic_finish" in markers
