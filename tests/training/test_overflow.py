"""Tests for overflow-skip training: quarantine, escalation, loss scaling."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary
from repro.models import ModelConfig, build_model
from repro.observability import MemorySink, Telemetry
from repro.optim import NonFiniteGradError
from repro.training import (
    BatchQuarantined,
    DynamicLossScaler,
    OverflowPolicy,
    Trainer,
    TrainerConfig,
    TrainingDiverged,
)
from repro.training.resilience import ResilienceConfig


def _setup(num_examples: int = 1):
    base = [
        (("zorvex", "was", "born", "."), ("where", "was", "zorvex", "born", "?")),
        (("mira", "leads", "the", "guild", "."), ("who", "leads", "the", "guild", "?")),
        (("rain", "fell", "all", "night", "."), ("when", "did", "rain", "fall", "?")),
    ]
    examples = [
        QGExample(sentence=s, paragraph=s, question=q)
        for s, q in (base * ((num_examples + len(base) - 1) // len(base)))[:num_examples]
    ]
    encoder = Vocabulary.build([example.sentence for example in examples])
    decoder = Vocabulary.build([example.question for example in examples])
    dataset = QGDataset(examples, encoder, decoder)
    config = ModelConfig(embedding_dim=6, hidden_size=5, num_layers=1, dropout=0.0, seed=0)
    model = build_model("acnn", config, len(encoder), len(decoder))
    iterator = BatchIterator(dataset, batch_size=1, shuffle=False)
    return model, iterator


class LossPoisoner:
    """Wraps model.loss; scales the loss to NaN on chosen call numbers."""

    def __init__(self, model, poison_calls: set[int]):
        self._real = model.loss
        self._poison = poison_calls
        self.calls = 0

    def __call__(self, batch):
        self.calls += 1
        loss = self._real(batch)
        if self.calls in self._poison:
            return loss * float("nan")
        return loss


# ----------------------------------------------------------------------
# DynamicLossScaler
# ----------------------------------------------------------------------
def test_scaler_defaults_are_inert():
    scaler = DynamicLossScaler()
    assert scaler.scale == 1.0
    assert not scaler.active
    scaler.on_good_step()
    assert scaler.scale == 1.0  # growth disabled by default


def test_scaler_backs_off_and_regrows():
    scaler = DynamicLossScaler(init_scale=8.0, growth_interval=2)
    assert scaler.on_overflow() == 4.0
    assert scaler.consecutive_overflows == 1
    scaler.on_good_step()
    assert scaler.consecutive_overflows == 0
    assert scaler.scale == 4.0
    scaler.on_good_step()
    assert scaler.scale == 8.0  # grew after growth_interval good steps


def test_scaler_respects_bounds():
    scaler = DynamicLossScaler(init_scale=2.0**-14)
    assert scaler.on_overflow() == scaler.min_scale
    scaler = DynamicLossScaler(init_scale=2.0**16, growth_interval=1)
    assert scaler.on_good_step() == scaler.max_scale


def test_scaler_state_roundtrip():
    scaler = DynamicLossScaler(init_scale=4.0, growth_interval=3)
    scaler.on_overflow()
    scaler.on_good_step()
    restored = DynamicLossScaler()
    restored.load_state_dict(scaler.state_dict())
    assert restored.scale == scaler.scale
    assert restored.good_steps == scaler.good_steps
    assert restored.overflows == scaler.overflows


def test_scaler_validates_arguments():
    with pytest.raises(ValueError):
        DynamicLossScaler(init_scale=0.0)
    with pytest.raises(ValueError):
        DynamicLossScaler(backoff_factor=1.5)
    with pytest.raises(ValueError):
        DynamicLossScaler(growth_factor=1.0)


# ----------------------------------------------------------------------
# TrainerConfig policy plumbing
# ----------------------------------------------------------------------
def test_config_rejects_unknown_policy():
    with pytest.raises(ValueError, match="overflow_policy"):
        TrainerConfig(overflow_policy="ignore")


def test_config_rejects_bad_max_consecutive():
    with pytest.raises(ValueError, match="overflow_max_consecutive"):
        TrainerConfig(overflow_policy="skip", overflow_max_consecutive=0)


def test_policy_constants():
    assert OverflowPolicy.ALL == ("skip", "rollback", "raise")


# ----------------------------------------------------------------------
# Skip policy: quarantine and continue
# ----------------------------------------------------------------------
def test_skip_policy_quarantines_and_completes():
    model, iterator = _setup(num_examples=3)
    sink = MemorySink()
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=2, overflow_policy="skip"),
        telemetry=Telemetry([sink]),
    )
    model.loss = LossPoisoner(model, poison_calls={2})  # 2nd batch of epoch 1
    history = trainer.train()
    assert len(history) == 2
    assert trainer.overflow_skipped == 1
    assert not history.events  # no snapshot rollback happened
    markers = [r for r in sink.of_kind("run") if r["name"] == "overflow_quarantine"]
    assert len(markers) == 1
    assert markers[0]["data"]["cause"] == "nonfinite_loss"
    counters = sink.named("train.overflow.skipped")
    assert counters
    assert all(np.isfinite(record.train_loss) for record in history.records)


def test_skipped_batch_does_not_move_parameters():
    model, iterator = _setup(num_examples=1)
    trainer = Trainer(
        model, iterator, None, TrainerConfig(epochs=1, overflow_policy="skip")
    )
    before = {k: v.copy() for k, v in model.state_dict().items()}
    model.loss = LossPoisoner(model, poison_calls={1})  # only batch poisoned
    trainer.train()
    after = model.state_dict()
    for key, value in before.items():
        np.testing.assert_array_equal(value, after[key])


def test_skip_escalates_after_max_consecutive():
    model, iterator = _setup(num_examples=1)
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(
            epochs=12, overflow_policy="skip", overflow_max_consecutive=3
        ),
    )
    model.loss = LossPoisoner(model, poison_calls=set(range(1, 100)))
    with pytest.raises(TrainingDiverged, match="consecutive batches quarantined"):
        trainer.train()
    assert trainer.overflow_skipped == 3


def test_good_step_resets_consecutive_count():
    model, iterator = _setup(num_examples=2)
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=3, overflow_policy="skip", overflow_max_consecutive=2),
    )
    # Poison every first batch of each epoch: 1-2 good, never 2 in a row.
    model.loss = LossPoisoner(model, poison_calls={1, 3, 5})
    history = trainer.train()
    assert len(history) == 3
    assert trainer.overflow_skipped == 3


def test_nonfinite_grad_quarantined_with_typed_cause(monkeypatch):
    model, iterator = _setup(num_examples=2)
    sink = MemorySink()
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=1, overflow_policy="skip"),
        telemetry=Telemetry([sink]),
    )
    calls = {"n": 0}
    from repro.training import trainer as trainer_module
    real_clip = trainer_module.clip_grad_norm

    def clip_with_fault(parameters, max_norm, on_nonfinite="raise"):
        calls["n"] += 1
        if calls["n"] == 1:
            raise NonFiniteGradError(float("nan"), ["parameter[0]"])
        return real_clip(parameters, max_norm, on_nonfinite=on_nonfinite)

    monkeypatch.setattr(trainer_module, "clip_grad_norm", clip_with_fault)
    history = trainer.train()
    assert len(history) == 1
    markers = [r for r in sink.of_kind("run") if r["name"] == "overflow_quarantine"]
    assert markers[0]["data"]["cause"] == "nonfinite_grad_norm"


# ----------------------------------------------------------------------
# Raise policy: no recovery even with resilience configured
# ----------------------------------------------------------------------
def test_raise_policy_skips_recovery(tmp_path):
    model, iterator = _setup(num_examples=1)
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=2, overflow_policy="raise"),
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=5),
    )
    model.loss = LossPoisoner(model, poison_calls={2})
    with pytest.raises(TrainingDiverged) as excinfo:
        trainer.train()
    assert not excinfo.value.recovery_log  # rollback was not attempted
    assert not excinfo.value.allow_recovery


def test_rollback_policy_still_recovers(tmp_path):
    model, iterator = _setup(num_examples=1)
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=2, overflow_policy="rollback"),
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=5),
    )
    model.loss = LossPoisoner(model, poison_calls={2})
    history = trainer.train()
    assert len(history) == 2
    assert len(history.events) == 1  # one rollback, cause carried through
    assert history.events[0].cause == "nonfinite_loss"


# ----------------------------------------------------------------------
# Loss scaling
# ----------------------------------------------------------------------
def test_power_of_two_loss_scale_is_bit_identical():
    model_a, iterator_a = _setup(num_examples=2)
    model_b, iterator_b = _setup(num_examples=2)
    Trainer(
        model_a, iterator_a, None, TrainerConfig(epochs=1, overflow_policy="skip")
    ).train()
    Trainer(
        model_b,
        iterator_b,
        None,
        TrainerConfig(epochs=1, overflow_policy="skip"),
        loss_scaler=DynamicLossScaler(init_scale=4.0),
    ).train()
    for key, value in model_a.state_dict().items():
        np.testing.assert_array_equal(value, model_b.state_dict()[key])


def test_scaler_backs_off_on_quarantine():
    model, iterator = _setup(num_examples=2)
    scaler = DynamicLossScaler(init_scale=4.0)
    trainer = Trainer(
        model,
        iterator,
        None,
        TrainerConfig(epochs=1, overflow_policy="skip"),
        loss_scaler=scaler,
    )
    model.loss = LossPoisoner(model, poison_calls={1})
    trainer.train()
    assert scaler.overflows == 1
    assert scaler.scale == 2.0


def test_batch_quarantined_is_typed():
    exc = BatchQuarantined("boom", cause="nonfinite_loss", step=7, value=float("nan"))
    assert isinstance(exc, ArithmeticError)
    assert exc.cause == "nonfinite_loss"
    assert exc.step == 7
