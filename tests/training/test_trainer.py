"""Tests for the Trainer: schedule, early stopping, best-state restore."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary
from repro.models import ModelConfig, build_model
from repro.optim import Adam, ConstantSchedule
from repro.training import Trainer, TrainerConfig


@pytest.fixture()
def small_setup():
    sentences = [
        "zorvex was born in karlin .",
        "mira designed the velkin tower .",
        "draxby is the capital of ostavia .",
        "the quen river flows through belcor .",
    ]
    questions = [
        "where was zorvex born ?",
        "who designed the velkin tower ?",
        "what is the capital of ostavia ?",
        "what river flows through belcor ?",
    ]
    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
        for s, q in zip(sentences, questions)
    ]
    encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
    dataset = QGDataset(examples, encoder, decoder)
    train_it = BatchIterator(dataset, batch_size=2, seed=0)
    dev_it = BatchIterator(dataset, batch_size=2, shuffle=False)
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.0, seed=0)
    model = build_model("acnn", config, len(encoder), len(decoder))
    return model, train_it, dev_it


def test_trainer_config_validation():
    with pytest.raises(ValueError):
        TrainerConfig(epochs=0)
    with pytest.raises(ValueError):
        TrainerConfig(learning_rate=0)
    with pytest.raises(ValueError):
        TrainerConfig(clip_norm=0)


def test_training_reduces_loss(small_setup):
    model, train_it, dev_it = small_setup
    trainer = Trainer(model, train_it, dev_it, TrainerConfig(epochs=4, learning_rate=0.8))
    history = trainer.train()
    assert len(history) == 4
    assert history.records[-1].train_loss < history.records[0].train_loss


def test_learning_rate_halves_at_configured_epoch(small_setup):
    model, train_it, dev_it = small_setup
    trainer = Trainer(
        model, train_it, None, TrainerConfig(epochs=4, learning_rate=1.0, halve_at_epoch=3)
    )
    history = trainer.train()
    rates = [r.learning_rate for r in history]
    assert rates == [1.0, 1.0, 0.5, 0.5]


def test_dev_loss_recorded(small_setup):
    model, train_it, dev_it = small_setup
    trainer = Trainer(model, train_it, dev_it, TrainerConfig(epochs=2))
    history = trainer.train()
    assert all(r.dev_loss is not None for r in history)


def test_no_dev_iterator_leaves_dev_none(small_setup):
    model, train_it, _ = small_setup
    trainer = Trainer(model, train_it, None, TrainerConfig(epochs=1))
    history = trainer.train()
    assert history.records[0].dev_loss is None
    assert trainer.best_state is None


def test_early_stopping_halts(small_setup):
    model, train_it, dev_it = small_setup

    class ExplodingSchedule(ConstantSchedule):
        """Keeps lr huge so dev loss cannot keep improving."""

    trainer = Trainer(
        model,
        train_it,
        dev_it,
        TrainerConfig(epochs=30, learning_rate=20.0, early_stopping_patience=2),
    )
    history = trainer.train()
    assert len(history) < 30


def test_best_state_restored_after_training(small_setup):
    model, train_it, dev_it = small_setup
    trainer = Trainer(
        model, train_it, dev_it, TrainerConfig(epochs=3, learning_rate=0.5)
    )
    trainer.train()
    assert trainer.best_state is not None
    # Model parameters equal the stored best state.
    for name, param in model.named_parameters():
        assert np.allclose(param.data, trainer.best_state[name])


def test_best_state_is_a_deep_copy(small_setup):
    """Mutating the live model after training must not bleed into best_state."""
    model, train_it, dev_it = small_setup
    trainer = Trainer(model, train_it, dev_it, TrainerConfig(epochs=2, learning_rate=0.5))
    trainer.train()
    frozen = {name: value.copy() for name, value in trainer.best_state.items()}
    for _, param in model.named_parameters():
        param.data += 123.0
    for name, value in trainer.best_state.items():
        assert np.array_equal(value, frozen[name]), name


def test_epoch_callback_invoked(small_setup):
    model, train_it, _ = small_setup
    seen = []
    trainer = Trainer(
        model, train_it, None, TrainerConfig(epochs=2), epoch_callback=seen.append
    )
    trainer.train()
    assert [r.epoch for r in seen] == [1, 2]


def test_custom_optimizer_and_schedule(small_setup):
    model, train_it, _ = small_setup
    optimizer = Adam(model.parameters(), lr=0.01)
    trainer = Trainer(
        model,
        train_it,
        None,
        TrainerConfig(epochs=2, learning_rate=0.01),
        optimizer=optimizer,
        schedule=ConstantSchedule(optimizer),
    )
    history = trainer.train()
    assert [r.learning_rate for r in history] == [0.01, 0.01]


def test_padding_embedding_rows_stay_zero(small_setup):
    model, train_it, _ = small_setup
    Trainer(model, train_it, None, TrainerConfig(epochs=2, learning_rate=1.0)).train()
    assert np.allclose(model.encoder_embedding.weight.data[0], 0.0)
    assert np.allclose(model.decoder_embedding.weight.data[0], 0.0)


def test_grad_norm_recorded_positive(small_setup):
    model, train_it, _ = small_setup
    trainer = Trainer(model, train_it, None, TrainerConfig(epochs=1))
    history = trainer.train()
    assert history.records[0].grad_norm > 0
