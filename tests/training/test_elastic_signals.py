"""Ctrl-C on the elastic pool: one graceful snapshot, no orphans.

A terminal SIGINT goes to the whole foreground process group — coordinator
AND workers. Workers mask SIGINT (:func:`repro.training.elastic
.mask_worker_signals`), so only the coordinator reacts: it finishes the
in-flight optimizer step, writes exactly ONE final "interrupt" snapshot,
and shuts the pool down. This test drives a real training process from
outside and asserts that contract end to end.
"""

import os

from faults import (
    assert_no_orphans,
    descendant_pids,
    interrupt_group,
    spawn_process,
    wait_for_marker,
)

from repro.training.resilience import SnapshotStore

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))

TRAIN_SCRIPT = """
import sys

from repro.data import BatchIterator, QGDataset, QGExample
from repro.models import ModelConfig, build_model
from repro.training import (
    ElasticConfig,
    ElasticTrainer,
    ResilienceConfig,
    TrainerConfig,
    TrainingInterrupted,
)

sentences = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "pelor wrote the sunken atlas .",
    "the omber bridge spans the fjord .",
]
questions = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who wrote the sunken atlas ?",
    "what spans the fjord ?",
]
examples = [
    QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
    for s, q in zip(sentences, questions)
]
encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
dataset = QGDataset(examples, encoder, decoder)
model = build_model(
    "acnn", ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.3, seed=0),
    len(encoder), len(decoder),
)

trainer = ElasticTrainer(
    model,
    dataset,
    batch_size=2,
    config=TrainerConfig(epochs=500, learning_rate=0.1),
    elastic=ElasticConfig(workers=2, microbatches_per_step=2, heartbeat_interval=0.1),
    resilience=ResilienceConfig(directory=sys.argv[1], handle_signals=True),
    epoch_callback=lambda record: print(f"EPOCH {record.epoch} DONE", flush=True),
    run_seed=7,
)
try:
    trainer.train()
except TrainingInterrupted as exc:
    print(f"INTERRUPTED snapshot={exc.snapshot_path}", flush=True)
    assert trainer.live_worker_pids() == [], "pool not shut down on interrupt"
    sys.exit(130)
print("FINISHED WITHOUT INTERRUPT", flush=True)
sys.exit(1)
"""


def test_sigint_on_pool_yields_one_graceful_snapshot(tmp_path):
    snap_dir = tmp_path / "snaps"
    env = {"PYTHONPATH": os.path.join(REPO_ROOT, "src")}
    process = spawn_process(
        TRAIN_SCRIPT, args=[str(snap_dir)], env=env, cwd=REPO_ROOT
    )
    try:
        wait_for_marker(process, "EPOCH 2 DONE", timeout=120.0)
        workers = descendant_pids(process.pid)
        assert len(workers) >= 2, "worker pool never came up"

        interrupt_group(process)
        output = wait_for_marker(process, "INTERRUPTED", timeout=60.0)
        assert process.wait(timeout=60.0) == 130
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)

    # The whole group got SIGINT, yet nothing survived the coordinator.
    assert_no_orphans(workers + [process.pid])

    # Exactly one graceful final snapshot: the coordinator writes either a
    # mid-epoch "interrupt" snapshot or — when the signal lands on the epoch
    # boundary — hands back the just-written "epoch_end" one. The workers
    # (who also received the SIGINT) never write a competing copy, so every
    # snapshot on disk is a coordinator phase and at most one is "interrupt".
    store = SnapshotStore(snap_dir)
    phases = [store.load_step(step)[1]["phase"] for step in store.list_steps()]
    assert phases.count("interrupt") <= 1, phases
    assert all(p in {"epoch_start", "mid_epoch", "epoch_end", "interrupt"} for p in phases)
    latest = store.latest_valid()
    assert latest is not None
    assert latest[1]["phase"] in {"interrupt", "epoch_end"}
    assert "INTERRUPTED snapshot=None" not in "\n".join(output)
