"""Tests for deterministic sharding: seed derivation, shard plans, tree reduce."""

import numpy as np
import pytest

from repro.models import ModelConfig, build_model
from repro.training.sharding import (
    ShardPlan,
    derive_rng,
    derive_seed_sequence,
    epoch_batch_plan,
    reseed_model_rngs,
    tree_reduce,
    tree_reduce_gradients,
)


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
def test_derive_rng_is_stable_for_equal_keys():
    a = derive_rng(7, "batch_order", 3).random(8)
    b = derive_rng(7, "batch_order", 3).random(8)
    assert np.array_equal(a, b)


def test_derive_rng_differs_across_keys():
    base = derive_rng(7, "batch_order", 3).random(8)
    assert not np.array_equal(base, derive_rng(8, "batch_order", 3).random(8))
    assert not np.array_equal(base, derive_rng(7, "batch_order", 4).random(8))
    assert not np.array_equal(base, derive_rng(7, "microbatch", 3).random(8))


def test_derive_seed_sequence_string_keys_are_hash_seed_independent():
    # String components are mapped through SHA-256, not builtin hash(), so
    # the spawn key cannot move with PYTHONHASHSEED. Pin the mapping.
    seq = derive_seed_sequence(0, "batch_order")
    assert seq.spawn_key == (2802330429,)


def test_derive_seed_sequence_int_keys_masked_not_hashed():
    seq = derive_seed_sequence(5, 3, "x", 12)
    assert seq.spawn_key[0] == 3
    assert seq.spawn_key[2] == 12
    assert seq.entropy == 5


# ----------------------------------------------------------------------
# Epoch batch plan
# ----------------------------------------------------------------------
def test_epoch_batch_plan_partitions_every_example_once():
    lengths = [3 + (i % 5) for i in range(41)]
    plan = epoch_batch_plan(lengths, 4, run_seed=9, epoch=1)
    flat = sorted(i for indices in plan for i in indices)
    assert flat == list(range(41))


def test_epoch_batch_plan_is_a_pure_function_of_seed_and_epoch():
    lengths = [3 + (i % 5) for i in range(41)]
    assert epoch_batch_plan(lengths, 4, 9, 1) == epoch_batch_plan(lengths, 4, 9, 1)
    assert epoch_batch_plan(lengths, 4, 9, 1) != epoch_batch_plan(lengths, 4, 9, 2)
    assert epoch_batch_plan(lengths, 4, 9, 1) != epoch_batch_plan(lengths, 4, 10, 1)


def test_epoch_batch_plan_no_shuffle_is_length_bucketed_identity():
    lengths = [5, 3, 4, 3, 5]
    plan = epoch_batch_plan(lengths, 2, 0, 1, shuffle=False)
    flat = sorted(i for indices in plan for i in indices)
    assert flat == list(range(5))
    # Deterministic regardless of seed when shuffling is off.
    assert plan == epoch_batch_plan(lengths, 2, 123, 1, shuffle=False)


# ----------------------------------------------------------------------
# Shard plans
# ----------------------------------------------------------------------
def test_shard_plan_requires_sorted_unique_members():
    with pytest.raises(ValueError):
        ShardPlan((2, 1))
    with pytest.raises(ValueError):
        ShardPlan((1, 1))


def test_shard_plan_round_robin_ownership():
    plan = ShardPlan((0, 2, 5))
    assert [plan.owner_of(s) for s in range(6)] == [0, 2, 5, 0, 2, 5]


def test_shard_plan_assignments_group_by_owner():
    plan = ShardPlan((1, 3))
    assert plan.assignments(range(5)) == {1: (0, 2, 4), 3: (1, 3)}


def test_shard_plan_without_reshards_onto_survivors():
    plan = ShardPlan((0, 1, 2)).without(1)
    assert plan.members == (0, 2)
    assert [plan.owner_of(s) for s in range(4)] == [0, 2, 0, 2]


def test_empty_shard_plan_has_no_owners():
    with pytest.raises(ValueError):
        ShardPlan(()).owner_of(0)


# ----------------------------------------------------------------------
# Pinned tree reduction
# ----------------------------------------------------------------------
def test_tree_reduce_matches_explicit_pairwise_fold():
    rng = np.random.default_rng(0)
    a, b, c, d, e = (rng.standard_normal(16).astype(np.float32) for _ in range(5))
    assert np.array_equal(tree_reduce([a, b, c, d]), (a + b) + (c + d))
    assert np.array_equal(tree_reduce([a, b, c, d, e]), ((a + b) + (c + d)) + e)
    assert np.array_equal(tree_reduce([a]), a)


def test_tree_reduce_empty_raises():
    with pytest.raises(ValueError):
        tree_reduce([])


def test_tree_reduce_is_order_sensitive_hence_the_pinning():
    # Floating-point addition is not associative: an arrival-ordered sum
    # would drift between world sizes. This shows the drift is real, which
    # is exactly why every caller sorts by micro-batch index first.
    rng = np.random.default_rng(1)
    grads = [
        (rng.standard_normal(512) * 10.0 ** rng.integers(-6, 6)).astype(np.float32)
        for _ in range(9)
    ]
    pinned = tree_reduce(grads)
    assert np.array_equal(pinned, tree_reduce(list(grads)))  # same order -> same bits
    drifted = any(
        not np.array_equal(pinned, tree_reduce(grads[i:] + grads[:i]))
        for i in range(1, len(grads))
    )
    assert drifted


def test_tree_reduce_equals_itself_across_world_partitions():
    # Workers only decide WHERE a contribution is computed; the coordinator
    # always reduces the slot-sorted list. Simulate three world sizes
    # producing the same per-slot contributions in different arrival orders.
    rng = np.random.default_rng(2)
    contributions = {slot: rng.standard_normal(64).astype(np.float32) for slot in range(8)}
    arrival_orders = [
        list(range(8)),          # world=1: in order
        [0, 2, 4, 6, 1, 3, 5, 7],  # world=2: even rank finishes first
        [3, 0, 7, 1, 5, 2, 6, 4],  # world=4 with a straggler
    ]
    reduced = {
        tuple(order): tree_reduce([contributions[s] for s in sorted(order)]).tobytes()
        for order in arrival_orders
    }
    assert len(set(reduced.values())) == 1


def test_tree_reduce_gradients_per_parameter():
    rng = np.random.default_rng(3)
    contribs = [[rng.standard_normal(4), rng.standard_normal((2, 3))] for _ in range(3)]
    reduced = tree_reduce_gradients(contribs)
    assert len(reduced) == 2
    for j in range(2):
        assert np.array_equal(reduced[j], tree_reduce([c[j] for c in contribs]))


def test_tree_reduce_gradients_validates_parameter_count():
    with pytest.raises(ValueError):
        tree_reduce_gradients([[np.ones(2)], [np.ones(2), np.ones(3)]])
    with pytest.raises(ValueError):
        tree_reduce_gradients([])


# ----------------------------------------------------------------------
# Model RNG reseeding
# ----------------------------------------------------------------------
def _tiny_model():
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.5, seed=0)
    return build_model("acnn", config, 20, 10)


def _drain_generators(model, n=4):
    from repro.training.resilience import _iter_module_generators

    return {
        path: generator.random(n)
        for path, generator in sorted(_iter_module_generators(model))
    }


def test_reseed_model_rngs_is_worker_independent():
    model_a, model_b = _tiny_model(), _tiny_model()
    # Desynchronize: model_b's generators have advanced arbitrarily far
    # (as a worker's would after computing other micro-batches).
    _drain_generators(model_b, 17)
    reseed_model_rngs(model_a, run_seed=5, epoch=2, microbatch=7)
    reseed_model_rngs(model_b, run_seed=5, epoch=2, microbatch=7)
    draws_a, draws_b = _drain_generators(model_a), _drain_generators(model_b)
    assert draws_a.keys() == draws_b.keys()
    for path in draws_a:
        assert np.array_equal(draws_a[path], draws_b[path]), path


def test_reseed_model_rngs_distinct_per_microbatch_and_generator():
    model = _tiny_model()
    reseed_model_rngs(model, 5, 2, 7)
    first = _drain_generators(model)
    reseed_model_rngs(model, 5, 2, 8)
    second = _drain_generators(model)
    for path in first:
        assert not np.array_equal(first[path], second[path]), path
    if len(first) > 1:
        values = [draw.tobytes() for draw in first.values()]
        assert len(set(values)) == len(values), "generators share a stream"
