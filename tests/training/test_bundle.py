"""Tests for the self-contained model bundle."""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.models import ModelConfig, build_model
from repro.training.bundle import ModelBundle


def _bundle(family="acnn", **model_kwargs):
    encoder = Vocabulary(["zorvex", "was", "born", "in", "karlin", "."])
    decoder = Vocabulary(["where", "was", "born", "?"])
    config = ModelConfig(embedding_dim=6, hidden_size=5, num_layers=1, dropout=0.0, seed=1)
    model = build_model(family, config, len(encoder), len(decoder), **model_kwargs)
    return ModelBundle(
        model=model,
        encoder_vocab=encoder,
        decoder_vocab=decoder,
        family=family,
        model_config=config,
        model_kwargs=model_kwargs,
        metadata={"mode": "sentence"},
    )


def test_round_trip_preserves_parameters(tmp_path):
    bundle = _bundle()
    bundle.save(tmp_path / "run")
    loaded = ModelBundle.load(tmp_path / "run")
    for (name_a, p_a), (name_b, p_b) in zip(
        bundle.model.named_parameters(), loaded.model.named_parameters()
    ):
        assert name_a == name_b
        assert np.allclose(p_a.data, p_b.data)


def test_round_trip_preserves_vocabs_and_metadata(tmp_path):
    bundle = _bundle()
    bundle.save(tmp_path / "run")
    loaded = ModelBundle.load(tmp_path / "run")
    assert loaded.encoder_vocab.tokens == bundle.encoder_vocab.tokens
    assert loaded.decoder_vocab.tokens == bundle.decoder_vocab.tokens
    assert loaded.metadata == {"mode": "sentence"}
    assert loaded.family == "acnn"
    assert loaded.model_config == bundle.model_config


def test_round_trip_preserves_model_kwargs(tmp_path):
    bundle = _bundle(family="acnn", use_coverage=True)
    bundle.save(tmp_path / "run")
    loaded = ModelBundle.load(tmp_path / "run")
    assert loaded.model_kwargs == {"use_coverage": True}
    assert loaded.model.use_coverage


def test_loaded_model_produces_same_loss(tmp_path):
    bundle = _bundle()
    example = QGExample(
        sentence=("zorvex", "was", "born", "in", "karlin", "."),
        paragraph=("zorvex", "was", "born", "in", "karlin", "."),
        question=("where", "was", "zorvex", "born", "?"),
    )
    dataset = QGDataset([example], bundle.encoder_vocab, bundle.decoder_vocab)
    batch = collate(list(dataset), pad_id=0)
    expected = bundle.model.loss(batch).item()
    bundle.save(tmp_path / "run")
    loaded = ModelBundle.load(tmp_path / "run")
    assert np.isclose(loaded.model.loss(batch).item(), expected)


def test_load_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        ModelBundle.load(tmp_path / "nope")


def test_save_creates_expected_files(tmp_path):
    bundle = _bundle()
    bundle.save(tmp_path / "run")
    names = {p.name for p in (tmp_path / "run").iterdir()}
    assert names == {
        "config.json", "encoder.vocab.json", "decoder.vocab.json", "model.npz", "model.json",
    }
