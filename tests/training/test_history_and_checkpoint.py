"""Tests for history tracking and checkpoint persistence."""

import math

import numpy as np
import pytest

from repro.models import ModelConfig, build_model
from repro.training import (
    EpochRecord,
    TrainingHistory,
    load_checkpoint,
    save_checkpoint,
)


def _record(epoch, train=2.0, dev=None, lr=1.0):
    return EpochRecord(epoch=epoch, train_loss=train, learning_rate=lr, grad_norm=1.0, dev_loss=dev)


def test_history_appends_in_order():
    history = TrainingHistory()
    history.append(_record(1))
    history.append(_record(2))
    assert len(history) == 2


def test_history_rejects_out_of_order_epochs():
    history = TrainingHistory()
    history.append(_record(2))
    with pytest.raises(ValueError):
        history.append(_record(1))


def test_history_best_dev_tracking():
    history = TrainingHistory()
    history.append(_record(1, dev=3.0))
    history.append(_record(2, dev=2.0))
    history.append(_record(3, dev=2.5))
    assert history.best_dev_loss == 2.0
    assert history.best_dev_epoch == 2


def test_history_best_dev_none_without_dev():
    history = TrainingHistory()
    history.append(_record(1))
    assert history.best_dev_loss is None
    assert history.best_dev_epoch is None


def test_history_final_train_loss():
    history = TrainingHistory()
    with pytest.raises(ValueError):
        _ = history.final_train_loss
    history.append(_record(1, train=1.5))
    assert history.final_train_loss == 1.5


def test_perplexity_is_exp_of_loss():
    record = _record(1, train=2.0, dev=1.0)
    assert record.train_perplexity == pytest.approx(math.exp(2.0))
    assert record.dev_perplexity == pytest.approx(math.exp(1.0))
    assert _record(1).dev_perplexity is None


def test_history_save_load_round_trip(tmp_path):
    history = TrainingHistory()
    history.append(_record(1, dev=3.0))
    history.append(_record(2, dev=2.5))
    path = tmp_path / "history.json"
    history.save(path)
    loaded = TrainingHistory.load(path)
    assert len(loaded) == 2
    assert loaded.records[1].dev_loss == 2.5


def _model(seed=0):
    config = ModelConfig(embedding_dim=6, hidden_size=5, num_layers=1, dropout=0.0, seed=seed)
    return build_model("du-attention", config, 20, 15)


def test_checkpoint_round_trip(tmp_path):
    model = _model(seed=0)
    other = _model(seed=9)
    save_checkpoint(tmp_path / "ckpt", model, metadata={"epoch": 3})
    meta = load_checkpoint(tmp_path / "ckpt", other)
    assert meta == {"epoch": 3}
    for (name_a, p_a), (name_b, p_b) in zip(model.named_parameters(), other.named_parameters()):
        assert name_a == name_b
        assert np.allclose(p_a.data, p_b.data)


def test_checkpoint_wrong_architecture_fails(tmp_path):
    model = _model()
    save_checkpoint(tmp_path / "ckpt", model)
    wrong = build_model(
        "du-attention",
        ModelConfig(embedding_dim=6, hidden_size=7, num_layers=1, dropout=0.0),
        20,
        15,
    )
    with pytest.raises(ValueError):
        load_checkpoint(tmp_path / "ckpt", wrong)


def test_checkpoint_without_metadata(tmp_path):
    model = _model()
    save_checkpoint(tmp_path / "ckpt", model)
    assert load_checkpoint(tmp_path / "ckpt", _model(seed=4)) == {}
