"""Failure-injection tests: the trainer must fail loudly on divergence."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig, TrainingDiverged


def _setup():
    example = QGExample(
        sentence=("zorvex", "was", "born", "."),
        paragraph=("zorvex", "was", "born", "."),
        question=("where", "was", "zorvex", "born", "?"),
    )
    encoder = Vocabulary.build([example.sentence])
    decoder = Vocabulary(["where", "was", "born", "?"])
    dataset = QGDataset([example], encoder, decoder)
    config = ModelConfig(embedding_dim=6, hidden_size=5, num_layers=1, dropout=0.0, seed=0)
    model = build_model("acnn", config, len(encoder), len(decoder))
    iterator = BatchIterator(dataset, batch_size=1, shuffle=False)
    return model, iterator


def test_nan_parameter_raises_diverged():
    model, iterator = _setup()
    model.readout.weight.data[0, 0] = np.nan
    trainer = Trainer(model, iterator, None, TrainerConfig(epochs=1))
    with pytest.raises(TrainingDiverged, match="non-finite training loss"):
        trainer.train()


def test_inf_parameter_raises_diverged():
    model, iterator = _setup()
    model.attention.weight.data[...] = np.inf
    trainer = Trainer(model, iterator, None, TrainerConfig(epochs=1))
    with pytest.raises(TrainingDiverged):
        trainer.train()


def test_error_message_contains_learning_rate():
    model, iterator = _setup()
    model.readout.weight.data[0, 0] = np.nan
    trainer = Trainer(model, iterator, None, TrainerConfig(epochs=1, learning_rate=0.25))
    with pytest.raises(TrainingDiverged, match="lr=0.25"):
        trainer.train()


def test_healthy_training_does_not_raise():
    model, iterator = _setup()
    trainer = Trainer(model, iterator, None, TrainerConfig(epochs=2))
    history = trainer.train()
    assert len(history) == 2
