"""Deterministic fault-injection harness for the resilience chaos tests.

Three fault families, mirroring how training runs actually die:

- :func:`crash_on_nth_publish` — the process is killed mid-persistence.
  Atomic writes publish via ``repro.tensor.serialization._publish`` (the
  temp-file → final-path rename); crashing on the Nth publish simulates a
  kill mid-``.npz``-write (N = the archive's publish) or between the
  ``.npz`` and ``.json`` of a pair (N = the metadata's publish).
- :func:`nan_loss_on_nth_batch` — the optimization itself diverges: the
  model's loss returns NaN on chosen calls, exactly what SGD at the
  paper's lr=1.0 produces on an unlucky batch.
- :func:`truncate_file` / :func:`corrupt_file` — the artifact survives the
  crash but the bytes did not (torn page, bad disk, partial copy).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from unittest import mock

import numpy as np

from repro.tensor.core import Tensor

__all__ = [
    "SimulatedCrash",
    "crash_on_nth_publish",
    "crash_on_nth_train_batch",
    "nan_loss_on_nth_batch",
    "truncate_file",
    "corrupt_file",
]


class SimulatedCrash(RuntimeError):
    """Stands in for a kill -9 at a precisely chosen persistence point."""


@contextmanager
def crash_on_nth_publish(n: int):
    """Raise :class:`SimulatedCrash` on the Nth atomic publish (1-based).

    Earlier publishes succeed normally; the crashing one dies *before* the
    rename, so the final path keeps its previous generation — exactly the
    guarantee a mid-write kill must preserve.
    """
    from repro.tensor import serialization

    real_publish = serialization._publish
    calls = {"count": 0}

    def flaky_publish(tmp_path: str, final_path: str) -> None:
        calls["count"] += 1
        if calls["count"] == n:
            raise SimulatedCrash(f"simulated crash on publish #{n} ({final_path})")
        real_publish(tmp_path, final_path)

    with mock.patch.object(serialization, "_publish", flaky_publish):
        yield calls


@contextmanager
def crash_on_nth_train_batch(trainer, n: int):
    """Raise :class:`SimulatedCrash` before the Nth ``train_batch`` (1-based)."""
    real = trainer.train_batch
    calls = {"count": 0}

    def flaky(batch):
        calls["count"] += 1
        if calls["count"] == n:
            raise SimulatedCrash(f"simulated crash before batch #{n}")
        return real(batch)

    trainer.train_batch = flaky
    try:
        yield calls
    finally:
        trainer.train_batch = real


@contextmanager
def nan_loss_on_nth_batch(model, n: int, every_after: bool = False):
    """Make ``model.loss`` return NaN on the Nth call (1-based).

    With ``every_after=True`` the NaN persists from call N onward — the
    "this lr genuinely cannot work" case that must exhaust the retry
    budget.
    """
    real_loss = model.loss
    calls = {"count": 0}

    def poisoned(batch):
        calls["count"] += 1
        hit = calls["count"] >= n if every_after else calls["count"] == n
        if hit:
            return Tensor(np.array(float("nan")))
        return real_loss(batch)

    model.loss = poisoned
    try:
        yield calls
    finally:
        model.loss = real_loss


def truncate_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> None:
    """Chop a file down to a fraction of its size (simulated torn write)."""
    location = os.fspath(path)
    size = os.path.getsize(location)
    with open(location, "r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


def corrupt_file(path: str | os.PathLike, offset: int | None = None) -> None:
    """Flip bits of one byte in place (simulated silent media corruption).

    Defaults to mid-file: bytes in the zip trailer are padding a reader
    never touches, so flipping there would not corrupt anything real.
    """
    location = os.fspath(path)
    size = os.path.getsize(location)
    position = (size // 2 if offset is None else offset) % size
    with open(location, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))
