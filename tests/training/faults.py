"""Deterministic fault-injection harness for the resilience chaos tests.

In-process fault families, mirroring how training runs actually die:

- :func:`crash_on_nth_publish` — the process is killed mid-persistence.
  Atomic writes publish via ``repro.tensor.serialization._publish`` (the
  temp-file → final-path rename); crashing on the Nth publish simulates a
  kill mid-``.npz``-write (N = the archive's publish) or between the
  ``.npz`` and ``.json`` of a pair (N = the metadata's publish).
- :func:`nan_loss_on_nth_batch` — the optimization itself diverges: the
  model's loss returns NaN on chosen calls, exactly what SGD at the
  paper's lr=1.0 produces on an unlucky batch.
- :func:`truncate_file` / :func:`corrupt_file` — the artifact survives the
  crash but the bytes did not (torn page, bad disk, partial copy).

Process-level harness (elastic chaos suite, signal regression tests, and
``scripts/resilience_smoke.py`` / ``scripts/elastic_smoke.py``), driving a
real training *process* from outside:

- :func:`spawn_process` / :func:`wait_for_marker` — start a training
  subprocess in its own process group and block until it prints a chosen
  progress marker, so signals land at a deterministic phase of the run.
- :func:`interrupt_group` — deliver SIGINT to the whole group, exactly
  what Ctrl-C does to a foreground pool (coordinator *and* workers).
- :func:`descendant_pids` / :func:`assert_no_orphans` — enumerate a
  process's live descendants via /proc and assert the pool reaped them.

Worker-level injection (kill/stall/corrupt at an exact compute command)
lives in the product seam :class:`repro.training.elastic.WorkerFaultPlan`;
this module only supplies the outside-the-process machinery.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from contextlib import contextmanager
from unittest import mock

import numpy as np

from repro.tensor.core import Tensor

__all__ = [
    "SimulatedCrash",
    "crash_on_nth_publish",
    "crash_on_nth_train_batch",
    "nan_loss_on_nth_batch",
    "truncate_file",
    "corrupt_file",
    "MarkerTimeout",
    "spawn_process",
    "wait_for_marker",
    "interrupt_group",
    "descendant_pids",
    "pid_alive",
    "assert_no_orphans",
]


class SimulatedCrash(RuntimeError):
    """Stands in for a kill -9 at a precisely chosen persistence point."""


@contextmanager
def crash_on_nth_publish(n: int):
    """Raise :class:`SimulatedCrash` on the Nth atomic publish (1-based).

    Earlier publishes succeed normally; the crashing one dies *before* the
    rename, so the final path keeps its previous generation — exactly the
    guarantee a mid-write kill must preserve.
    """
    from repro.tensor import serialization

    real_publish = serialization._publish
    calls = {"count": 0}

    def flaky_publish(tmp_path: str, final_path: str) -> None:
        calls["count"] += 1
        if calls["count"] == n:
            raise SimulatedCrash(f"simulated crash on publish #{n} ({final_path})")
        real_publish(tmp_path, final_path)

    with mock.patch.object(serialization, "_publish", flaky_publish):
        yield calls


@contextmanager
def crash_on_nth_train_batch(trainer, n: int):
    """Raise :class:`SimulatedCrash` before the Nth ``train_batch`` (1-based)."""
    real = trainer.train_batch
    calls = {"count": 0}

    def flaky(batch):
        calls["count"] += 1
        if calls["count"] == n:
            raise SimulatedCrash(f"simulated crash before batch #{n}")
        return real(batch)

    trainer.train_batch = flaky
    try:
        yield calls
    finally:
        trainer.train_batch = real


@contextmanager
def nan_loss_on_nth_batch(model, n: int, every_after: bool = False):
    """Make ``model.loss`` return NaN on the Nth call (1-based).

    With ``every_after=True`` the NaN persists from call N onward — the
    "this lr genuinely cannot work" case that must exhaust the retry
    budget.
    """
    real_loss = model.loss
    calls = {"count": 0}

    def poisoned(batch):
        calls["count"] += 1
        hit = calls["count"] >= n if every_after else calls["count"] == n
        if hit:
            return Tensor(np.array(float("nan")))
        return real_loss(batch)

    model.loss = poisoned
    try:
        yield calls
    finally:
        model.loss = real_loss


def truncate_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> None:
    """Chop a file down to a fraction of its size (simulated torn write)."""
    location = os.fspath(path)
    size = os.path.getsize(location)
    with open(location, "r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


def corrupt_file(path: str | os.PathLike, offset: int | None = None) -> None:
    """Flip bits of one byte in place (simulated silent media corruption).

    Defaults to mid-file: bytes in the zip trailer are padding a reader
    never touches, so flipping there would not corrupt anything real.
    """
    location = os.fspath(path)
    size = os.path.getsize(location)
    position = (size // 2 if offset is None else offset) % size
    with open(location, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))


# ----------------------------------------------------------------------
# Process-level harness
# ----------------------------------------------------------------------
class MarkerTimeout(AssertionError):
    """The subprocess never printed the expected progress marker."""


def spawn_process(
    script: str,
    *,
    args: list[str] | None = None,
    env: dict | None = None,
    cwd: str | os.PathLike | None = None,
) -> subprocess.Popen:
    """Run ``python -c script`` in its own process group, stdout piped.

    The new session means :func:`interrupt_group` can SIGINT the child and
    every process it forks (the elastic worker pool) in one delivery — the
    same fan-out a terminal Ctrl-C produces — without touching the test
    runner's own group.
    """
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.Popen(
        [sys.executable, "-u", "-c", script] + (args or []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
        env=merged,
        cwd=cwd,
    )


def wait_for_marker(
    process: subprocess.Popen, marker: str, timeout: float = 120.0
) -> list[str]:
    """Read stdout lines until one contains ``marker``; returns lines so far.

    Raises :class:`MarkerTimeout` (with everything captured) if the process
    exits or the deadline passes first — a chaos test must fail with the
    child's output, not hang.
    """
    deadline = time.monotonic() + timeout
    lines: list[str] = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line:
            lines.append(line.rstrip("\n"))
            if marker in line:
                return lines
            continue
        if process.poll() is not None:
            break
        time.sleep(0.01)
    raise MarkerTimeout(
        f"marker {marker!r} not seen (exit={process.poll()}); output so far:\n"
        + "\n".join(lines)
    )


def interrupt_group(process: subprocess.Popen, sig: int = signal.SIGINT) -> None:
    """Deliver ``sig`` to the subprocess's whole process group (Ctrl-C)."""
    os.killpg(os.getpgid(process.pid), sig)


def descendant_pids(pid: int) -> list[int]:
    """All live descendants of ``pid``, via /proc (Linux only)."""
    children: dict[int, list[int]] = {}
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as handle:
                fields = handle.read().rsplit(")", 1)[1].split()
            children.setdefault(int(fields[1]), []).append(int(entry))
        except (OSError, IndexError, ValueError):
            continue  # raced with process exit
    found: list[int] = []
    frontier = [pid]
    while frontier:
        parent = frontier.pop()
        for child in children.get(parent, []):
            found.append(child)
            frontier.append(child)
    return found


def pid_alive(pid: int) -> bool:
    """True if ``pid`` exists and is not a zombie."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            state = handle.read().rsplit(")", 1)[1].split()[0]
        return state != "Z"
    except OSError:
        return False


def assert_no_orphans(pids: list[int], timeout: float = 10.0) -> None:
    """Assert every pid exits (or is reaped) within ``timeout`` seconds.

    Gives the supervisor a grace window to finish its own shutdown, then
    fails with the survivors — the invariant the elastic pool must uphold
    on every exit path (completion, interrupt, crash).
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        survivors = [pid for pid in pids if pid_alive(pid)]
        if not survivors:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned worker processes survived: {survivors}")
