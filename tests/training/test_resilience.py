"""End-to-end resilience tests: bit-exact resume, divergence recovery, signals.

The contract under test: a run that crashes, is interrupted, or diverges
and then recovers must end in *exactly* the state of an uninterrupted run —
same history records, same parameter bits — because every RNG stream,
cursor, and accumulator is part of the snapshot.
"""

import os
import signal

import numpy as np
import pytest

from faults import (
    SimulatedCrash,
    crash_on_nth_train_batch,
    nan_loss_on_nth_batch,
    truncate_file,
)
from repro.data import BatchIterator, QGDataset, QGExample
from repro.models import ModelConfig, build_model
from repro.training import (
    EmptyEvaluationError,
    ResilienceConfig,
    Trainer,
    TrainerConfig,
    TrainingDiverged,
    TrainingInterrupted,
)

SENTENCES = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "tovenka built the glass spire .",
    "the ilex bridge spans the morda .",
]
QUESTIONS = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who built the glass spire ?",
    "what spans the morda ?",
]
EXAMPLES = [
    QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
    for s, q in zip(SENTENCES, QUESTIONS)
]
ENCODER, DECODER = QGDataset.build_vocabs(EXAMPLES, 100, 100)
DATASET = QGDataset(EXAMPLES, ENCODER, DECODER)


def _build(family="acnn", dropout=0.3):
    """Fresh model + iterators with fixed seeds; dropout>0 so RNG streams
    are genuinely exercised by the bit-exactness assertions."""
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=dropout, seed=0)
    model = build_model(family, config, len(ENCODER), len(DECODER))
    train_it = BatchIterator(DATASET, batch_size=2, seed=0)
    dev_it = BatchIterator(DATASET, batch_size=2, shuffle=False)
    return model, train_it, dev_it


def _assert_same_run(history_a, model_a, history_b, model_b):
    records_a = [vars(r) for r in history_a.records]
    records_b = [vars(r) for r in history_b.records]
    assert records_a == records_b
    for (name, p_a), (_, p_b) in zip(model_a.named_parameters(), model_b.named_parameters()):
        assert np.array_equal(p_a.data, p_b.data), f"parameter {name} differs"


CFG = TrainerConfig(epochs=4, learning_rate=0.5)


# ----------------------------------------------------------------------
# Bit-exact resume
# ----------------------------------------------------------------------
def test_snapshotting_does_not_perturb_the_run(tmp_path):
    model_a, train_a, dev_a = _build()
    history_a = Trainer(model_a, train_a, dev_a, CFG).train()

    model_b, train_b, dev_b = _build()
    resilience = ResilienceConfig(directory=tmp_path / "snaps", every_n_batches=2)
    history_b = Trainer(model_b, train_b, dev_b, CFG, resilience=resilience).train()

    _assert_same_run(history_a, model_a, history_b, model_b)


@pytest.mark.parametrize("family", ["acnn", "seq2seq"])
def test_mid_epoch_crash_then_resume_is_bit_exact(tmp_path, family):
    # Reference: the run nothing ever happened to.
    model_ref, train_ref, dev_ref = _build(family)
    history_ref = Trainer(model_ref, train_ref, dev_ref, CFG).train()

    # Victim: dies before its 8th optimization step (mid-epoch 3).
    snapdir = tmp_path / "snaps"
    model_v, train_v, dev_v = _build(family)
    victim = Trainer(
        model_v, train_v, dev_v, CFG,
        resilience=ResilienceConfig(directory=snapdir, every_n_batches=2),
    )
    with crash_on_nth_train_batch(victim, 8):
        with pytest.raises(SimulatedCrash):
            victim.train()

    # Survivor: a fresh process resuming from the latest valid snapshot.
    model_s, train_s, dev_s = _build(family)
    history_s = Trainer(model_s, train_s, dev_s, CFG).train(resume_from=snapdir)

    _assert_same_run(history_ref, model_ref, history_s, model_s)


def test_resume_falls_back_past_corrupted_snapshot(tmp_path):
    model_ref, train_ref, dev_ref = _build()
    history_ref = Trainer(model_ref, train_ref, dev_ref, CFG).train()

    snapdir = tmp_path / "snaps"
    model_v, train_v, dev_v = _build()
    victim = Trainer(
        model_v, train_v, dev_v, CFG,
        resilience=ResilienceConfig(directory=snapdir, every_n_batches=2, keep_last=5),
    )
    with crash_on_nth_train_batch(victim, 8):
        with pytest.raises(SimulatedCrash):
            victim.train()

    # The newest snapshot did not survive the crash intact; resume must
    # fall back to the previous generation and still reach the identical
    # end state (the replay is deterministic, just a few batches longer).
    newest = max(victim._store.list_steps())
    truncate_file(snapdir / f"snap-{newest:010d}.npz")

    model_s, train_s, dev_s = _build()
    history_s = Trainer(model_s, train_s, dev_s, CFG).train(resume_from=snapdir)

    _assert_same_run(history_ref, model_ref, history_s, model_s)


def test_resume_of_finished_run_returns_immediately(tmp_path):
    snapdir = tmp_path / "snaps"
    model_a, train_a, dev_a = _build()
    config = TrainerConfig(epochs=2, learning_rate=0.5)
    history_a = Trainer(
        model_a, train_a, dev_a, config,
        resilience=ResilienceConfig(directory=snapdir),
    ).train()

    model_b, train_b, dev_b = _build()
    history_b = Trainer(model_b, train_b, dev_b, config).train(resume_from=snapdir)

    _assert_same_run(history_a, model_a, history_b, model_b)
    assert len(history_b) == 2  # no epochs re-run or appended


def test_resume_from_empty_directory_starts_fresh(tmp_path):
    model_a, train_a, dev_a = _build()
    history_a = Trainer(model_a, train_a, dev_a, CFG).train()

    model_b, train_b, dev_b = _build()
    history_b = Trainer(model_b, train_b, dev_b, CFG).train(resume_from=tmp_path / "nothing")

    _assert_same_run(history_a, model_a, history_b, model_b)


def test_best_snapshot_is_pinned_and_loadable(tmp_path):
    snapdir = tmp_path / "snaps"
    model, train_it, dev_it = _build()
    trainer = Trainer(
        model, train_it, dev_it, CFG,
        resilience=ResilienceConfig(directory=snapdir, keep_last=1),
    )
    trainer.train()

    arrays, meta = trainer._store.load_pinned("best")
    assert meta["epoch"] == trainer.history.best_dev_epoch
    for name, value in trainer.best_state.items():
        assert np.array_equal(arrays[f"model::{name}"], value), name


# ----------------------------------------------------------------------
# Divergence recovery
# ----------------------------------------------------------------------
def test_nan_at_paper_lr_triggers_rollback_and_halving(tmp_path):
    config = TrainerConfig(epochs=3, learning_rate=1.0)  # the paper's lr
    model, train_it, dev_it = _build()
    trainer = Trainer(
        model, train_it, dev_it, config,
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=2),
    )
    # NaN exactly once, on the 2nd loss call (epoch 1, train batch 2).
    with nan_loss_on_nth_batch(model, 2):
        history = trainer.train()

    assert len(history) == 3, "recovered run must still complete every epoch"
    assert len(history.events) == 1
    event = history.events[0]
    assert event.epoch == 1
    assert event.old_lr == 1.0
    assert event.new_lr == 0.5
    assert "non-finite" in event.reason
    # The whole run re-ran under the halved rate.
    assert [r.learning_rate for r in history] == [0.5, 0.5, 0.5]


def test_exhausted_retry_budget_raises_with_recovery_log(tmp_path):
    config = TrainerConfig(epochs=3, learning_rate=1.0)
    model, train_it, dev_it = _build()
    trainer = Trainer(
        model, train_it, dev_it, config,
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=2),
    )
    with nan_loss_on_nth_batch(model, 1, every_after=True):
        with pytest.raises(TrainingDiverged) as excinfo:
            trainer.train()

    exc = excinfo.value
    assert len(exc.recovery_log) == 2, "both retries must be on record"
    assert exc.epoch == 1
    assert exc.batches_done == 0
    assert [e.old_lr for e in exc.recovery_log] == [1.0, 0.5]
    assert [e.new_lr for e in exc.recovery_log] == [0.5, 0.25]
    assert trainer.history.events == exc.recovery_log


def test_no_retry_budget_fails_fast(tmp_path):
    model, train_it, dev_it = _build()
    trainer = Trainer(
        model, train_it, dev_it, CFG,
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=0),
    )
    with nan_loss_on_nth_batch(model, 1):
        with pytest.raises(TrainingDiverged) as excinfo:
            trainer.train()
    assert excinfo.value.recovery_log == []


# ----------------------------------------------------------------------
# Graceful interruption (SIGINT) + resume
# ----------------------------------------------------------------------
def test_sigint_writes_graceful_snapshot_and_resume_matches(tmp_path):
    model_ref, train_ref, dev_ref = _build()
    history_ref = Trainer(model_ref, train_ref, dev_ref, CFG).train()

    snapdir = tmp_path / "snaps"

    def interrupt_after_epoch_2(record):
        if record.epoch == 2:
            os.kill(os.getpid(), signal.SIGINT)

    model_v, train_v, dev_v = _build()
    victim = Trainer(
        model_v, train_v, dev_v, CFG,
        epoch_callback=interrupt_after_epoch_2,
        resilience=ResilienceConfig(directory=snapdir, handle_signals=True),
    )
    with pytest.raises(TrainingInterrupted) as excinfo:
        victim.train()
    assert excinfo.value.snapshot_path is not None
    assert os.path.exists(excinfo.value.snapshot_path + ".json")
    assert len(victim.history) == 2, "interrupt must land after the completed epoch"

    model_s, train_s, dev_s = _build()
    history_s = Trainer(model_s, train_s, dev_s, CFG).train(resume_from=snapdir)

    _assert_same_run(history_ref, model_ref, history_s, model_s)


def test_sigint_handlers_are_restored(tmp_path):
    before = signal.getsignal(signal.SIGINT)
    model, train_it, dev_it = _build()
    Trainer(
        model, train_it, dev_it, TrainerConfig(epochs=1, learning_rate=0.5),
        resilience=ResilienceConfig(directory=tmp_path / "snaps", handle_signals=True),
    ).train()
    assert signal.getsignal(signal.SIGINT) is before


# ----------------------------------------------------------------------
# Typed evaluation failure
# ----------------------------------------------------------------------
def test_empty_dev_iterator_raises_typed_error_with_context():
    empty = QGDataset([], ENCODER, DECODER)
    model, train_it, _ = _build()
    trainer = Trainer(
        model, train_it, BatchIterator(empty, batch_size=2, shuffle=False),
        TrainerConfig(epochs=2, learning_rate=0.5),
    )
    with pytest.raises(EmptyEvaluationError, match=r"epoch 1 .*0 batches"):
        trainer.train()
