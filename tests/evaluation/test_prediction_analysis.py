"""Tests for prediction-level error analysis."""

import math

import pytest

from repro.data import Vocabulary
from repro.data.vocabulary import UNK
from repro.evaluation import analyse_predictions


def _vocab():
    return Vocabulary(["where", "was", "born", "in", "?", "what", "is", "the", "capital"])


def test_exact_match_rate():
    gold = [("where", "was", "zorvex", "born", "?")]
    analysis = analyse_predictions(gold, gold, _vocab())
    assert analysis.exact_match_rate == 1.0
    assert analysis.num_examples == 1


def test_unk_rate_counts_predictions_with_unk():
    predictions = [(UNK, "was"), ("where", "was")]
    references = [("a", "b"), ("c", "d")]
    analysis = analyse_predictions(predictions, references, _vocab())
    assert analysis.unk_rate == 0.5


def test_wh_word_accuracy():
    predictions = [("where", "x"), ("what", "y"), ("the", "z")]
    references = [("where", "a"), ("who", "b"), ("the", "c")]
    analysis = analyse_predictions(predictions, references, _vocab())
    # Gold wh-starts: "where" (hit), "who" (miss). "the" isn't a wh-word.
    assert analysis.wh_word_accuracy == pytest.approx(0.5)


def test_wh_word_accuracy_nan_without_wh_gold():
    analysis = analyse_predictions([("a",)], [("b",)], _vocab())
    assert math.isnan(analysis.wh_word_accuracy)


def test_oov_entity_recall():
    vocab = _vocab()
    # "zorvex" and "karlin" are OOV; prediction recovers only "zorvex".
    predictions = [("where", "was", "zorvex", "born", "?")]
    references = [("where", "was", "zorvex", "born", "in", "karlin", "?")]
    analysis = analyse_predictions(predictions, references, vocab)
    assert analysis.oov_entity_recall == pytest.approx(0.5)


def test_oov_recall_respects_multiplicity():
    vocab = _vocab()
    predictions = [("zorvex",)]
    references = [("zorvex", "zorvex")]  # needs the token twice
    analysis = analyse_predictions(predictions, references, vocab)
    assert analysis.oov_entity_recall == pytest.approx(0.5)


def test_oov_recall_nan_when_gold_fully_in_vocab():
    analysis = analyse_predictions(
        [("where", "?")], [("where", "?")], _vocab()
    )
    assert math.isnan(analysis.oov_entity_recall)


def test_lengths():
    analysis = analyse_predictions([("a", "b")], [("c", "d", "e")], _vocab())
    assert analysis.mean_length == 2.0
    assert analysis.mean_gold_length == 3.0


def test_summary_renders_percentages():
    text = analyse_predictions([("where", "?")], [("where", "?")], _vocab()).summary()
    assert "exact=100.0%" in text


def test_validation_errors():
    with pytest.raises(ValueError):
        analyse_predictions([("a",)], [], _vocab())
    with pytest.raises(ValueError):
        analyse_predictions([], [], _vocab())


def test_repeated_bigram_rate():
    predictions = [("the", "the", "cat"), ("a", "clean", "question"), ("of", "of", "of")]
    references = [("x",), ("y",), ("z",)]
    analysis = analyse_predictions(predictions, references, _vocab())
    # "the the" repeats? a repeated *bigram* needs the same pair twice:
    # ("of","of") occurs twice in the third prediction only.
    assert analysis.repeated_bigram_rate == pytest.approx(1 / 3)


def test_no_repeats_in_clean_predictions():
    analysis = analyse_predictions([("a", "b", "c")], [("a",)], _vocab())
    assert analysis.repeated_bigram_rate == 0.0
