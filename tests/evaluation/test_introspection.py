"""Tests for the switch-gate / attention trace machinery."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary
from repro.evaluation import gate_statistics, render_trace, trace_generation
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained_acnn():
    sentences = [
        "zorvex was born in karlin .",
        "mira designed the velkin tower .",
        "draxby is the capital of ostavia .",
    ]
    questions = [
        "where was zorvex born ?",
        "who designed the velkin tower ?",
        "what is the capital of ostavia ?",
    ]
    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
        for s, q in zip(sentences, questions)
    ]
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(
        ["where", "was", "born", "?", "who", "designed", "the", "what", "is", "capital", "of", "tower"]
    )
    dataset = QGDataset(examples, encoder, decoder)
    config = ModelConfig(embedding_dim=16, hidden_size=24, num_layers=1, dropout=0.0, seed=5)
    model = build_model("acnn", config, len(encoder), len(decoder))
    Trainer(
        model,
        BatchIterator(dataset, batch_size=3, seed=0),
        None,
        TrainerConfig(epochs=120, learning_rate=0.8, halve_at_epoch=100),
    ).train()
    return model, dataset, decoder


def test_trace_structure(trained_acnn):
    model, dataset, decoder = trained_acnn
    trace = trace_generation(model, dataset[0], decoder, max_length=10)
    assert trace.source_tokens == dataset[0].src_tokens
    assert len(trace.steps) == len(trace.generated_tokens)
    for step in trace.steps:
        assert 0.0 < step.switch < 1.0
        assert step.attention.shape == (len(trace.source_tokens),)
        assert np.isclose(step.attention.sum(), 1.0, atol=1e-6)
        assert np.isclose(step.copy_distribution.sum(), 1.0, atol=1e-6)


def test_trace_requires_acnn(trained_acnn):
    _, dataset, decoder = trained_acnn
    other = build_model(
        "du-attention",
        ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.0),
        50,
        len(decoder),
    )
    with pytest.raises(TypeError):
        trace_generation(other, dataset[0], decoder)


def test_copied_steps_marked(trained_acnn):
    """The overfit model copies the entity; those steps must be flagged."""
    model, dataset, decoder = trained_acnn
    copied_any = False
    for encoded in dataset:
        trace = trace_generation(model, encoded, decoder, max_length=10)
        for step in trace.steps:
            if step.token not in decoder:
                assert step.copied
                copied_any = True
    assert copied_any


def test_gate_is_adaptive_on_overfit_model(trained_acnn):
    """Mean z at copy steps should exceed mean z at generation steps."""
    model, dataset, decoder = trained_acnn
    traces = [trace_generation(model, e, decoder, max_length=10) for e in dataset]
    stats = gate_statistics(traces)
    assert stats["steps"] > 0
    if stats["copy_rate"] > 0:
        assert stats["mean_switch_when_copying"] > stats["mean_switch_when_generating"]


def test_gate_statistics_empty():
    stats = gate_statistics([])
    assert stats["copy_rate"] == 0.0


def test_render_trace_mentions_tokens(trained_acnn):
    model, dataset, decoder = trained_acnn
    trace = trace_generation(model, dataset[0], decoder, max_length=10)
    text = render_trace(trace)
    assert "source:" in text
    for token in trace.generated_tokens:
        assert token in text
