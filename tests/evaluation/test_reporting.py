"""Tests for paper-style table rendering."""

import pytest

from repro.evaluation import format_markdown_table, format_table

ROWS = {
    "Seq2Seq": {"BLEU-1": 31.34, "BLEU-4": 4.26},
    "ACNN-sent": {"BLEU-1": 44.78, "BLEU-4": 13.97},
}
METRICS = ("BLEU-1", "BLEU-4")


def test_text_table_contains_all_rows_and_values():
    table = format_table(ROWS, metrics=METRICS)
    assert "Seq2Seq" in table
    assert "ACNN-sent" in table
    assert "31.34" in table
    assert "13.97" in table


def test_text_table_marks_best_with_asterisk():
    table = format_table(ROWS, metrics=METRICS)
    assert "44.78*" in table
    assert "31.34*" not in table


def test_text_table_title():
    table = format_table(ROWS, metrics=METRICS, title="Table 1")
    assert table.splitlines()[0] == "Table 1"


def test_text_table_no_highlight():
    table = format_table(ROWS, metrics=METRICS, highlight_best=False)
    assert "*" not in table


def test_text_table_empty_raises():
    with pytest.raises(ValueError):
        format_table({}, metrics=METRICS)


def test_markdown_table_structure():
    table = format_markdown_table(ROWS, metrics=METRICS)
    lines = table.splitlines()
    assert lines[0].startswith("| Model |")
    assert lines[1].startswith("|---|")
    assert len(lines) == 2 + len(ROWS)


def test_markdown_table_bolds_best():
    table = format_markdown_table(ROWS, metrics=METRICS)
    assert "**44.78**" in table
    assert "**31.34**" not in table


def test_markdown_table_empty_raises():
    with pytest.raises(ValueError):
        format_markdown_table({}, metrics=METRICS)
