"""Tests for the paired bootstrap significance test."""

import pytest

from repro.evaluation import paired_bootstrap


REFS = [
    ("where", "was", "zorvex", "born", "?"),
    ("who", "designed", "the", "tower", "?"),
    ("what", "is", "the", "capital", "?"),
    ("when", "did", "it", "open", "?"),
]
PERFECT = list(REFS)
BAD = [("nothing", "matches", "here") for _ in REFS]


def test_clear_winner_is_significant():
    result = paired_bootstrap(PERFECT, BAD, REFS, metric="BLEU-1", samples=200, seed=0)
    assert result.wins_a == 200
    assert result.p_value == 0.0
    assert result.significant
    assert result.score_a > result.score_b


def test_identical_systems_tie():
    result = paired_bootstrap(PERFECT, PERFECT, REFS, metric="BLEU-1", samples=100, seed=0)
    assert result.ties == 100
    assert result.wins_a == 0
    assert not result.significant


def test_reverse_direction_not_significant():
    result = paired_bootstrap(BAD, PERFECT, REFS, metric="BLEU-1", samples=100, seed=0)
    assert result.wins_a == 0
    assert result.p_value == 1.0


def test_rouge_metric_supported():
    result = paired_bootstrap(PERFECT, BAD, REFS, metric="ROUGE-L", samples=50, seed=0)
    assert result.significant


@pytest.mark.parametrize("metric", ["BLEU-1", "BLEU-2", "BLEU-3", "BLEU-4"])
def test_all_bleu_orders_supported(metric):
    result = paired_bootstrap(PERFECT, BAD, REFS, metric=metric, samples=20, seed=0)
    assert result.metric == metric


def test_unknown_metric_rejected():
    with pytest.raises(KeyError):
        paired_bootstrap(PERFECT, BAD, REFS, metric="METEOR")
    with pytest.raises(KeyError):
        paired_bootstrap(PERFECT, BAD, REFS, metric="BLEU-7")
    with pytest.raises(KeyError):
        paired_bootstrap(PERFECT, BAD, REFS, metric="BLEU-x")


def test_misaligned_inputs_rejected():
    with pytest.raises(ValueError):
        paired_bootstrap(PERFECT[:2], BAD, REFS)
    with pytest.raises(ValueError):
        paired_bootstrap([], [], [])
    with pytest.raises(ValueError):
        paired_bootstrap(PERFECT, BAD, REFS, samples=0)


def test_deterministic_given_seed():
    a = paired_bootstrap(PERFECT, BAD, REFS, samples=50, seed=5)
    b = paired_bootstrap(PERFECT, BAD, REFS, samples=50, seed=5)
    assert a == b


def test_render_mentions_p_value():
    text = paired_bootstrap(PERFECT, BAD, REFS, samples=20, seed=0).render()
    assert "p=" in text
