"""Tests for the decode-and-score evaluation harness."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary
from repro.evaluation import METRIC_NAMES, evaluate_model
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained_setup():
    sentences = [
        "zorvex was born in karlin .",
        "mira designed the velkin tower .",
        "draxby is the capital of ostavia .",
        "the quen river flows through belcor .",
    ]
    questions = [
        "where was zorvex born ?",
        "who designed the velkin tower ?",
        "what is the capital of ostavia ?",
        "what river flows through belcor ?",
    ]
    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
        for s, q in zip(sentences, questions)
    ]
    encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
    dataset = QGDataset(examples, encoder, decoder)
    config = ModelConfig(embedding_dim=16, hidden_size=20, num_layers=1, dropout=0.0, seed=5)
    model = build_model("acnn", config, len(encoder), len(decoder))
    trainer = Trainer(
        model,
        BatchIterator(dataset, batch_size=2, seed=0),
        None,
        TrainerConfig(epochs=100, learning_rate=0.8, halve_at_epoch=80),
    )
    trainer.train()
    return model, dataset


def test_result_contains_all_metrics(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(model, dataset, beam_size=2, max_length=12)
    assert set(result.scores) == set(METRIC_NAMES)


def test_predictions_align_with_references(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(model, dataset, beam_size=2, max_length=12)
    assert len(result.predictions) == len(dataset)
    assert len(result.references) == len(dataset)
    gold = {tuple(ex.example.question) for ex in dataset}
    assert set(result.references) <= gold


def test_overfit_model_scores_high(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(model, dataset, beam_size=3, max_length=12)
    assert result["BLEU-1"] > 60.0
    assert result["ROUGE-L"] > 60.0


def test_greedy_path_used_for_beam_one(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(model, dataset, beam_size=1, max_length=12)
    assert set(result.scores) == set(METRIC_NAMES)


def test_indexing_and_summary(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(model, dataset, beam_size=2, max_length=12)
    assert result["BLEU-1"] == result.scores["BLEU-1"]
    text = result.summary()
    for metric in METRIC_NAMES:
        assert metric in text


def test_scores_are_deterministic(trained_setup):
    model, dataset = trained_setup
    a = evaluate_model(model, dataset, beam_size=2, max_length=12)
    b = evaluate_model(model, dataset, beam_size=2, max_length=12)
    assert a.scores == b.scores


# ---------------------------------------------------------------------------
# Skip-and-count: a poison example must not void the evaluation
# ---------------------------------------------------------------------------

class _PoisonOnExample:
    """Proxy model that raises whenever the batch contains the marked source."""

    def __init__(self, model, poison_first_token_id: int):
        self._model = model
        self._poison = poison_first_token_id

    def __getattr__(self, name):
        return getattr(self._model, name)

    def encode(self, batch):
        if any(ex.src_ids[0] == self._poison for ex in batch.examples):
            raise RuntimeError("poison example")
        return self._model.encode(batch)


def _poison_model(model, dataset):
    # Mark the first example by its first source id (unique leading words).
    return _PoisonOnExample(model, dataset[0].src_ids[0])


def test_failing_example_is_skipped_and_counted(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(
        _poison_model(model, dataset), dataset, beam_size=2, max_length=12, batch_size=2
    )
    assert result.skipped == 1
    assert len(result.predictions) == len(dataset) - 1
    assert "skipped=1" in result.summary()
    # Healthy batchmates still score.
    assert set(result.scores) == set(METRIC_NAMES)


def test_skipped_count_reported_in_telemetry(trained_setup, tmp_path):
    from repro.observability import JsonlSink, Telemetry, read_trace

    model, dataset = trained_setup
    trace = tmp_path / "trace.jsonl"
    telemetry = Telemetry([JsonlSink(str(trace))])
    evaluate_model(
        _poison_model(model, dataset), dataset, beam_size=2, max_length=12,
        batch_size=2, telemetry=telemetry,
    )
    telemetry.close()
    records = read_trace(str(trace))
    skip_counters = [r for r in records if r.get("name") == "eval.skipped"]
    assert len(skip_counters) == 1


def test_clean_run_reports_zero_skips(trained_setup):
    model, dataset = trained_setup
    result = evaluate_model(model, dataset, beam_size=2, max_length=12)
    assert result.skipped == 0
    assert "skipped" not in result.summary()
