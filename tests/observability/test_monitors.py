"""Health monitors: sentinels, norms, gate stats, throughput meters.

The end-to-end half of this file pins the contract the resilience layer
depends on: when the paper's lr=1.0 recipe produces a NaN loss, the
``health.*`` sentinel event lands in the trace *before* the rollback, and
the resulting :class:`~repro.training.history.RecoveryEvent` carries the
machine-readable cause the sentinel established.
"""

import math

import numpy as np
import pytest
from faults import nan_loss_on_nth_batch

from repro.observability import (
    MemorySink,
    Telemetry,
    ThroughputMeter,
    emit_gate_statistics,
    gate_statistics,
    nonfinite_sentinel,
    param_norm,
)
from repro.training import ResilienceConfig, Trainer, TrainerConfig, TrainingDiverged


def _hub():
    sink = MemorySink()
    return Telemetry([sink]), sink


# ----------------------------------------------------------------------
# nonfinite_sentinel
# ----------------------------------------------------------------------
def test_finite_values_emit_nothing():
    telemetry, sink = _hub()
    assert nonfinite_sentinel(telemetry, "loss", 3.5)
    assert sink.records == []


@pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
def test_nonfinite_values_fire_health_gauge_and_log(value):
    telemetry, sink = _hub()
    assert not nonfinite_sentinel(telemetry, "grad_norm", value, step=4, lr=0.5)
    gauge = sink.of_kind("gauge")[0]
    assert gauge["name"] == "health.grad_norm"
    assert gauge["step"] == 4
    assert math.isnan(gauge["value"]) or math.isinf(gauge["value"])
    message = sink.of_kind("log")[0]["data"]["message"]
    assert "non-finite grad_norm" in message
    assert "lr=0.5" in message


# ----------------------------------------------------------------------
# param_norm / gate statistics
# ----------------------------------------------------------------------
def test_param_norm_matches_manual_l2():
    class FakeParameter:
        def __init__(self, data):
            self.data = np.asarray(data, dtype=np.float64)

    parameters = [FakeParameter([3.0, 0.0]), FakeParameter([[0.0, 4.0]])]
    assert param_norm(parameters) == pytest.approx(5.0)


def test_gate_statistics_normalizes_sums():
    stats = gate_statistics(z_sum=6.0, entropy_sum=3.0, copy_sum=9.0, tokens=12)
    assert stats == {"z_mean": 0.5, "z_entropy": 0.25, "copy_rate": 0.75, "tokens": 12}
    empty = gate_statistics(0.0, 0.0, 0.0, 0)
    assert empty["tokens"] == 0 and empty["z_mean"] == 0.0


def test_emit_gate_statistics_gauges_each_field():
    telemetry, sink = _hub()
    emit_gate_statistics(
        telemetry,
        "train.gate",
        {"z_mean": 0.5, "z_entropy": 0.25, "copy_rate": 0.75, "tokens": 12},
        step=2,
    )
    names = {r["name"]: r["value"] for r in sink.of_kind("gauge")}
    assert names == {
        "train.gate.z_mean": 0.5,
        "train.gate.z_entropy": 0.25,
        "train.gate.copy_rate": 0.75,
    }


def test_emit_gate_statistics_skips_empty():
    telemetry, sink = _hub()
    emit_gate_statistics(telemetry, "train.gate", None)
    emit_gate_statistics(telemetry, "train.gate", {"z_mean": 0, "tokens": 0})
    assert sink.records == []


def test_acnn_gate_stats_accumulate_only_when_enabled(small_setup):
    model, train_it, _ = small_setup
    batch = next(iter(train_it))
    model.loss(batch)
    assert model.last_gate_stats is None
    model.collect_gate_stats = True
    model.loss(batch)
    stats = model.last_gate_stats
    assert stats["tokens"] > 0
    assert 0.0 <= stats["z_mean"] <= 1.0
    assert 0.0 <= stats["copy_rate"] <= 1.0
    assert stats["z_entropy"] >= 0.0


# ----------------------------------------------------------------------
# ThroughputMeter
# ----------------------------------------------------------------------
def test_throughput_meter_windows_and_rates():
    telemetry, sink = _hub()
    ticks = iter([0.0, 2.0])
    meter = ThroughputMeter(telemetry, "train.tokens", clock=lambda: next(ticks))
    meter.start()
    meter.add(10)
    meter.add(10)
    elapsed = meter.stop()
    assert elapsed == 2.0
    (record,) = sink.of_kind("gauge")
    assert record["name"] == "train.tokens.per_sec"
    assert record["value"] == pytest.approx(10.0)


def test_throughput_meter_guards_window_misuse():
    telemetry, _ = _hub()
    meter = ThroughputMeter(telemetry, "x")
    with pytest.raises(RuntimeError):
        meter.add(1)
    with pytest.raises(RuntimeError):
        meter.stop()


def test_throughput_meter_as_context_manager():
    telemetry, sink = _hub()
    with ThroughputMeter(telemetry, "eval.examples") as meter:
        meter.add(4)
    assert sink.of_kind("gauge")[0]["name"] == "eval.examples.per_sec"


# ----------------------------------------------------------------------
# End-to-end: sentinel fires before rollback, RecoveryEvent carries cause
# ----------------------------------------------------------------------
def test_sentinel_precedes_rollback_and_recovery_records_cause(tmp_path, small_setup):
    model, train_it, dev_it = small_setup
    sink = MemorySink()
    trainer = Trainer(
        model,
        train_it,
        dev_it,
        TrainerConfig(epochs=2, learning_rate=1.0),
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=1),
        telemetry=Telemetry([sink]),
    )
    with nan_loss_on_nth_batch(model, 2):
        history = trainer.train()

    (event,) = history.events
    assert event.cause == "nonfinite_loss"

    health = [r for r in sink.records if r["name"].startswith("health.")]
    assert health and health[0]["name"] == "health.loss"
    recovery_markers = [r for r in sink.of_kind("run") if r["name"] == "recovery"]
    assert recovery_markers[0]["data"]["cause"] == "nonfinite_loss"
    # Stream order: the sentinel must land before the recovery marker.
    assert health[0]["seq"] < recovery_markers[0]["seq"]


def test_exhausted_budget_surfaces_cause_on_exception(tmp_path, small_setup):
    model, train_it, dev_it = small_setup
    trainer = Trainer(
        model,
        train_it,
        dev_it,
        TrainerConfig(epochs=1, learning_rate=1.0),
        resilience=ResilienceConfig(directory=tmp_path / "snaps", max_retries=0),
        telemetry=Telemetry([MemorySink()]),
    )
    with nan_loss_on_nth_batch(model, 1):
        with pytest.raises(TrainingDiverged) as excinfo:
            trainer.train()
    assert excinfo.value.cause == "nonfinite_loss"
