"""Property tests: histogram and span-tree invariants under arbitrary input.

The histogram feeds the golden-trace harness, so beyond statistical sanity
it must be *deterministic* and *order-stable for identical streams* — both
are pinned here alongside the conservation laws its docstring promises.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import SpanTracker, StreamingHistogram, aggregate_spans, build_span_tree

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_floats, min_size=1, max_size=300)


# ----------------------------------------------------------------------
# StreamingHistogram
# ----------------------------------------------------------------------
@given(values=value_lists)
def test_count_sum_min_max_are_exact(values):
    histogram = StreamingHistogram(max_samples=16)
    histogram.observe_many(values)
    assert histogram.count == len(values)
    assert histogram.min == min(values)
    assert histogram.max == max(values)
    assert math.isclose(histogram.total, math.fsum(values), rel_tol=1e-9, abs_tol=1e-6)


@given(values=value_lists, qs=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6))
def test_quantiles_are_monotone_and_bounded(values, qs):
    histogram = StreamingHistogram(max_samples=16)
    histogram.observe_many(values)
    estimates = [histogram.quantile(q) for q in sorted(qs)]
    assert all(min(values) <= e <= max(values) for e in estimates)
    assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))


@given(values=value_lists)
def test_identical_streams_summarize_identically(values):
    a = StreamingHistogram.of(values, max_samples=16)
    b = StreamingHistogram.of(values, max_samples=16)
    assert a.summary() == b.summary()


@given(left=value_lists, right=value_lists)
def test_merge_conserves_exact_statistics(left, right):
    merged = StreamingHistogram.of(left, max_samples=16).merge(
        StreamingHistogram.of(right, max_samples=16)
    )
    assert merged.count == len(left) + len(right)
    assert merged.min == min(left + right)
    assert merged.max == max(left + right)
    assert math.isclose(
        merged.total, math.fsum(left + right), rel_tol=1e-9, abs_tol=1e-6
    )


@given(values=st.lists(finite_floats, min_size=1, max_size=2000))
@settings(max_examples=30)
def test_retained_sample_is_bounded(values):
    histogram = StreamingHistogram(max_samples=8)
    histogram.observe_many(values)
    assert len(histogram._sample) <= 8
    histogram.quantile(0.5)  # still answerable after heavy thinning


def test_histogram_rejects_nonfinite():
    histogram = StreamingHistogram()
    with pytest.raises(ValueError):
        histogram.observe(float("nan"))
    with pytest.raises(ValueError):
        histogram.observe(float("inf"))


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
@st.composite
def span_programs(draw):
    """A random well-nested open/close program as a bracket sequence."""
    names = st.sampled_from(["encode", "decode", "backward", "step", "eval"])
    program = []
    depth = 0
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        if depth > 0 and draw(st.booleans()):
            program.append(("close", None))
            depth -= 1
        else:
            program.append(("open", draw(names)))
            depth += 1
    program.extend([("close", None)] * depth)
    return program


def _run_program(program):
    """Execute a bracket program on a tracker with a deterministic clock."""
    completed = []
    ticks = iter(range(10_000))
    tracker = SpanTracker(completed.append, clock=lambda: float(next(ticks)))
    stack = []
    for op, name in program:
        if op == "open":
            manager = tracker.span(name)
            manager.__enter__()
            stack.append(manager)
        else:
            stack.pop().__exit__(None, None, None)
    return [record.to_payload() | {"name": record.name} for record in completed]


@given(program=span_programs())
def test_child_time_never_exceeds_parent_duration(program):
    spans = _run_program(program)
    roots = build_span_tree(spans)

    def check(node):
        assert node.child_time <= node.duration + 1e-9
        assert node.self_time >= 0.0
        for child in node.children:
            assert child.span_id > node.span_id, "children open after their parent"
            check(child)

    for root in roots:
        check(root)


@given(program=span_programs())
def test_aggregate_conserves_counts_and_wall_clock(program):
    spans = _run_program(program)
    totals = aggregate_spans(spans)
    assert sum(row["count"] for row in totals.values()) == len(spans)
    roots = build_span_tree(spans)
    wall_clock = sum(root.duration for root in roots)
    self_total = sum(row["self"] for row in totals.values())
    assert math.isclose(self_total, wall_clock, rel_tol=1e-9, abs_tol=1e-9)


def test_orphan_spans_become_roots():
    spans = [
        {"span_id": 5, "parent_id": 99, "depth": 1, "duration": 1.0, "name": "orphan"},
        {"span_id": 6, "parent_id": 5, "depth": 2, "duration": 0.5, "name": "child"},
    ]
    roots = build_span_tree(spans)
    assert [root.name for root in roots] == ["orphan"]
    assert [child.name for child in roots[0].children] == ["child"]
