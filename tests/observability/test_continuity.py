"""Telemetry continuity across crash → resume: one stream, no gaps, no forks.

The contract: a run that dies mid-epoch and resumes in a fresh process
appends to the *same* trace file, and the final stream is indistinguishable
from an uninterrupted run's — gap-free ``seq``, each training step reported
exactly once, and (because resume is bit-exact) the same numeric signal.
The snapshot records the hub cursor; restore rewinds the JSONL tail past
it, so events from replayed batches are not duplicated.
"""

import json

import pytest
from conftest import build_setup
from faults import SimulatedCrash, crash_on_nth_train_batch, truncate_file

from repro.observability import JsonlSink, Telemetry, read_trace
from repro.training import ResilienceConfig, Trainer, TrainerConfig

CFG = TrainerConfig(epochs=3, learning_rate=0.5)

_MEASUREMENT_KINDS = ("gauge", "counter", "histogram")


def _crash_then_resume(tmp_path, crash_at):
    """Kill a traced run before batch ``crash_at``; resume in a 'new process'."""
    trace = tmp_path / "trace.jsonl"
    snapdir = tmp_path / "snaps"

    model, train_it, dev_it = build_setup()
    victim_telemetry = Telemetry([JsonlSink(trace)])
    victim = Trainer(
        model, train_it, dev_it, CFG,
        resilience=ResilienceConfig(directory=snapdir, every_n_batches=2),
        telemetry=victim_telemetry,
    )
    with crash_on_nth_train_batch(victim, crash_at):
        with pytest.raises(SimulatedCrash):
            victim.train()
    victim_telemetry.close()

    model, train_it, dev_it = build_setup()
    survivor_telemetry = Telemetry([JsonlSink(trace)])
    try:
        Trainer(model, train_it, dev_it, CFG, telemetry=survivor_telemetry).train(
            resume_from=snapdir
        )
    finally:
        survivor_telemetry.close()
    return trace, snapdir, victim


def _reference_trace(tmp_path):
    trace = tmp_path / "reference.jsonl"
    model, train_it, dev_it = build_setup()
    with Telemetry([JsonlSink(trace)]) as telemetry:
        Trainer(model, train_it, dev_it, CFG, telemetry=telemetry).train()
    return list(read_trace(trace))


def _measurements(records):
    """The numeric sub-stream, with wall-clock readings zeroed."""
    rows = []
    for record in records:
        if record["kind"] not in _MEASUREMENT_KINDS:
            continue
        row = dict(record, seq=0, time=0.0)
        if record["name"].endswith(".per_sec"):
            row["value"] = 0.0
        if record["kind"] == "histogram":
            row["data"] = {"count": record["data"]["count"]}
        rows.append(json.dumps(row, sort_keys=True))
    return rows


def test_resumed_stream_is_gap_free_and_duplicate_free(tmp_path):
    trace, _, _ = _crash_then_resume(tmp_path, crash_at=8)
    records = list(read_trace(trace))  # schema-validates every line

    assert [r["seq"] for r in records] == list(range(len(records)))

    loss_steps = [r["step"] for r in records if r["name"] == "train.loss"]
    assert loss_steps == sorted(loss_steps), "steps regressed across the resume"
    assert len(loss_steps) == len(set(loss_steps)), "replayed batches duplicated"

    markers = [r["name"] for r in records if r["kind"] == "run"]
    assert markers[0] == "train_start"
    assert "resume" in markers
    assert markers[-1] == "train_finish"

    span_ids = [r["data"]["span_id"] for r in records if r["kind"] == "span"]
    assert len(span_ids) == len(set(span_ids)), "span ids collided across resume"


def test_resumed_measurements_match_uninterrupted_run(tmp_path):
    trace, _, _ = _crash_then_resume(tmp_path, crash_at=8)
    resumed = _measurements(list(read_trace(trace)))
    reference = _measurements(_reference_trace(tmp_path))
    assert resumed == reference


def test_continuity_survives_fallback_past_corrupt_snapshot(tmp_path):
    trace = tmp_path / "trace.jsonl"
    snapdir = tmp_path / "snaps"

    model, train_it, dev_it = build_setup()
    victim_telemetry = Telemetry([JsonlSink(trace)])
    victim = Trainer(
        model, train_it, dev_it, CFG,
        resilience=ResilienceConfig(directory=snapdir, every_n_batches=2, keep_last=5),
        telemetry=victim_telemetry,
    )
    with crash_on_nth_train_batch(victim, 8):
        with pytest.raises(SimulatedCrash):
            victim.train()
    victim_telemetry.close()

    # The newest snapshot did not survive; resume rolls back a generation,
    # so *more* of the telemetry tail is truncated — continuity must hold.
    newest = max(victim._store.list_steps())
    truncate_file(snapdir / f"snap-{newest:010d}.npz")

    model, train_it, dev_it = build_setup()
    with Telemetry([JsonlSink(trace)]) as telemetry:
        Trainer(model, train_it, dev_it, CFG, telemetry=telemetry).train(
            resume_from=snapdir
        )

    records = list(read_trace(trace))
    assert [r["seq"] for r in records] == list(range(len(records)))
    resumed = _measurements(records)
    reference = _measurements(_reference_trace(tmp_path))
    assert resumed == reference


def test_trace_torn_by_crash_mid_append_is_still_resumable(tmp_path):
    trace, snapdir, _ = _crash_then_resume(tmp_path, crash_at=4)
    # Simulate a later kill tearing the final line, then one more resume.
    with open(trace, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 99999, "kind": "gau')
    with Telemetry([JsonlSink(trace)]) as telemetry:
        telemetry.log("post-repair")
    records = list(read_trace(trace))
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert records[-1]["data"]["message"] == "post-repair"
