"""Golden-trace regression: identical seeded runs → byte-identical structure.

Wall-clock readings (``time``, span durations, ``*.per_sec`` rates, timing
histograms) legitimately differ between runs; everything else — the event
kinds, names, order, sequence numbers, steps, and the *numeric training
signal itself* (losses, grad norms, gate statistics, scores, token counts)
— must be byte-stable under the repo's seeded determinism. The comparison
is therefore done on a normalized trace where only the timing fields are
zeroed; any other drift (a reordered emitter, a lost event, a numeric
regression) fails the byte-equality check.
"""

import json

from conftest import DATASET, build_setup

from repro.observability import (
    JsonlSink,
    Telemetry,
    build_span_tree,
    read_trace,
)
from repro.evaluation import evaluate_model
from repro.training import Trainer, TrainerConfig

CFG = TrainerConfig(epochs=2, learning_rate=0.5, log_every=2)


def _run_once(path):
    """One seeded train + eval, traced into ``path``."""
    model, train_it, dev_it = build_setup()
    telemetry = Telemetry([JsonlSink(path)])
    try:
        Trainer(model, train_it, dev_it, CFG, telemetry=telemetry).train()
        evaluate_model(model, DATASET, beam_size=2, max_length=10, telemetry=telemetry)
    finally:
        telemetry.close()
    return list(read_trace(path))


_TIMING_HISTOGRAMS = {"train.batch_seconds"}


def _normalize(record):
    """Zero the wall-clock fields, keep every structural + numeric field."""
    normalized = dict(record, time=0.0)
    if normalized["kind"] == "span":
        normalized["data"] = dict(normalized["data"], duration=0.0)
    elif normalized["kind"] == "gauge" and normalized["name"].endswith(".per_sec"):
        normalized["value"] = 0.0
    elif normalized["kind"] == "histogram" and normalized["name"] in _TIMING_HISTOGRAMS:
        data = dict(normalized["data"])
        for key in ("sum", "min", "max", "p50", "p90", "p99"):
            data[key] = 0.0
        normalized["data"] = data
    return normalized


def _normalized_bytes(records):
    return "\n".join(
        json.dumps(_normalize(record), sort_keys=True) for record in records
    ).encode()


def test_identical_seeded_runs_produce_identical_trace_structure(tmp_path):
    first = _run_once(tmp_path / "a.jsonl")
    second = _run_once(tmp_path / "b.jsonl")
    assert _normalized_bytes(first) == _normalized_bytes(second)


def test_trace_content_and_ordering_invariants(tmp_path):
    records = _run_once(tmp_path / "trace.jsonl")

    # read_trace already schema-validated every line; pin the stream basics.
    assert [r["seq"] for r in records] == list(range(len(records)))

    names = {r["name"] for r in records}
    for required in (
        "train.loss",
        "train.grad_norm",
        "train.lr",
        "train.param_norm",
        "train.tokens",
        "train.tokens.per_sec",
        "train.gate.z_mean",
        "train.gate.copy_rate",
        "train.batch_seconds",
        "decode.steps",
        "decode.tokens.per_sec",
        "decode.hypotheses.per_sec",
        "decode.gate.z_mean",
        "eval.BLEU-4",
        "eval.ROUGE-L",
        "train_start",
        "train_finish",
        "log",
    ):
        assert required in names, f"missing {required} in trace"

    # Training steps never regress along the stream.
    loss_steps = [r["step"] for r in records if r["name"] == "train.loss"]
    assert loss_steps == sorted(loss_steps)
    assert len(loss_steps) == len(set(loss_steps)), "one loss gauge per step"

    # The span forest is well-formed and phase timings fit their parents.
    spans = [r for r in records if r["kind"] == "span"]
    span_names = {r["name"] for r in spans}
    assert {"epoch", "forward", "backward", "optimizer_step", "evaluate", "eval",
            "encode", "decode.batch", "metrics"} <= span_names

    def check(node):
        assert node.child_time <= node.duration + 1e-6, node.name
        for child in node.children:
            check(child)

    for root in build_span_tree(spans):
        check(root)


def test_terminal_progress_lines_ride_the_trace(tmp_path):
    records = _run_once(tmp_path / "trace.jsonl")
    messages = [r["data"]["message"] for r in records if r["kind"] == "log"]
    assert any("loss" in message for message in messages), "log_every lines missing"
