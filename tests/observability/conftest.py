"""Shared fixtures for the observability suite.

The golden-trace and continuity tests drive the real ACNN trainer on the
same tiny deterministic setup the training suite uses; the fault-injection
helpers are reused from ``tests/training/faults.py`` (pytest's rootdir
imports resolve per-directory, so the training directory is added to the
path explicitly).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "training"))

from repro.data import BatchIterator, QGDataset, QGExample  # noqa: E402
from repro.models import ModelConfig, build_model  # noqa: E402

SENTENCES = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "tovenka built the glass spire .",
    "the ilex bridge spans the morda .",
]
QUESTIONS = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who built the glass spire ?",
    "what spans the morda ?",
]
EXAMPLES = [
    QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
    for s, q in zip(SENTENCES, QUESTIONS)
]
ENCODER, DECODER = QGDataset.build_vocabs(EXAMPLES, 100, 100)
DATASET = QGDataset(EXAMPLES, ENCODER, DECODER)


def build_setup(family: str = "acnn", dropout: float = 0.0):
    """Fresh seeded model + iterators; identical calls give identical runs."""
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=dropout, seed=0)
    model = build_model(family, config, len(ENCODER), len(DECODER))
    train_it = BatchIterator(DATASET, batch_size=2, seed=0)
    dev_it = BatchIterator(DATASET, batch_size=2, shuffle=False)
    return model, train_it, dev_it


@pytest.fixture()
def small_setup():
    return build_setup()
