"""Hub + sink mechanics: sequencing, resume truncation, spans, schema."""

import io
import json

import numpy as np
import pytest

from repro.observability import (
    JsonlSink,
    MemorySink,
    NullTelemetry,
    SchemaViolation,
    Telemetry,
    TerminalSink,
    get_telemetry,
    read_trace,
    use_telemetry,
    validate_record,
)


def _hub():
    sink = MemorySink()
    return Telemetry([sink]), sink


# ----------------------------------------------------------------------
# Sequencing and event shape
# ----------------------------------------------------------------------
def test_events_carry_gap_free_sequence():
    telemetry, sink = _hub()
    telemetry.counter("a", 1)
    telemetry.gauge("b", 2.0)
    telemetry.log("hello")
    telemetry.run_marker("start", epochs=3)
    with telemetry.span("phase"):
        pass
    assert [r["seq"] for r in sink.records] == list(range(5))
    for record in sink.records:
        validate_record(record)


def test_ambient_step_is_stamped_and_overridable():
    telemetry, sink = _hub()
    telemetry.set_step(7)
    telemetry.gauge("loss", 1.0)
    telemetry.gauge("loss", 1.0, step=9)
    telemetry.set_step(None)
    telemetry.gauge("loss", 1.0)
    assert [r.get("step") for r in sink.records] == [7, 9, None]


def test_cursor_is_next_sequence_number():
    telemetry, sink = _hub()
    assert telemetry.cursor() == 0
    telemetry.counter("a")
    telemetry.counter("a")
    assert telemetry.cursor() == 2


def test_throughput_emits_rate_gauge():
    telemetry, sink = _hub()
    telemetry.throughput("decode.tokens", 50, 2.0)
    (record,) = sink.records
    assert record["name"] == "decode.tokens.per_sec"
    assert record["value"] == 25.0
    telemetry.throughput("decode.tokens", 50, 0.0)
    assert sink.records[-1]["value"] == 0.0


def test_histograms_flush_sorted_and_reset():
    telemetry, sink = _hub()
    for value in (3.0, 1.0, 2.0):
        telemetry.observe("b.window", value)
    telemetry.observe("a.window", 5.0)
    telemetry.flush_histograms()
    names = [r["name"] for r in sink.records]
    assert names == ["a.window", "b.window"]
    assert sink.records[1]["data"]["count"] == 3
    sink.records.clear()
    telemetry.flush_histograms()
    assert sink.records == []  # windows were reset


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_nested_spans_record_parent_and_depth():
    telemetry, sink = _hub()
    with telemetry.span("outer", extra={"epoch": 1}):
        with telemetry.span("inner"):
            pass
    inner, outer = (r["data"] for r in sink.of_kind("span"))
    assert outer["epoch"] == 1
    assert outer["parent_id"] is None and outer["depth"] == 0
    assert inner["parent_id"] == outer["span_id"] and inner["depth"] == 1
    assert inner["span_id"] > outer["span_id"], "ids assigned at open time"


def test_span_attachments_merge_into_payload():
    telemetry, sink = _hub()
    with telemetry.span("decode") as info:
        info["tokens"] = 42
    assert sink.of_kind("span")[0]["data"]["tokens"] == 42


def test_span_profile_attaches_tape_counts():
    from repro.tensor.core import Tensor

    telemetry, sink = _hub()
    with telemetry.span("forward", profile=True):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        (x * x).sum().backward()
    data = sink.of_kind("span")[0]["data"]
    assert data["tape_nodes"] > 0
    assert data["tape_elements"] > 0


def test_span_emitted_even_when_body_raises():
    telemetry, sink = _hub()
    with pytest.raises(RuntimeError):
        with telemetry.span("doomed"):
            raise RuntimeError("boom")
    assert [r["name"] for r in sink.of_kind("span")] == ["doomed"]


# ----------------------------------------------------------------------
# JSONL sink: durability, tail repair, resume truncation
# ----------------------------------------------------------------------
def test_jsonl_roundtrip_and_validation(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry([JsonlSink(path)]) as telemetry:
        telemetry.gauge("train.loss", 3.5, step=1)
        with telemetry.span("epoch"):
            telemetry.counter("train.tokens", 128, step=1)
    records = list(read_trace(path))
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert records[0]["value"] == 3.5


def test_new_hub_continues_sequence_of_existing_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry([JsonlSink(path)]) as telemetry:
        telemetry.counter("a")
        telemetry.counter("a")
    with Telemetry([JsonlSink(path)]) as telemetry:
        assert telemetry.cursor() == 2
        telemetry.counter("a")
    assert [r["seq"] for r in read_trace(path)] == [0, 1, 2]


def test_torn_final_line_is_repaired_on_open(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry([JsonlSink(path)]) as telemetry:
        telemetry.counter("a")
        telemetry.counter("a")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 2, "kind": "coun')  # killed mid-append
    sink = JsonlSink(path)
    assert sink.last_seq == 1
    sink.close()
    assert [r["seq"] for r in read_trace(path)] == [0, 1]


def test_earlier_corruption_is_refused(tmp_path):
    path = tmp_path / "trace.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("definitely not json\n")
        handle.write(json.dumps({"seq": 0, "kind": "counter", "name": "a", "time": 0.0, "value": 1.0}) + "\n")
    with pytest.raises(ValueError, match="corrupt telemetry trace"):
        JsonlSink(path)


def test_resume_at_truncates_and_continues_without_gap(tmp_path):
    path = tmp_path / "trace.jsonl"
    telemetry = Telemetry([JsonlSink(path)])
    for _ in range(6):
        telemetry.counter("a")
    telemetry.resume_at(3)  # snapshot cursor: events 3..5 will be re-emitted
    telemetry.counter("a")
    telemetry.close()
    assert [r["seq"] for r in read_trace(path)] == [0, 1, 2, 3]


def test_resume_at_keeps_span_ids_unique(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry([JsonlSink(path)]) as telemetry:
        with telemetry.span("early"):
            pass
        telemetry.counter("a")
    # Fresh process resumes at the recorded cursor and opens new spans.
    with Telemetry([JsonlSink(path)]) as telemetry:
        telemetry.resume_at(2)
        with telemetry.span("late"):
            pass
    spans = [r["data"]["span_id"] for r in read_trace(path) if r["kind"] == "span"]
    assert len(spans) == len(set(spans))


# ----------------------------------------------------------------------
# Terminal sink + null hub + ambient stack
# ----------------------------------------------------------------------
def test_terminal_sink_prints_only_logs_and_run_markers():
    stream = io.StringIO()
    telemetry = Telemetry([TerminalSink(stream)])
    telemetry.gauge("train.loss", 1.0)
    telemetry.counter("train.tokens", 5)
    telemetry.log("epoch 1 done")
    telemetry.run_marker("train_start", epochs=2)
    lines = stream.getvalue().splitlines()
    assert lines == ["epoch 1 done", "[run] train_start epochs=2"]


def test_null_telemetry_is_inert():
    telemetry = NullTelemetry()
    assert not telemetry.enabled
    telemetry.counter("a")
    telemetry.gauge("b", float("nan"))
    telemetry.observe("c", 1.0)
    telemetry.flush_histograms()
    with telemetry.span("anything") as info:
        assert info == {}
    telemetry.close()


def test_ambient_hub_stack():
    assert isinstance(get_telemetry(), NullTelemetry)
    telemetry, sink = _hub()
    with use_telemetry(telemetry):
        assert get_telemetry() is telemetry
        with use_telemetry(None):
            assert isinstance(get_telemetry(), NullTelemetry)
        assert get_telemetry() is telemetry
    assert isinstance(get_telemetry(), NullTelemetry)


# ----------------------------------------------------------------------
# Schema edge cases
# ----------------------------------------------------------------------
def test_schema_rejects_nonfinite_outside_health():
    bad = {"seq": 0, "kind": "gauge", "name": "train.loss", "time": 0.0, "value": float("nan")}
    with pytest.raises(SchemaViolation):
        validate_record(bad)
    ok = dict(bad, name="health.loss")
    validate_record(ok)


def test_schema_rejects_malformed_events():
    with pytest.raises(SchemaViolation):
        validate_record({"kind": "gauge", "name": "a", "time": 0.0, "value": 1.0})
    with pytest.raises(SchemaViolation):
        validate_record({"seq": 0, "kind": "mystery", "name": "a", "time": 0.0})
    with pytest.raises(SchemaViolation):
        validate_record({"seq": 0, "kind": "span", "name": "a", "time": 0.0, "data": {}})
