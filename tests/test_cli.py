"""End-to-end tests for the ``acnn`` CLI (stats/train/evaluate/generate)."""

import json

import pytest

from repro.cli import build_parser, main


def test_stats_synthetic(capsys):
    assert main(["stats", "--train-size", "60"]) == 0
    out = capsys.readouterr().out
    assert "examples:" in out
    assert "overlap" in out


def test_stats_with_vocab_coverage(capsys):
    assert main(["stats", "--train-size", "60", "--decoder-vocab-size", "50"]) == 0
    assert "coverage" in capsys.readouterr().out


def test_stats_squad_json(tmp_path, capsys):
    context = "The tower was designed by Eiffel. It opened in 1889."
    payload = {
        "data": [
            {
                "paragraphs": [
                    {
                        "context": context,
                        "qas": [
                            {
                                "question": "Who designed the tower?",
                                "answers": [{"text": "Eiffel", "answer_start": context.index("Eiffel")}],
                            }
                        ],
                    }
                ]
            }
        ]
    }
    path = tmp_path / "squad.json"
    path.write_text(json.dumps(payload))
    assert main(["stats", "--squad-json", str(path)]) == 0
    assert "examples:                 1" in capsys.readouterr().out


@pytest.fixture(scope="module")
def trained_bundle(tmp_path_factory):
    out = tmp_path_factory.mktemp("bundle") / "run"
    code = main(
        [
            "train",
            "--train-size", "120",
            "--epochs", "2",
            "--hidden-size", "12",
            "--embedding-dim", "10",
            "--num-layers", "1",
            "--dropout", "0.0",
            "--encoder-vocab-size", "300",
            "--decoder-vocab-size", "80",
            "--batch-size", "16",
            "--out", str(out),
        ]
    )
    assert code == 0
    return out


def test_train_writes_bundle(trained_bundle):
    assert (trained_bundle / "config.json").exists()
    assert (trained_bundle / "model.npz").exists()


def test_evaluate_bundle(trained_bundle, capsys):
    code = main(
        [
            "evaluate",
            "--bundle", str(trained_bundle),
            "--train-size", "120",
            "--num-examples", "20",
            "--beam-size", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "BLEU-1" in out
    assert "exact=" in out


def test_generate_from_file(trained_bundle, tmp_path, capsys):
    sentences = tmp_path / "sentences.txt"
    sentences.write_text("velkorim was born in porzana in 1873 .\n")
    code = main(["generate", "--bundle", str(trained_bundle), "--input", str(sentences)])
    assert code == 0
    out = capsys.readouterr().out.strip()
    assert out, "generate produced no output"


def test_serve_continuous_default(trained_bundle, tmp_path, capsys):
    sentences = tmp_path / "sentences.txt"
    sentences.write_text(
        "velkorim was born in porzana in 1873 .\n"
        "the obrenta canal links mirova and telsk .\n"
    )
    code = main(["serve", "--bundle", str(trained_bundle), "--input", str(sentences)])
    assert code == 0
    captured = capsys.readouterr()
    assert "[req-0]" in captured.out and "[req-1]" in captured.out
    report = json.loads(captured.err)
    assert report["served"] == 2
    assert "encoder_cache" in report  # cache is on by default


def test_serve_static_fallback_flag(trained_bundle, tmp_path, capsys):
    sentences = tmp_path / "sentences.txt"
    sentences.write_text("velkorim was born in porzana in 1873 .\n")
    code = main(
        [
            "serve", "--bundle", str(trained_bundle), "--input", str(sentences),
            "--batching", "static", "--cache-size", "0",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    report = json.loads(captured.err)
    assert report["served"] == 1
    assert "encoder_cache" not in report


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "--bundle", "x"])
    assert args.batching == "continuous"
    assert args.max_rows == 12
    assert args.admit_per_step == 4
    assert args.cache_size == 128


def test_train_with_coverage_flag(tmp_path):
    out = tmp_path / "cov"
    code = main(
        [
            "train",
            "--train-size", "60",
            "--epochs", "1",
            "--hidden-size", "8",
            "--embedding-dim", "8",
            "--num-layers", "1",
            "--dropout", "0.0",
            "--coverage",
            "--out", str(out),
        ]
    )
    assert code == 0
    config = json.loads((out / "config.json").read_text())
    assert config["model_kwargs"] == {"use_coverage": True}


def test_stats_du_split(tmp_path, capsys):
    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("the tower was designed by eiffel .\n")
    tgt.write_text("who designed the tower ?\n")
    assert main(["stats", "--du-src", str(src), "--du-tgt", str(tgt)]) == 0
    assert "examples:                 1" in capsys.readouterr().out


def test_train_on_du_split(tmp_path):
    lines_src = [f"entity{i} was born in town{i} .\n" for i in range(40)]
    lines_tgt = [f"where was entity{i} born ?\n" for i in range(40)]
    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("".join(lines_src))
    tgt.write_text("".join(lines_tgt))
    out = tmp_path / "du-bundle"
    code = main(
        [
            "train",
            "--du-src", str(src),
            "--du-tgt", str(tgt),
            "--epochs", "1",
            "--hidden-size", "8",
            "--embedding-dim", "8",
            "--num-layers", "1",
            "--dropout", "0.0",
            "--batch-size", "8",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert (out / "model.npz").exists()


def test_train_parser_numerics_flags_default_off():
    args = build_parser().parse_args(["train", "--out", "x"])
    assert args.detect_anomaly is False
    assert args.overflow_policy == "rollback"


def test_train_parser_accepts_numerics_flags():
    args = build_parser().parse_args(
        ["train", "--out", "x", "--detect-anomaly", "--overflow-policy", "skip"]
    )
    assert args.detect_anomaly is True
    assert args.overflow_policy == "skip"


def test_train_parser_rejects_unknown_overflow_policy(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["train", "--out", "x", "--overflow-policy", "ignore"])
    assert "invalid choice" in capsys.readouterr().err


def test_train_with_numerics_flags_end_to_end(tmp_path):
    out = tmp_path / "numerics"
    code = main(
        [
            "train",
            "--train-size", "60",
            "--epochs", "1",
            "--hidden-size", "8",
            "--embedding-dim", "8",
            "--num-layers", "1",
            "--dropout", "0.0",
            "--detect-anomaly",
            "--overflow-policy", "skip",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert (out / "model.npz").exists()


def test_ingest_records_vocabs_and_train_skips_rescan(tmp_path, capsys):
    store = tmp_path / "store"
    code = main(
        [
            "ingest",
            "--train-size", "60",
            "--out", str(store),
            "--encoder-vocab-size", "300",
            "--decoder-vocab-size", "80",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "recorded vocabularies" in out
    assert (store / "VOCABS.json").exists()

    out_dir = tmp_path / "bundle"
    code = main(
        [
            "train",
            "--shards", str(store),
            "--epochs", "1",
            "--hidden-size", "8",
            "--embedding-dim", "8",
            "--num-layers", "1",
            "--dropout", "0.0",
            "--encoder-vocab-size", "300",
            "--decoder-vocab-size", "80",
            "--batch-size", "16",
            "--out", str(out_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "recorded at ingest time" in out
    assert (out_dir / "model.npz").exists()


def test_train_rebuilds_vocabs_when_record_params_differ(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(["ingest", "--train-size", "60", "--out", str(store)]) == 0
    capsys.readouterr()
    from repro.data import VocabsMismatchError

    # Different vocab sizes than the record: the stale record must be a
    # typed rejection, not a silent id shift.
    with pytest.raises(VocabsMismatchError):
        main(
            [
                "train",
                "--shards", str(store),
                "--epochs", "1",
                "--hidden-size", "8",
                "--embedding-dim", "8",
                "--num-layers", "1",
                "--dropout", "0.0",
                "--encoder-vocab-size", "77",
                "--out", str(tmp_path / "bundle"),
            ]
        )


def test_ingest_no_vocabs_flag_keeps_old_behaviour(tmp_path, capsys):
    store = tmp_path / "store"
    code = main(["ingest", "--train-size", "60", "--out", str(store), "--no-vocabs"])
    assert code == 0
    assert "recorded vocabularies" not in capsys.readouterr().out
    assert not (store / "VOCABS.json").exists()


def test_serve_parser_pool_flags_default_off():
    args = build_parser().parse_args(["serve", "--bundle", "x"])
    assert args.pool_workers == 0
    assert args.reload_on_hup is False


def test_serve_with_pool_workers(trained_bundle, tmp_path, capsys):
    sentences = tmp_path / "sentences.txt"
    sentences.write_text(
        "velkorim was born in porzana in 1873 .\n"
        "the obrenta canal links mirova and telsk .\n"
        "the tarnel museum opened in 1911 .\n"
    )
    code = main(
        [
            "serve", "--bundle", str(trained_bundle), "--input", str(sentences),
            "--pool-workers", "2",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "[req-0]" in captured.out and "[req-2]" in captured.out
    report = json.loads(captured.err)
    assert report["served"] == 3
    assert report["finished"] == report["submitted"] == 3
    assert report["workers"].keys() == {"0", "1"}
