"""Tests for gradient clipping and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    ConstantSchedule,
    DecayAfterEpoch,
    HalveAtEpoch,
    NonFiniteGradError,
    clip_grad_norm,
    grad_norm,
)


def _param_with_grad(grad):
    p = Parameter(np.zeros_like(np.asarray(grad, dtype=float)))
    p.grad = np.asarray(grad, dtype=float)
    return p


def test_grad_norm_is_global_l2():
    a = _param_with_grad([3.0])
    b = _param_with_grad([4.0])
    assert np.isclose(grad_norm([a, b]), 5.0)


def test_grad_norm_ignores_missing_grads():
    a = _param_with_grad([3.0])
    b = Parameter(np.zeros(2))
    assert np.isclose(grad_norm([a, b]), 3.0)


def test_clip_rescales_when_above_threshold():
    a = _param_with_grad([3.0])
    b = _param_with_grad([4.0])
    returned = clip_grad_norm([a, b], max_norm=1.0)
    assert np.isclose(returned, 5.0)
    assert np.isclose(grad_norm([a, b]), 1.0, atol=1e-6)


def test_clip_noop_when_below_threshold():
    a = _param_with_grad([0.3])
    clip_grad_norm([a], max_norm=1.0)
    assert np.allclose(a.grad, [0.3])


def test_clip_rejects_nonpositive_max_norm():
    with pytest.raises(ValueError):
        clip_grad_norm([_param_with_grad([1.0])], max_norm=0.0)


def test_clip_nan_grad_raises_by_default():
    """Regression: a NaN norm used to fail ``norm > max_norm`` silently and
    leave the poisoned gradients in place for the optimizer to apply."""
    healthy = _param_with_grad([1e6, -1e6])
    poisoned = _param_with_grad([np.nan, 1.0])
    with pytest.raises(NonFiniteGradError) as excinfo:
        clip_grad_norm([healthy, poisoned], max_norm=1.0)
    assert np.isnan(excinfo.value.norm)
    assert excinfo.value.parameter_names  # names the offender
    # Gradients are untouched so the caller can quarantine/inspect them.
    assert np.allclose(healthy.grad, [1e6, -1e6])
    assert np.isnan(poisoned.grad[0])


def test_clip_nonfinite_zero_policy_neutralizes_step():
    healthy = _param_with_grad([3.0])
    poisoned = _param_with_grad([np.inf])
    returned = clip_grad_norm([healthy, poisoned], max_norm=1.0, on_nonfinite="zero")
    assert returned == np.inf
    assert np.allclose(healthy.grad, [0.0])
    assert np.allclose(poisoned.grad, [0.0])


def test_clip_nonfinite_propagate_policy_is_legacy_behavior():
    poisoned = _param_with_grad([np.nan])
    returned = clip_grad_norm([poisoned], max_norm=1.0, on_nonfinite="propagate")
    assert np.isnan(returned)
    assert np.isnan(poisoned.grad[0])


def test_clip_rejects_unknown_nonfinite_policy():
    with pytest.raises(ValueError):
        clip_grad_norm([_param_with_grad([1.0])], max_norm=1.0, on_nonfinite="ignore")


def _optimizer():
    return SGD([_param_with_grad([1.0])], lr=1.0)


def test_constant_schedule_never_changes():
    schedule = ConstantSchedule(_optimizer())
    assert schedule.apply(1) == 1.0
    assert schedule.apply(100) == 1.0


def test_halve_at_epoch_matches_paper_rule():
    """Paper: lr = 1.0, halved at epoch 8."""
    schedule = HalveAtEpoch(_optimizer(), halve_epoch=8)
    assert schedule.apply(1) == 1.0
    assert schedule.apply(7) == 1.0
    assert schedule.apply(8) == 0.5
    assert schedule.apply(12) == 0.5


def test_halve_updates_optimizer_lr():
    opt = _optimizer()
    HalveAtEpoch(opt, halve_epoch=2).apply(3)
    assert opt.lr == 0.5


def test_decay_after_epoch_compounds():
    schedule = DecayAfterEpoch(_optimizer(), decay=0.5, start_epoch=3)
    assert schedule.apply(2) == 1.0
    assert schedule.apply(3) == 0.5
    assert schedule.apply(4) == 0.25
    assert schedule.apply(5) == 0.125


def test_schedules_reject_bad_arguments():
    with pytest.raises(ValueError):
        HalveAtEpoch(_optimizer(), halve_epoch=0)
    with pytest.raises(ValueError):
        DecayAfterEpoch(_optimizer(), decay=0.0)
    with pytest.raises(ValueError):
        DecayAfterEpoch(_optimizer(), start_epoch=0)
    with pytest.raises(ValueError):
        ConstantSchedule(_optimizer()).apply(0)
