"""Tests for SGD, Adam, and base optimizer behaviour."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam


def _param(values):
    p = Parameter(np.array(values, dtype=float))
    p.grad = np.ones_like(p.data)
    return p


def test_sgd_takes_gradient_step():
    p = _param([1.0, 2.0])
    SGD([p], lr=0.5).step()
    assert np.allclose(p.data, [0.5, 1.5])


def test_sgd_skips_parameters_without_grad():
    p = Parameter(np.array([1.0]))
    SGD([p], lr=0.5).step()
    assert np.allclose(p.data, [1.0])


def test_sgd_momentum_accumulates():
    p = _param([0.0])
    opt = SGD([p], lr=1.0, momentum=0.9)
    opt.step()  # v = 1, x = -1
    p.grad = np.ones(1)
    opt.step()  # v = 1.9, x = -2.9
    assert np.allclose(p.data, [-2.9])


def test_sgd_rejects_bad_momentum():
    with pytest.raises(ValueError):
        SGD([_param([1.0])], lr=0.1, momentum=1.0)


def test_optimizer_rejects_nonpositive_lr():
    with pytest.raises(ValueError):
        SGD([_param([1.0])], lr=0.0)


def test_optimizer_rejects_empty_parameter_list():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_zero_grad_clears_gradients():
    p = _param([1.0])
    opt = SGD([p], lr=0.1)
    opt.zero_grad()
    assert p.grad is None


def test_adam_first_step_magnitude_is_lr():
    """With constant unit gradient, Adam's first update is ~lr."""
    p = _param([0.0])
    Adam([p], lr=0.01).step()
    assert np.allclose(p.data, [-0.01], atol=1e-6)


def test_adam_converges_on_quadratic():
    p = Parameter(np.array([5.0]))
    opt = Adam([p], lr=0.1)
    for _ in range(500):
        p.grad = 2.0 * p.data  # d/dx x^2
        opt.step()
    assert abs(p.data[0]) < 1e-2


def test_sgd_converges_on_quadratic():
    p = Parameter(np.array([5.0]))
    opt = SGD([p], lr=0.1)
    for _ in range(100):
        p.grad = 2.0 * p.data
        opt.step()
    assert abs(p.data[0]) < 1e-3


def test_adam_rejects_bad_betas():
    with pytest.raises(ValueError):
        Adam([_param([1.0])], betas=(1.0, 0.999))
