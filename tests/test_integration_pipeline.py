"""One end-to-end integration test across the whole library surface.

synthetic corpus → augmentation → vocabularies → ACNN training (with the
paper's schedule) → bundle save/reload → beam evaluation → error analysis →
significance test against the attention baseline.
"""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    QGDataset,
    SyntheticConfig,
    augment_examples,
    generate_corpus,
)
from repro.evaluation import analyse_predictions, evaluate_model, paired_bootstrap
from repro.models import ModelConfig, build_model
from repro.training import ModelBundle, Trainer, TrainerConfig


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    corpus = generate_corpus(SyntheticConfig(num_train=200, num_dev=40, num_test=40, seed=21))
    train_examples = augment_examples(list(corpus.train), factor=1, seed=2)
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        train_examples, encoder_vocab_size=800, decoder_vocab_size=110
    )
    train_set = QGDataset(train_examples, encoder_vocab, decoder_vocab)
    dev_set = QGDataset(corpus.dev, encoder_vocab, decoder_vocab)
    test_set = QGDataset(corpus.test, encoder_vocab, decoder_vocab)

    config = ModelConfig(embedding_dim=16, hidden_size=24, num_layers=1, dropout=0.1, seed=4)
    results = {}
    for family in ("acnn", "du-attention"):
        model = build_model(family, config, len(encoder_vocab), len(decoder_vocab))
        Trainer(
            model,
            BatchIterator(train_set, batch_size=32, seed=4),
            BatchIterator(dev_set, batch_size=32, shuffle=False),
            TrainerConfig(epochs=5, learning_rate=1.0, halve_at_epoch=4),
        ).train()
        results[family] = (model, evaluate_model(model, test_set, beam_size=2, max_length=18))

    bundle_dir = tmp_path_factory.mktemp("pipeline") / "bundle"
    acnn_model, acnn_result = results["acnn"]
    ModelBundle(
        model=acnn_model,
        encoder_vocab=encoder_vocab,
        decoder_vocab=decoder_vocab,
        family="acnn",
        model_config=config,
        model_kwargs={},
        metadata={"mode": "sentence"},
    ).save(bundle_dir)

    return {
        "decoder_vocab": decoder_vocab,
        "test_set": test_set,
        "results": results,
        "bundle_dir": bundle_dir,
    }


def test_acnn_beats_baseline_end_to_end(pipeline):
    acnn = pipeline["results"]["acnn"][1]
    baseline = pipeline["results"]["du-attention"][1]
    assert acnn["ROUGE-L"] > baseline["ROUGE-L"]
    assert acnn["BLEU-1"] > baseline["BLEU-1"]


def test_acnn_recovers_oov_entities_baseline_cannot(pipeline):
    decoder_vocab = pipeline["decoder_vocab"]
    acnn = pipeline["results"]["acnn"][1]
    baseline = pipeline["results"]["du-attention"][1]
    acnn_analysis = analyse_predictions(acnn.predictions, acnn.references, decoder_vocab)
    base_analysis = analyse_predictions(baseline.predictions, baseline.references, decoder_vocab)
    assert acnn_analysis.oov_entity_recall > 0.1
    assert base_analysis.oov_entity_recall == 0.0  # no copy path, no entities


def test_significance_of_the_gap(pipeline):
    acnn = pipeline["results"]["acnn"][1]
    baseline = pipeline["results"]["du-attention"][1]
    outcome = paired_bootstrap(
        acnn.predictions, baseline.predictions, acnn.references,
        metric="ROUGE-L", samples=200, seed=0,
    )
    assert outcome.score_a > outcome.score_b
    # 40 test segments after 5 epochs is too small for a hard p-value
    # threshold, but the resampled wins must clearly favour the ACNN.
    assert outcome.wins_a > 2 * outcome.wins_b


def test_bundle_reload_reproduces_scores(pipeline):
    bundle = ModelBundle.load(pipeline["bundle_dir"])
    reloaded = evaluate_model(bundle.model, pipeline["test_set"], beam_size=2, max_length=18)
    original = pipeline["results"]["acnn"][1]
    assert reloaded.scores == original.scores
