"""Queue-latency fairness: the regression the continuous engine fixes.

The latent `MicroBatcher` unfairness: a request that arrives while a
batch is in flight waits the *full batch turnaround* before it is even
looked at — even when the frontier has idle row capacity the whole time.
A short request stuck behind a long batch pays the long batch's bill.

The continuous engine removes the batch boundary: the late arrival is
admitted into free rows at the next decode step and finishes on its own
schedule. Both halves are pinned here — the bad bound *holds* for the
micro-batcher (this is the seed-failing shape: it documents the defect
the engine exists to fix) and the good bound holds for the engine.

Time is simulated: a per-boundary stall plan advances a manual clock at
every encode and decode step, so "latency" is deterministic step
accounting, not wall time.
"""

from repro.observability import Telemetry
from repro.serving import (
    ContinuousBatchingEngine,
    EngineConfig,
    FaultPlan,
    GenerationRequest,
    InferenceService,
    ManualClock,
    MicroBatcher,
    ServiceConfig,
)

from conftest import DECODER, ENCODER, build_tiny_model, request_texts

STEP_SECONDS = 0.1
LONG_LENGTH = 20   # the batch in flight when the short request arrives
SHORT_LENGTH = 2   # the late arrival: two decode steps of real work
ARRIVAL = 0.05     # the short request arrives just after the batch starts


def build_timed_service(clock):
    """Every encode/decode boundary costs STEP_SECONDS of simulated time."""
    return InferenceService(
        build_tiny_model(),
        ENCODER,
        DECODER,
        config=ServiceConfig(default_deadline_seconds=60.0),
        clock=clock,
        telemetry=Telemetry([]),
        fault_plan=FaultPlan(seed=0, slow_rate=1.0, slow_seconds=STEP_SECONDS),
    )


def make_requests():
    texts = request_texts(5, seed=91)
    long_batch = [
        GenerationRequest(text, request_id=f"long-{index}", beam_size=2,
                          max_length=LONG_LENGTH)
        for index, text in enumerate(texts[:4])
    ]
    short = GenerationRequest(texts[4], request_id="short", beam_size=2,
                              max_length=SHORT_LENGTH)
    return long_batch, short


def test_microbatcher_late_arrival_waits_full_batch_turnaround():
    """The defect, pinned: under the micro-batcher the short request's
    arrival-to-completion latency is dominated by the long batch it had
    no part in. This is the seed-failing bound the engine fixes — if the
    micro-batcher ever serves the late arrival faster than the long
    batch's turnaround, this test (and the defect) disappear together."""
    clock = ManualClock()
    service = build_timed_service(clock)
    batcher = MicroBatcher(service, max_batch=4, queue_limit=16)
    long_batch, short = make_requests()

    for request in long_batch:
        assert batcher.submit(request) is None
    # The batch goes in flight at t=0. The short request arrives at
    # t=ARRIVAL — mid-flight, so the synchronous pump cannot see it until
    # the whole group returns.
    batcher.pump()
    turnaround = clock.now()
    assert turnaround >= LONG_LENGTH * STEP_SECONDS  # the batch was long

    assert batcher.submit(short) is None
    batcher.drain()
    short_latency = clock.now() - ARRIVAL

    # The unfairness bound: the short request could not beat the long
    # batch's turnaround, despite needing SHORT_LENGTH steps of work.
    assert short_latency >= turnaround
    assert short_latency >= LONG_LENGTH * STEP_SECONDS


def test_continuous_engine_bounds_late_arrival_latency():
    """The fix, pinned: the engine admits the late arrival into free rows
    at the next step boundary; its latency is its own work plus a small
    admission delay — independent of the long cohort's total turnaround."""
    clock = ManualClock()
    service = build_timed_service(clock)
    engine = ContinuousBatchingEngine(
        service,
        EngineConfig(max_rows=10, admit_per_step=4, pad_to=12),
    )
    long_batch, short = make_requests()

    for request in long_batch:
        assert engine.submit(request) is None
    # One step: the long cohort is admitted and decoding.
    engine.step()
    assert engine.in_flight == 4
    arrived_at = clock.now()

    assert engine.submit(short) is None
    outcomes = []
    steps_until_served = 0
    while not any(o.request_id == "short" for o in outcomes):
        outcomes.extend(engine.step())
        steps_until_served += 1
    short_latency = clock.now() - arrived_at

    # Served in ~SHORT_LENGTH steps plus one admission boundary — while
    # the long cohort is still in flight (no head-of-line blocking).
    assert steps_until_served <= SHORT_LENGTH + 1
    assert engine.in_flight == 4
    # Each merged step costs one stall; admission adds one encode stall.
    assert short_latency <= (SHORT_LENGTH + 2) * STEP_SECONDS
    # And the fairness headline: far below the long batch's turnaround.
    assert short_latency < LONG_LENGTH * STEP_SECONDS / 2

    remaining = engine.drain()
    assert {o.status for o in list(outcomes) + list(remaining)} == {"served"}


def test_engine_latency_advantage_is_large():
    """End-to-end comparison on identical fleets: the engine's late-arrival
    latency beats the micro-batcher's by the length ratio, not by noise."""

    def batcher_latency():
        clock = ManualClock()
        batcher = MicroBatcher(build_timed_service(clock), max_batch=4)
        long_batch, short = make_requests()
        for request in long_batch:
            batcher.submit(request)
        batcher.pump()
        batcher.submit(short)
        batcher.drain()
        return clock.now() - ARRIVAL

    def engine_latency():
        clock = ManualClock()
        engine = ContinuousBatchingEngine(
            build_timed_service(clock),
            EngineConfig(max_rows=10, admit_per_step=4, pad_to=12),
        )
        long_batch, short = make_requests()
        for request in long_batch:
            engine.submit(request)
        engine.step()
        arrived_at = clock.now()
        engine.submit(short)
        outcomes = []
        while not any(o.request_id == "short" for o in outcomes):
            outcomes.extend(engine.step())
        latency = clock.now() - arrived_at
        engine.drain()
        return latency

    assert engine_latency() * 4 < batcher_latency()
