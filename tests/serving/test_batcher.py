"""Micro-batcher: queue bounds, shed accounting, batched fast path, isolation."""

import pytest

from repro.serving import GenerationRequest, MicroBatcher

from conftest import build_service, build_tiny_model, request_texts


def test_shed_vs_served_accounting_under_full_queue():
    service = build_service()
    batcher = MicroBatcher(service, max_batch=2, queue_limit=2)
    outcomes = []
    for index, text in enumerate(request_texts(5)):
        outcome = batcher.submit(GenerationRequest(text, request_id=f"r{index}"))
        if outcome is not None:
            outcomes.append(outcome)
    # Queue holds 2; the other 3 were shed at submission.
    assert [o.status for o in outcomes] == ["shed"] * 3
    assert all(o.reason == "queue_full" for o in outcomes)
    assert batcher.depth == 2

    outcomes.extend(batcher.drain())
    assert batcher.depth == 0
    statuses = sorted(o.status for o in outcomes)
    assert statuses == ["served", "served", "shed", "shed", "shed"]
    # Ledger and outcomes agree exactly.
    assert service.stats.admitted == 5
    assert service.stats.served == 2
    assert service.stats.shed == 3
    assert service.stats.shed_by_reason == {"queue_full": 3}
    assert service.stats.finished == 5


def test_rejected_never_consumes_queue_space():
    service = build_service()
    batcher = MicroBatcher(service, queue_limit=1)
    outcome = batcher.submit(GenerationRequest(""))
    assert outcome.status == "rejected"
    assert batcher.depth == 0
    assert service.stats.rejected == 1


def test_homogeneous_batch_takes_fast_path():
    service = build_service()
    batcher = MicroBatcher(service, max_batch=4)
    for index, text in enumerate(request_texts(3)):
        assert batcher.submit(GenerationRequest(text, request_id=f"r{index}")) is None
    outcomes = batcher.drain()
    assert [o.status for o in outcomes] == ["served"] * 3
    assert all(o.result.rung == "beam" for o in outcomes)
    assert service.stats.served == 3


def test_heterogeneous_group_served_per_request():
    service = build_service()
    batcher = MicroBatcher(service, max_batch=2)
    texts = request_texts(2)
    batcher.submit(GenerationRequest(texts[0], request_id="a", beam_size=2))
    batcher.submit(GenerationRequest(texts[1], request_id="b", beam_size=3))
    outcomes = batcher.drain()
    assert [o.status for o in outcomes] == ["served", "served"]


class GroupPoison:
    """Fails any multi-example encode; single requests pass through."""

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        return getattr(self._model, name)

    def encode(self, batch):
        if len(batch.examples) > 1:
            raise RuntimeError("batched encode exploded")
        return self._model.encode(batch)


def test_batch_failure_isolates_to_per_request_path():
    service = build_service(model=GroupPoison(build_tiny_model()))
    batcher = MicroBatcher(service, max_batch=3)
    for index, text in enumerate(request_texts(3)):
        batcher.submit(GenerationRequest(text, request_id=f"r{index}"))
    outcomes = batcher.drain()
    # The group decode failed but every member was served individually.
    assert [o.status for o in outcomes] == ["served"] * 3
    assert service.stats.served == 3


def test_pump_respects_max_batch():
    service = build_service()
    batcher = MicroBatcher(service, max_batch=2, queue_limit=8)
    for index, text in enumerate(request_texts(5)):
        batcher.submit(GenerationRequest(text, request_id=f"r{index}"))
    assert len(batcher.pump()) == 2
    assert batcher.depth == 3


def test_batcher_validates_limits():
    service = build_service()
    with pytest.raises(ValueError):
        MicroBatcher(service, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(service, queue_limit=0)
