"""Property tests for the continuous-batching scheduler.

Hypothesis drives randomized arrival/length/deadline streams through the
engine and checks the scheduler's structural invariants *after every
step*, not just at the end:

- no request is ever served twice (exactly-once outcomes);
- no frontier row is double-occupied, and occupancy never exceeds the
  configured budget;
- every admitted request terminates as a typed outcome — served,
  rejected, or shed — within a bounded number of steps;
- conservation: ``submitted == settled + queued + in_flight`` at every
  instant, and all submissions are settled after drain;
- cohabitation is byte-inert: any request served inside the frontier
  matches its solo decode bit-for-bit.

The fleet runs the real tiny ACNN (the scheduler schedules real tensor
work, not a stub), so the byte-identity leg is the same comparison the
unit suite pins, here under arbitrary schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import collate
from repro.data.vocabulary import PAD_ID
from repro.decoding.batched_beam import batched_beam_decode
from repro.observability import Telemetry
from repro.serving import (
    ContinuousBatchingEngine,
    EngineConfig,
    GenerationRequest,
    ManualClock,
    pad_batch,
)

from conftest import build_service, build_tiny_model, request_texts

PAD_TO = 12
TEXTS = request_texts(10, seed=773)
MODEL = build_tiny_model()
_SOLO_CACHE: dict[tuple, float] = {}


def solo_log_prob(text: str, beam_size: int, max_length: int) -> float:
    """Reference decode of one request alone, at the engine's pad width."""
    key = (text, beam_size, max_length)
    if key not in _SOLO_CACHE:
        service = build_service(model=MODEL)
        encoded = service.admit(GenerationRequest(text, request_id="solo"))
        batch = pad_batch(collate([encoded], pad_id=PAD_ID), PAD_TO)
        best = batched_beam_decode(
            MODEL, batch, beam_size=beam_size, max_length=max_length,
            telemetry=Telemetry([]),
        )[0]
        _SOLO_CACHE[key] = best.log_prob
    return _SOLO_CACHE[key]


request_strategy = st.builds(
    dict,
    text_index=st.integers(min_value=0, max_value=len(TEXTS) - 1),
    beam_size=st.integers(min_value=1, max_value=3),
    max_length=st.integers(min_value=1, max_value=8),
    deadline_seconds=st.one_of(st.none(), st.sampled_from([0.1, 1.0, 30.0])),
)

schedule_strategy = st.builds(
    dict,
    requests=st.lists(request_strategy, min_size=1, max_size=10),
    max_rows=st.integers(min_value=2, max_value=8),
    queue_limit=st.integers(min_value=1, max_value=8),
    admit_per_step=st.integers(min_value=1, max_value=4),
    steps_between_arrivals=st.lists(
        st.integers(min_value=0, max_value=3), min_size=10, max_size=10
    ),
    clock_advances=st.lists(
        st.sampled_from([0.0, 0.0, 0.05, 0.5]), min_size=10, max_size=10
    ),
)


def check_step_invariants(engine, outcomes):
    # Conservation at every instant.
    settled = len(outcomes) + engine.queue_depth + engine.in_flight
    assert engine.stats.submitted == settled

    # Row budget and disjoint occupancy.
    assert engine.frontier_rows <= engine.config.max_rows
    table = engine.slot_table()
    spans = [set(range(base, base + width)) for _, base, width in table]
    occupied = set()
    for span in spans:
        assert not (span & occupied), "slot rows double-occupied"
        occupied |= span
    if spans:
        assert occupied == set(range(engine.frontier_rows)), "frontier has holes"

    # A request is never simultaneously settled and in flight.
    in_flight_ids = {request_id for request_id, _, _ in table}
    settled_ids = {o.request_id for o in outcomes}
    assert not (in_flight_ids & settled_ids)


@settings(max_examples=20, deadline=None)
@given(schedule=schedule_strategy)
def test_scheduler_invariants_under_random_schedules(schedule):
    clock = ManualClock()
    service = build_service(model=MODEL, clock=clock)
    engine = ContinuousBatchingEngine(
        service,
        EngineConfig(
            max_rows=schedule["max_rows"],
            queue_limit=schedule["queue_limit"],
            admit_per_step=schedule["admit_per_step"],
            pad_to=PAD_TO,
        ),
    )

    requests = [
        GenerationRequest(
            TEXTS[spec["text_index"]],
            request_id=f"req-{index}",
            beam_size=spec["beam_size"],
            max_length=spec["max_length"],
            deadline_seconds=spec["deadline_seconds"],
        )
        for index, spec in enumerate(schedule["requests"])
    ]

    outcomes = []
    for index, request in enumerate(requests):
        outcome = engine.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
        check_step_invariants(engine, outcomes)
        clock.sleep(schedule["clock_advances"][index % 10])
        for _ in range(schedule["steps_between_arrivals"][index % 10]):
            outcomes.extend(engine.step())
            check_step_invariants(engine, outcomes)

    # Termination: the whole fleet settles within a bounded step budget.
    # Every in-flight request finishes within its max_length steps and
    # every queued request is admitted as rows free up, so the bound is
    # generous — hitting it means a scheduling livelock.
    step_budget = 20 * (len(requests) + 1)
    while engine.queue_depth or engine.in_flight:
        outcomes.extend(engine.step())
        check_step_invariants(engine, outcomes)
        step_budget -= 1
        assert step_budget > 0, "scheduler failed to terminate"

    # Exactly-once: every submission settled once, none twice.
    ids = [o.request_id for o in outcomes]
    assert sorted(ids) == sorted(r.request_id for r in requests)
    assert len(set(ids)) == len(ids)

    # Status vocabulary is closed, and the service ledger agrees.
    assert {o.status for o in outcomes} <= {"served", "rejected", "shed", "failed"}
    stats = service.stats
    assert stats.finished == len(outcomes)
    assert stats.served + stats.rejected + stats.shed + stats.failed == stats.finished

    # Byte-inertness: frontier-served requests match their solo decode.
    # (Solo fallbacks — expired deadlines, oversize — legitimately differ:
    # they serve from lower rungs by design.)
    if engine.stats.solo_fallbacks == 0:
        for request, outcome in zip(requests, sorted(outcomes, key=lambda o: o.request_id)):
            if outcome.status != "served":
                continue
            assert outcome.result.log_prob == solo_log_prob(
                request.text, request.beam_size, request.max_length
            )


@settings(max_examples=10, deadline=None)
@given(
    requests=st.lists(request_strategy, min_size=1, max_size=6),
    max_rows=st.integers(min_value=2, max_value=6),
)
def test_random_fleets_are_byte_deterministic(requests, max_rows):
    """Same schedule, same weights -> byte-identical outcome stream."""

    def run():
        engine = ContinuousBatchingEngine(
            build_service(model=MODEL),
            EngineConfig(max_rows=max_rows, pad_to=PAD_TO),
        )
        rows = []
        for index, spec in enumerate(requests):
            outcome = engine.submit(
                GenerationRequest(
                    TEXTS[spec["text_index"]],
                    request_id=f"req-{index}",
                    beam_size=spec["beam_size"],
                    max_length=spec["max_length"],
                )
            )
            if outcome is not None:
                rows.append((outcome.request_id, outcome.status, None, None))
        for outcome in engine.drain():
            result = outcome.result
            rows.append(
                (outcome.request_id, outcome.status,
                 result.tokens if result else None,
                 result.log_prob if result else None)
            )
        return rows

    assert run() == run()
