"""SIGTERM on a real serving fleet: graceful drain, exit 0, no orphans.

These tests drive actual processes from outside — the same harness the
elastic-training chaos suite uses (``tests/training/faults.py``). A
terminal SIGTERM goes to the whole foreground group; pool workers mask
it, so only the coordinator reacts: admission stops, in-flight requests
finish, the ledger balances, and the process exits 0 with every worker
reaped. The same drain contract holds for single-process serving.
"""

import os
import sys

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests", "training"))

import signal

from faults import (
    assert_no_orphans,
    descendant_pids,
    interrupt_group,
    spawn_process,
    wait_for_marker,
)

_EXAMPLE_PREAMBLE = """
import sys
import time

from repro.data import QGDataset, QGExample
from repro.models import ModelConfig, build_model
from repro.observability import Telemetry

sentences = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "pelor wrote the sunken atlas .",
    "the omber bridge spans the fjord .",
]
questions = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who wrote the sunken atlas ?",
    "what spans the fjord ?",
]
examples = [
    QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
    for s, q in zip(sentences, questions)
]
encoder, decoder = QGDataset.build_vocabs(examples, 100, 100)
model = build_model(
    "acnn", ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=0),
    len(encoder), len(decoder),
)
"""

POOL_SCRIPT = _EXAMPLE_PREAMBLE + """
from repro.serving import DrainGuard, GenerationRequest, PoolConfig, PoolFaultPlan, ServingPool

fault_plan = None
if "--kill-worker" in sys.argv:
    fault_plan = PoolFaultPlan(kill_on_serve={0: 2})

pool = ServingPool(
    model, encoder, decoder,
    telemetry=Telemetry([]),
    config=PoolConfig(workers=2, heartbeat_interval=0.1, poll_interval=0.01,
                      restart_backoff=0.05),
    fault_plan=fault_plan,
)
pool.start()
guard = DrainGuard().install()
print("READY " + " ".join(str(pid) for pid in pool.live_worker_pids()), flush=True)

outcomes = []
index = 0
while not guard.draining:
    request = GenerationRequest(
        sentences[index % len(sentences)], request_id=f"req-{index:04d}"
    )
    index += 1
    outcome = pool.submit(request)
    if outcome is not None:
        outcomes.append(outcome)
    outcomes.extend(pool.pump())
    served = sum(1 for o in outcomes if o.status == "served")
    print(f"SERVED {served}", flush=True)
    time.sleep(0.05)

pool.begin_drain()
print("DRAINING", flush=True)
outcomes.extend(pool.drain())
pool.shutdown()
assert pool.live_worker_pids() == [], "workers survived shutdown"

stats = pool.stats
assert stats.finished == stats.submitted, (stats.finished, stats.submitted)
assert len(outcomes) == stats.submitted, (len(outcomes), stats.submitted)
served = sum(1 for o in outcomes if o.status == "served")
assert served == stats.served, (served, stats.served)
print(
    f"LEDGER submitted={stats.submitted} served={stats.served} "
    f"shed={stats.shed} failed={stats.failed} deaths={stats.worker_deaths} "
    f"redispatched={stats.redispatched}",
    flush=True,
)
print("DRAINED OK", flush=True)
sys.exit(0)
"""

SINGLE_PROCESS_SCRIPT = _EXAMPLE_PREAMBLE + """
from repro.serving import ContinuousBatchingEngine, DrainGuard, GenerationRequest, InferenceService

service = InferenceService(model, encoder, decoder, telemetry=Telemetry([]))
engine = ContinuousBatchingEngine(service)
guard = DrainGuard().install()
print("READY", flush=True)

outcomes = []
submitted = 0
index = 0
while not guard.draining:
    request = GenerationRequest(
        sentences[index % len(sentences)], request_id=f"req-{index:04d}"
    )
    index += 1
    submitted += 1
    outcome = engine.submit(request)
    if outcome is not None:
        outcomes.append(outcome)
    outcomes.extend(engine.step())
    served = sum(1 for o in outcomes if o.status == "served")
    print(f"SERVED {served}", flush=True)
    time.sleep(0.05)

# Admission stops; in-flight requests still resolve through drain.
print("DRAINING", flush=True)
outcomes.extend(engine.drain())
assert len(outcomes) == submitted, (len(outcomes), submitted)
served = sum(1 for o in outcomes if o.status == "served")
shed = sum(1 for o in outcomes if o.status == "shed")
print(f"LEDGER submitted={submitted} served={served} shed={shed}", flush=True)
print("DRAINED OK", flush=True)
sys.exit(0)
"""


def _run_and_drain(script, args=None, marker="SERVED 5"):
    env = {"PYTHONPATH": os.path.join(REPO_ROOT, "src")}
    process = spawn_process(script, args=args or [], env=env, cwd=REPO_ROOT)
    workers = []
    group = []
    try:
        lines = wait_for_marker(process, "READY", timeout=120.0)
        for line in lines:
            if line.startswith("READY"):
                workers = [int(field) for field in line.split()[1:]]
        wait_for_marker(process, marker, timeout=120.0)
        group = descendant_pids(process.pid)

        interrupt_group(process, signal.SIGTERM)
        output = wait_for_marker(process, "DRAINED OK", timeout=120.0)
        assert process.wait(timeout=60.0) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)
    assert_no_orphans(group + workers + [process.pid])
    return output


def _ledger(output):
    line = next(line for line in output if line.startswith("LEDGER"))
    return {key: int(value) for key, value in (part.split("=") for part in line.split()[1:])}


def test_sigterm_on_pool_group_drains_and_exits_zero():
    ledger = _ledger(_run_and_drain(POOL_SCRIPT))
    assert ledger["submitted"] > 0
    assert ledger["served"] > 0
    assert ledger["failed"] == 0
    assert ledger["served"] + ledger["shed"] + ledger["failed"] == ledger["submitted"]


def test_sigterm_after_worker_kill_still_drains_clean():
    ledger = _ledger(_run_and_drain(POOL_SCRIPT, args=["--kill-worker"], marker="SERVED 8"))
    # The injected kill really happened, its requests were re-dispatched,
    # and the ledger still balances after the SIGTERM drain.
    assert ledger["deaths"] >= 1
    assert ledger["redispatched"] >= 1
    assert ledger["failed"] == 0
    assert ledger["served"] + ledger["shed"] + ledger["failed"] == ledger["submitted"]


def test_sigterm_on_single_process_serve_drains_and_exits_zero():
    ledger = _ledger(_run_and_drain(SINGLE_PROCESS_SCRIPT, marker="SERVED 3"))
    assert ledger["served"] > 0
    assert ledger["served"] + ledger["shed"] == ledger["submitted"]
