"""Continuous-batching engine: correctness, isolation, and accounting.

The headline guarantee is byte-equivalence: a request decoded inside a
mixed frontier (different lengths, different ages, rows being admitted
and retired around it) produces bit-identical output to the same request
decoded alone. Everything else — deadline retirement, per-slot NaN
isolation, frontier dumps, shedding — is the fault story around that.
"""

import numpy as np
import pytest

from repro.data.batching import collate
from repro.data.vocabulary import PAD_ID
from repro.decoding.batched_beam import batched_beam_decode
from repro.observability import Telemetry
from repro.serving import (
    BreakerConfig,
    CircuitBreaker,
    ContinuousBatchingEngine,
    EngineConfig,
    FaultPlan,
    GenerationRequest,
    ManualClock,
    pad_batch,
)

from conftest import build_service, build_tiny_model, request_texts

PAD_TO = 12


def build_engine(service=None, **config):
    if service is None:
        service = build_service()
    config.setdefault("pad_to", PAD_TO)
    return ContinuousBatchingEngine(service, EngineConfig(**config))


def run_requests(engine, requests):
    outcomes = []
    for request in requests:
        outcome = engine.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
    outcomes.extend(engine.drain())
    return outcomes


def solo_decode(model, encoded, beam_size, max_length, width=PAD_TO):
    batch = pad_batch(collate([encoded], pad_id=PAD_ID), width)
    return batched_beam_decode(
        model, batch, beam_size=beam_size, max_length=max_length,
        telemetry=Telemetry([]),
    )[0]


# ----------------------------------------------------------------------
# Byte-equivalence: cohabitation must not change a single bit
# ----------------------------------------------------------------------
def test_mixed_frontier_matches_solo_decode_byte_for_byte():
    """Requests of different lengths and beam widths share the frontier;
    each must decode exactly as it would alone at the same padded width."""
    texts = request_texts(8, seed=17)
    requests = [
        GenerationRequest(
            text, request_id=f"r{i}",
            beam_size=2 + (i % 2),          # beams 2 and 3 cohabit
            max_length=4 + 3 * (i % 3),     # lengths 4, 7, 10 cohabit
        )
        for i, text in enumerate(texts)
    ]
    model = build_tiny_model()
    engine = build_engine(build_service(model=model), max_rows=8)
    outcomes = {o.request_id: o for o in run_requests(engine, requests)}
    assert all(o.status == "served" for o in outcomes.values())
    assert engine.stats.solo_fallbacks == 0

    reference = build_service()  # same seed -> same weights
    for request in requests:
        encoded = reference.admit(
            GenerationRequest(request.text, request_id=request.request_id)
        )
        best = solo_decode(
            reference.model, encoded, request.beam_size, request.max_length
        )
        got = outcomes[request.request_id].result
        assert got.log_prob == best.log_prob  # byte-identical, not approximate


def test_repeat_runs_are_byte_identical():
    texts = request_texts(6, seed=23)
    requests = [
        GenerationRequest(t, request_id=f"r{i}", beam_size=2, max_length=6)
        for i, t in enumerate(texts)
    ]

    def run():
        engine = build_engine(max_rows=6)
        return [
            (o.request_id, o.status, o.result.tokens, o.result.log_prob)
            for o in run_requests(engine, requests)
        ]

    assert run() == run()


def test_retired_rows_never_influence_survivors():
    """A short request finishing (and being compacted out) mid-flight must
    not perturb the bytes of the long request still decoding."""
    texts = request_texts(2, seed=29)
    short = GenerationRequest(texts[0], request_id="short", beam_size=2, max_length=2)
    long = GenerationRequest(texts[1], request_id="long", beam_size=2, max_length=10)
    model = build_tiny_model()
    engine = build_engine(build_service(model=model), max_rows=4)
    outcomes = {o.request_id: o for o in run_requests(engine, [short, long])}
    assert engine.stats.peak_rows == 4  # they really cohabited

    reference = build_service()
    encoded = reference.admit(GenerationRequest(long.text, request_id="solo"))
    best = solo_decode(reference.model, encoded, 2, 10)
    assert outcomes["long"].result.log_prob == best.log_prob


# ----------------------------------------------------------------------
# Scheduling: admission, retirement, no head-of-line blocking
# ----------------------------------------------------------------------
def test_new_requests_enter_freed_slots_mid_flight():
    texts = request_texts(4, seed=31)
    engine = build_engine(max_rows=4, admit_per_step=1)
    first = [
        GenerationRequest(t, request_id=f"a{i}", beam_size=2, max_length=3)
        for i, t in enumerate(texts[:2])
    ]
    for request in first:
        assert engine.submit(request) is None
    engine.step()
    assert engine.in_flight == 1  # admit_per_step caps intake
    engine.step()
    assert engine.in_flight == 2

    # Frontier is full: a later request waits queued, then takes the slot
    # freed by the first finisher — without waiting for the *whole* frontier.
    late = GenerationRequest(texts[2], request_id="late", beam_size=2, max_length=3)
    assert engine.submit(late) is None
    outcomes = []
    while not any(o.request_id == "late" for o in outcomes):
        step_outcomes = engine.step()
        outcomes.extend(step_outcomes)
        if any(o.request_id == "late" for o in step_outcomes):
            # late was served while an earlier request could still be in
            # flight — there is no batch boundary to wait behind.
            break
    outcomes.extend(engine.drain())
    assert {o.request_id for o in outcomes} == {"a0", "a1", "late"}
    assert all(o.status == "served" for o in outcomes)


def test_slot_rows_are_disjoint_and_within_budget():
    texts = request_texts(5, seed=37)
    engine = build_engine(max_rows=7)
    for i, text in enumerate(texts):
        engine.submit(
            GenerationRequest(text, request_id=f"r{i}", beam_size=2 + (i % 2),
                              max_length=8)
        )
    done = []
    while engine.queue_depth or engine.in_flight:
        done.extend(engine.step())
        rows = engine.frontier_rows
        assert rows <= engine.config.max_rows
        spans = [
            set(range(base, base + width))
            for _, base, width in engine.slot_table()
        ]
        for i, a in enumerate(spans):
            for b in spans[i + 1:]:
                assert not (a & b)
        if spans:
            assert set().union(*spans) == set(range(rows))
    assert len(done) == len(texts)


def test_conservation_holds_after_every_step():
    texts = request_texts(10, seed=41)
    engine = build_engine(max_rows=4, queue_limit=3)
    requests = [
        GenerationRequest(t, request_id=f"r{i}", beam_size=2, max_length=6)
        for i, t in enumerate(texts)
    ]
    requests.append(GenerationRequest("", request_id="bad"))  # rejected
    outcomes = []
    for request in requests:
        outcome = engine.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
        settled = len(outcomes) + engine.queue_depth + engine.in_flight
        assert engine.stats.submitted == settled
    while engine.queue_depth or engine.in_flight:
        outcomes.extend(engine.step())
        settled = len(outcomes) + engine.queue_depth + engine.in_flight
        assert engine.stats.submitted == settled
    stats = engine.service.stats
    assert stats.finished == len(outcomes) == engine.stats.submitted
    assert stats.served + stats.rejected + stats.shed + stats.failed == stats.finished


def test_each_request_resolves_exactly_once():
    texts = request_texts(12, seed=43)
    engine = build_engine(max_rows=4, queue_limit=4)
    requests = [
        GenerationRequest(t, request_id=f"r{i}", beam_size=2, max_length=5)
        for i, t in enumerate(texts)
    ]
    outcomes = run_requests(engine, requests)
    ids = [o.request_id for o in outcomes]
    assert sorted(ids) == sorted(r.request_id for r in requests)
    assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# Shedding and gating
# ----------------------------------------------------------------------
def test_full_queue_sheds_typed_outcomes():
    texts = request_texts(6, seed=47)
    engine = build_engine(max_rows=2, queue_limit=2)
    outcomes = []
    for i, text in enumerate(texts):
        outcome = engine.submit(
            GenerationRequest(text, request_id=f"r{i}", beam_size=2, max_length=4)
        )
        if outcome is not None:
            outcomes.append(outcome)
    shed = [o for o in outcomes if o.status == "shed"]
    assert len(shed) == len(texts) - engine.config.queue_limit
    assert all(o.reason == "queue_full" for o in shed)
    assert engine.service.stats.shed_by_reason["queue_full"] == len(shed)
    served = engine.drain()
    assert all(o.status == "served" for o in served)
    assert len(served) + len(shed) == len(texts)


def test_open_breaker_sheds_at_admission():
    clock = ManualClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=0.5, window=4, min_samples=1,
                      cooldown_seconds=60.0),
        clock=clock,
    )
    breaker.record_failure()
    assert breaker.state == "open"
    engine = build_engine(build_service(breaker=breaker, clock=clock))
    outcomes = run_requests(
        engine,
        [GenerationRequest(request_texts(1, seed=3)[0], request_id="r0",
                           beam_size=2, max_length=4)],
    )
    assert [o.status for o in outcomes] == ["shed"]
    assert outcomes[0].reason == "breaker_open"


def test_rejected_requests_never_enter_the_queue():
    engine = build_engine()
    outcome = engine.submit(GenerationRequest("", request_id="bad"))
    assert outcome.status == "rejected"
    assert engine.queue_depth == 0


# ----------------------------------------------------------------------
# Fallback paths
# ----------------------------------------------------------------------
def test_oversize_requests_fall_back_to_solo_and_still_serve():
    engine = build_engine(max_rows=4)
    wide = GenerationRequest(
        request_texts(1, seed=3)[0], request_id="wide", beam_size=6, max_length=4
    )
    outcomes = run_requests(engine, [wide])
    assert [o.status for o in outcomes] == ["served"]
    assert engine.stats.oversize == 1
    assert engine.stats.solo_fallbacks == 1
    assert engine.stats.frontier_admissions == 0


def test_long_sources_fall_back_to_solo():
    engine = build_engine(pad_to=3)
    request = GenerationRequest(
        " ".join(request_texts(1, seed=3)[0].split()[:1] * 6),
        request_id="long", beam_size=2, max_length=4,
    )
    outcomes = run_requests(engine, [request])
    assert [o.status for o in outcomes] == ["served"]
    assert engine.stats.oversize == 1


def test_expired_deadline_retires_to_ladder_floor():
    clock = ManualClock()
    service = build_service(clock=clock)
    engine = build_engine(service)
    request = GenerationRequest(
        request_texts(1, seed=3)[0], request_id="r0", beam_size=2, max_length=6,
        deadline_seconds=1.0,
    )
    assert engine.submit(request) is None
    engine.step()
    assert engine.in_flight == 1
    clock.sleep(5.0)  # budget gone mid-decode
    outcomes = engine.drain()
    assert [o.status for o in outcomes] == ["served"]
    assert outcomes[0].result.rung == "greedy_truncated"  # the blind floor
    assert engine.stats.expired == 1
    assert engine.stats.solo_fallbacks == 1


def test_expiry_while_queued_routes_to_floor_without_occupying_rows():
    clock = ManualClock()
    service = build_service(clock=clock)
    engine = build_engine(service, max_rows=2)
    blocker = GenerationRequest(
        request_texts(2, seed=3)[0], request_id="blocker", beam_size=2, max_length=8
    )
    urgent = GenerationRequest(
        request_texts(2, seed=3)[1], request_id="urgent", beam_size=2, max_length=8,
        deadline_seconds=0.5,
    )
    engine.submit(blocker)
    engine.step()
    engine.submit(urgent)   # frontier full: waits queued
    clock.sleep(1.0)        # queue wait consumes the budget
    outcomes = engine.drain()
    by_id = {o.request_id: o for o in outcomes}
    assert by_id["urgent"].status == "served"
    assert by_id["urgent"].result.rung == "greedy_truncated"
    assert by_id["blocker"].result.rung == "beam"


def test_nan_poison_is_isolated_to_its_slot():
    """An injected NaN poisons frontier row 0 — the first slot's rows.
    Only that request falls back; cohabitants keep their frontier decode."""
    texts = request_texts(3, seed=53)
    service = build_service(
        fault_plan=FaultPlan(seed=0, nan_rate=1.0, per_request=True,
                             fault_horizon=2),
    )
    engine = build_engine(service, max_rows=6)
    requests = [
        GenerationRequest(t, request_id=f"r{i}", beam_size=2, max_length=6)
        for i, t in enumerate(texts)
    ]
    outcomes = {o.request_id: o for o in run_requests(engine, requests)}
    assert all(o.status == "served" for o in outcomes.values())
    assert engine.stats.poisoned >= 1
    # The poisoned request went solo; at least one cohabitant finished in
    # the frontier (the fault never touched its rows).
    assert engine.stats.served_in_frontier >= 1
    assert engine.stats.frontier_fallbacks == 0


def test_raised_step_fault_dumps_frontier_to_solo_path():
    from repro.serving import InjectedFault

    class ExplodeOnce:
        """Raise on the first shared step only; the solo retries succeed."""

        def __init__(self, model):
            self._model = model
            self._armed = True

        def __getattr__(self, name):
            return getattr(self._model, name)

        def step_log_probs(self, *args, **kwargs):
            if self._armed:
                self._armed = False
                raise InjectedFault("step", 1)
            return self._model.step_log_probs(*args, **kwargs)

    texts = request_texts(2, seed=59)
    service = build_service()
    service.model = ExplodeOnce(service.model)
    engine = build_engine(service, max_rows=4)
    requests = [
        GenerationRequest(t, request_id=f"r{i}", beam_size=2, max_length=4)
        for i, t in enumerate(texts)
    ]
    outcomes = run_requests(engine, requests)
    assert {o.status for o in outcomes} == {"served"}  # ladder absorbed it
    assert engine.stats.frontier_fallbacks == 1
    assert engine.stats.solo_fallbacks == 2  # the whole frontier went solo
    assert engine.in_flight == 0


def test_drain_terminates_under_sustained_faults():
    texts = request_texts(8, seed=61)
    service = build_service(
        fault_plan=FaultPlan(seed=2, nan_rate=0.3, error_rate=0.3,
                             per_request=True, fault_horizon=4),
    )
    engine = build_engine(service, max_rows=4, queue_limit=8)
    requests = [
        GenerationRequest(t, request_id=f"r{i}", beam_size=2, max_length=5)
        for i, t in enumerate(texts)
    ]
    outcomes = run_requests(engine, requests)
    assert len(outcomes) == len(requests)
    assert engine.queue_depth == 0 and engine.in_flight == 0


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_rows": 0},
        {"queue_limit": 0},
        {"admit_per_step": 0},
        {"pad_to": 0},
    ],
)
def test_engine_config_validates(kwargs):
    with pytest.raises(ValueError):
        EngineConfig(**kwargs)


def test_engine_counts_queue_wait_telemetry():
    telemetry_events = []

    class Recorder(Telemetry):
        def observe(self, name, value):
            telemetry_events.append((name, value))
            return super().observe(name, value)

    service = build_service(telemetry=Recorder([]))
    engine = build_engine(service)
    engine.submit(
        GenerationRequest(request_texts(1, seed=3)[0], request_id="r0",
                          beam_size=2, max_length=4)
    )
    engine.drain()
    assert any(name == "serving.queue.wait_seconds" for name, _ in telemetry_events)
