"""Request admission: sanitization, rejection reasons, encoded output."""

import pytest

from repro.data.dataset import EncodedExample
from repro.serving import AdmissionPolicy, GenerationRequest, RejectedRequest, RequestValidator

from conftest import DECODER, ENCODER


def make_validator(**policy_overrides):
    policy = AdmissionPolicy(**policy_overrides) if policy_overrides else None
    return RequestValidator(ENCODER, DECODER, policy)


def admit_reason(validator, request) -> str:
    with pytest.raises(RejectedRequest) as excinfo:
        validator.admit(request)
    return excinfo.value.reason


def test_admits_and_encodes_in_vocab_text():
    validator = make_validator()
    encoded = validator.admit(GenerationRequest("zorvex was born in karlin ."))
    assert isinstance(encoded, EncodedExample)
    assert len(encoded.src_ids) > 0


@pytest.mark.parametrize("text", ["", "   ", "\t\n"])
def test_rejects_empty_and_whitespace(text):
    validator = make_validator()
    assert admit_reason(validator, GenerationRequest(text)) == "empty"


def test_rejects_non_string_text():
    validator = make_validator()
    assert admit_reason(validator, GenerationRequest(12345)) == "invalid_type"


def test_rejects_bad_beam_size_and_length():
    validator = make_validator()
    assert (
        admit_reason(validator, GenerationRequest("zorvex", beam_size=0)) == "bad_parameters"
    )
    assert (
        admit_reason(validator, GenerationRequest("zorvex", beam_size=99)) == "bad_parameters"
    )
    assert (
        admit_reason(validator, GenerationRequest("zorvex", max_length=0)) == "bad_parameters"
    )
    assert (
        admit_reason(validator, GenerationRequest("zorvex", deadline_seconds=-1.0))
        == "bad_parameters"
    )


def test_rejects_over_long_source():
    validator = make_validator(max_source_tokens=5)
    text = " ".join(["zorvex"] * 6)
    assert admit_reason(validator, GenerationRequest(text)) == "too_long"


def test_truncate_to_coerces_instead_of_rejecting():
    validator = make_validator(max_source_tokens=5, truncate_to=4)
    text = " ".join(["zorvex"] * 6)
    encoded = validator.admit(GenerationRequest(text))
    assert len(encoded.src_ids) == 4


def test_rejects_unk_dense_source():
    validator = make_validator(max_unk_density=0.5)
    assert (
        admit_reason(validator, GenerationRequest("qqq www eee rrr"))
        == "unk_density"
    )


def test_non_ascii_in_vocab_oov_still_admitted():
    # Unicode words tokenize as words (not dropped); moderate OOV admits.
    validator = make_validator()
    encoded = validator.admit(GenerationRequest("zorvex was born in Müncheim ."))
    assert len(encoded.src_ids) > 0


def test_rejection_counts_by_reason():
    validator = make_validator()
    for _ in range(2):
        admit_reason(validator, GenerationRequest(""))
    admit_reason(validator, GenerationRequest("x", beam_size=0))
    assert validator.rejections.by_reason == {"empty": 2, "bad_parameters": 1}
