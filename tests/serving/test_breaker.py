"""Circuit breaker state machine and retry/backoff policy."""

import numpy as np
import pytest

from repro.serving import BreakerOpen, BreakerConfig, CircuitBreaker, ManualClock, RetryPolicy


def make_breaker(**overrides):
    transitions = []
    config = BreakerConfig(
        window=overrides.pop("window", 10),
        failure_threshold=overrides.pop("failure_threshold", 0.5),
        min_samples=overrides.pop("min_samples", 4),
        cooldown_seconds=overrides.pop("cooldown_seconds", 5.0),
        half_open_probes=overrides.pop("half_open_probes", 2),
    )
    clock = ManualClock()
    breaker = CircuitBreaker(
        config, clock=clock, on_transition=lambda old, new: transitions.append((old, new))
    )
    return breaker, clock, transitions


def test_starts_closed_and_admits():
    breaker, _, _ = make_breaker()
    assert breaker.state == "closed"
    breaker.admit()  # no raise


def test_stays_closed_below_min_samples():
    breaker, _, _ = make_breaker(min_samples=4)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == "closed"


def test_opens_at_failure_threshold():
    breaker, _, transitions = make_breaker(min_samples=4, failure_threshold=0.5)
    breaker.record_success()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()  # 2/4 = 50% >= threshold
    assert breaker.state == "open"
    assert transitions == [("closed", "open")]


def test_open_rejects_with_retry_after():
    breaker, clock, _ = make_breaker(cooldown_seconds=5.0)
    for _ in range(4):
        breaker.record_failure()
    clock.advance(1.0)
    with pytest.raises(BreakerOpen) as excinfo:
        breaker.admit()
    assert excinfo.value.retry_after_seconds == pytest.approx(4.0)


def test_half_open_after_cooldown_then_closes_on_probes():
    breaker, clock, transitions = make_breaker(cooldown_seconds=5.0, half_open_probes=2)
    for _ in range(4):
        breaker.record_failure()
    clock.advance(5.0)
    breaker.admit()  # cooldown elapsed: probe admitted
    assert breaker.state == "half_open"
    breaker.record_success()
    assert breaker.state == "half_open"  # one probe is not enough
    breaker.record_success()
    assert breaker.state == "closed"
    assert transitions == [("closed", "open"), ("open", "half_open"), ("half_open", "closed")]
    # Closing clears the window: old failures cannot re-open it instantly.
    assert breaker.failure_rate() == 0.0


def test_half_open_reopens_on_probe_failure():
    breaker, clock, transitions = make_breaker(cooldown_seconds=5.0)
    for _ in range(4):
        breaker.record_failure()
    clock.advance(5.0)
    breaker.admit()
    breaker.record_failure()
    assert breaker.state == "open"
    assert transitions[-1] == ("half_open", "open")
    # The re-open restarts the cooldown from now.
    with pytest.raises(BreakerOpen):
        breaker.admit()


def test_sliding_window_forgets_old_outcomes():
    breaker, _, _ = make_breaker(window=4, min_samples=4, failure_threshold=0.5)
    breaker.record_failure()
    breaker.record_failure()
    for _ in range(4):  # pushes the failures out of the window
        breaker.record_success()
    assert breaker.failure_rate() == 0.0
    breaker.record_failure()
    breaker.record_failure()  # only 2/4 in window: opens (threshold met)
    assert breaker.state == "open"


def test_retry_delay_is_exponential_without_jitter():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0)
    rng = np.random.default_rng(0)
    assert policy.delay(1, rng) == pytest.approx(0.1)
    assert policy.delay(2, rng) == pytest.approx(0.2)
    assert policy.delay(3, rng) == pytest.approx(0.4)
    assert policy.delay(10, rng) == pytest.approx(1.0)  # capped


def test_retry_delay_jitter_is_deterministic_under_seed():
    policy = RetryPolicy(base_delay=0.1, jitter=0.5)
    first = [policy.delay(n, np.random.default_rng(7)) for n in (1, 2, 3)]
    second = [policy.delay(n, np.random.default_rng(7)) for n in (1, 2, 3)]
    assert first == second
    raw = [0.1, 0.2, 0.4]
    for delay, base in zip(first, raw):
        assert base <= delay <= base * 1.5


def test_retry_delay_rejects_zero_attempt():
    with pytest.raises(ValueError):
        RetryPolicy().delay(0, np.random.default_rng(0))
