"""The multi-process serving pool: parity, chaos, exactly-once, hot reload.

Every test pins the pool against the single-process
:class:`ContinuousBatchingEngine` on the same request set: the fleet must
be a pure scale-out — byte-identical results no matter which worker
serves, how many die on the way, or how the survivors re-dispatch.
"""

import os
import signal

import pytest

from repro.observability import Telemetry
from repro.serving import (
    ContinuousBatchingEngine,
    DrainGuard,
    GenerationRequest,
    InferenceService,
    PoolConfig,
    PoolFaultPlan,
    ServingPool,
    WeightReloadError,
)
from repro.serving.deadline import Clock
from repro.training.checkpoint import save_checkpoint

from conftest import DECODER, ENCODER, build_service, build_tiny_model, request_texts


def make_requests(count, prefix="r", seed=99):
    return [
        GenerationRequest(text, request_id=f"{prefix}{index:03d}")
        for index, text in enumerate(request_texts(count, seed=seed))
    ]


def serve_all(frontend, requests):
    outcomes = []
    for request in requests:
        outcome = frontend.submit(request)
        if outcome is not None:
            outcomes.append(outcome)
    outcomes.extend(frontend.drain())
    return outcomes


def result_rows(outcomes):
    """The byte-comparison surface: everything except wall-clock latency."""
    rows = []
    for outcome in sorted(outcomes, key=lambda o: o.request_id):
        result = outcome.result
        rows.append(
            (
                outcome.request_id,
                outcome.status,
                outcome.reason,
                result.tokens if result else None,
                result.rung if result else None,
                round(result.log_prob, 12) if result else None,
            )
        )
    return rows


def single_process_rows(requests, seed=0):
    service = InferenceService(
        build_tiny_model(seed=seed), ENCODER, DECODER,
        clock=Clock(), telemetry=Telemetry([]),
    )
    return result_rows(serve_all(ContinuousBatchingEngine(service), requests))


def make_pool(**kwargs):
    kwargs.setdefault("telemetry", Telemetry([]))
    kwargs.setdefault(
        "config",
        PoolConfig(workers=2, worker_timeout=5.0, heartbeat_interval=0.1,
                   poll_interval=0.01, restart_backoff=0.05),
    )
    model = kwargs.pop("model", None) or build_tiny_model()
    return ServingPool(model, ENCODER, DECODER, **kwargs)


def assert_exactly_once(pool, submitted):
    stats = pool.stats
    assert stats.submitted == submitted
    assert stats.finished == submitted
    assert stats.served + stats.rejected + stats.shed + stats.failed == submitted


# ----------------------------------------------------------------------
# Parity and exactly-once
# ----------------------------------------------------------------------
def test_pool_matches_single_process_serving():
    requests = make_requests(16)
    pool = make_pool()
    try:
        rows = result_rows(serve_all(pool, requests))
    finally:
        pool.shutdown()
    assert rows == single_process_rows(requests)
    assert_exactly_once(pool, 16)
    assert pool.stats.duplicate_results == 0
    # Both workers actually carried traffic.
    assert len(pool.stats.served_by_worker) == 2


def test_kill_mid_decode_redispatches_exactly_once():
    requests = make_requests(20)
    pool = make_pool(fault_plan=PoolFaultPlan(kill_on_serve={0: 3}))
    try:
        rows = result_rows(serve_all(pool, requests))
    finally:
        pool.shutdown()
    assert rows == single_process_rows(requests)
    assert_exactly_once(pool, 20)
    assert pool.stats.worker_deaths >= 1
    assert pool.stats.redispatched >= 1
    assert pool.stats.worker_restarts >= 1


def test_stalled_worker_is_detected_and_requests_redispatched():
    requests = make_requests(12)
    pool = make_pool(
        fault_plan=PoolFaultPlan(stall_on_serve={1: 2}),
        config=PoolConfig(workers=2, worker_timeout=0.6, heartbeat_interval=0.1,
                          poll_interval=0.01, restart_backoff=0.05),
    )
    try:
        rows = result_rows(serve_all(pool, requests))
    finally:
        pool.shutdown()
    assert rows == single_process_rows(requests)
    assert_exactly_once(pool, 12)
    assert pool.stats.worker_deaths >= 1


def test_retired_pool_degrades_to_inline_decode():
    requests = make_requests(8)
    pool = make_pool(
        fault_plan=PoolFaultPlan(kill_on_serve={0: 1}),
        config=PoolConfig(workers=1, max_worker_restarts=0, worker_timeout=5.0,
                          heartbeat_interval=0.1, poll_interval=0.01),
    )
    try:
        rows = result_rows(serve_all(pool, requests))
    finally:
        pool.shutdown()
    # Degrade, don't refuse: with the whole fleet retired, the coordinator
    # serves the backlog inline — still byte-identical.
    assert rows == single_process_rows(requests)
    assert_exactly_once(pool, 8)
    assert pool.stats.inline_served > 0
    assert pool.stats.worker_restarts == 0


def test_rejections_and_queue_shedding_stay_in_the_ledger():
    pool = make_pool(
        config=PoolConfig(workers=1, queue_limit=2, max_in_flight_per_worker=1,
                          heartbeat_interval=0.1, poll_interval=0.01),
    )
    try:
        outcomes = []
        requests = [GenerationRequest("", request_id="bad-0")] + make_requests(8)
        for request in requests:
            outcome = pool.submit(request)
            if outcome is not None:
                outcomes.append(outcome)
        outcomes.extend(pool.drain())
    finally:
        pool.shutdown()
    by_status = {}
    for outcome in outcomes:
        by_status.setdefault(outcome.status, []).append(outcome)
    assert [o.request_id for o in by_status["rejected"]] == ["bad-0"]
    assert by_status["rejected"][0].reason == "empty"
    assert pool.stats.shed > 0  # queue_limit=2 forced shedding
    assert pool.stats.shed_by_reason.get("queue_full") == pool.stats.shed
    assert_exactly_once(pool, 9)
    assert len(outcomes) == 9


def test_begin_drain_sheds_new_submissions_and_finishes_in_flight():
    requests = make_requests(10)
    pool = make_pool()
    try:
        outcomes = []
        for request in requests[:6]:
            outcome = pool.submit(request)
            if outcome is not None:
                outcomes.append(outcome)
        pool.begin_drain()
        for request in requests[6:]:
            outcome = pool.submit(request)
            assert outcome is not None and outcome.status == "shed"
            assert outcome.reason == "draining"
            outcomes.append(outcome)
        outcomes.extend(pool.drain())
    finally:
        pool.shutdown()
    served = [o for o in outcomes if o.status == "served"]
    assert len(served) == 6  # everything admitted before the drain resolved
    assert_exactly_once(pool, 10)
    assert pool.stats.shed_by_reason == {"draining": 4}


# ----------------------------------------------------------------------
# The engine-side idempotency guard (duplicate completions)
# ----------------------------------------------------------------------
def test_engine_duplicate_completion_guard():
    service = build_service()
    engine = ContinuousBatchingEngine(service)
    request = GenerationRequest("zorvex was born in karlin .", request_id="dup-e")
    assert engine.submit(request) is None
    first = engine.drain()
    # Re-dispatch seam: the same id decodes again (as after a worker death
    # whose original result later surfaces).
    assert engine.submit(request) is None
    second = engine.drain()
    assert [o.result.tokens for o in first] == [o.result.tokens for o in second]
    assert engine.stats.served_in_frontier == 1
    assert engine.stats.duplicate_results == 1
    assert service.stats.served == 1
    assert service.stats.duplicate_results == 1


# ----------------------------------------------------------------------
# Hot reload
# ----------------------------------------------------------------------
def test_hot_reload_is_atomic_and_fingerprint_attributed(tmp_path):
    checkpoint = tmp_path / "v2"
    save_checkpoint(str(checkpoint / "model"), build_tiny_model(seed=7), {"v": 2})

    pool = make_pool()
    try:
        before = make_requests(10, prefix="a")
        rows_before = result_rows(serve_all(pool, before))
        old_fp = pool.fingerprint

        new_fp = pool.reload_weights(str(checkpoint))
        assert new_fp != old_fp
        assert pool.stats.reloads == 1
        assert pool.fingerprint == new_fp

        after = make_requests(10, prefix="b")
        outcomes_after = serve_all(pool, after)
        rows_after = result_rows(outcomes_after)
        # Every response attributes to exactly one weight generation.
        assert {o.fingerprint for o in outcomes_after} == {new_fp}
        assert all(
            pool.result_fingerprint(o.request_id) == new_fp for o in outcomes_after
        )
    finally:
        pool.shutdown()
    assert rows_before == single_process_rows(before, seed=0)
    assert rows_after == single_process_rows(after, seed=7)
    assert_exactly_once(pool, 20)


def test_reload_failure_is_typed_and_old_weights_keep_serving(tmp_path):
    pool = make_pool()
    try:
        old_fp = pool.fingerprint
        with pytest.raises(WeightReloadError):
            pool.reload_weights(str(tmp_path / "missing-checkpoint"))
        assert pool.fingerprint == old_fp
        assert pool.stats.reloads == 0
        requests = make_requests(6)
        rows = result_rows(serve_all(pool, requests))
    finally:
        pool.shutdown()
    assert rows == single_process_rows(requests)  # still the old weights
    assert_exactly_once(pool, 6)


def test_reload_refreshes_worker_encoder_caches(tmp_path):
    checkpoint = tmp_path / "v2"
    save_checkpoint(str(checkpoint / "model"), build_tiny_model(seed=7), {"v": 2})

    pool = make_pool(
        cache_size=32,
        config=PoolConfig(workers=1, heartbeat_interval=0.1, poll_interval=0.01),
    )
    try:
        texts = request_texts(6)
        warm = [GenerationRequest(t, request_id=f"w{i}") for i, t in enumerate(texts)]
        serve_all(pool, warm)  # fills the worker's cache under the old weights
        pool.reload_weights(str(checkpoint))
        again = [GenerationRequest(t, request_id=f"x{i}") for i, t in enumerate(texts)]
        rows = result_rows(serve_all(pool, again))
    finally:
        pool.shutdown()
    # A stale hit would resurrect pre-reload encoder states; instead the
    # post-reload answers match a cold single-process run on the new weights.
    assert rows == single_process_rows(again, seed=7)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_shutdown_is_idempotent_and_leaves_no_workers():
    pool = make_pool()
    serve_all(pool, make_requests(4))
    pids = pool.live_worker_pids()
    assert len(pids) == 2
    pool.shutdown()
    pool.shutdown()  # idempotent
    assert pool.live_worker_pids() == []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        pytest.fail(f"worker {pid} survived shutdown")


def test_drain_guard_latches_signals_without_dying():
    guard = DrainGuard(signals=(signal.SIGUSR1,))
    guard.install()
    try:
        assert not guard.draining
        os.kill(os.getpid(), signal.SIGUSR1)
        assert guard.draining
        assert guard.signum == signal.SIGUSR1
        os.kill(os.getpid(), signal.SIGUSR1)  # second signal: still latched
        assert guard.draining
    finally:
        guard.restore()


def test_pool_config_validation():
    with pytest.raises(ValueError):
        PoolConfig(workers=0)
    with pytest.raises(ValueError):
        PoolConfig(heartbeat_interval=2.0, worker_timeout=1.0)
    with pytest.raises(ValueError):
        PoolConfig(max_in_flight_per_worker=0)
    with pytest.raises(ValueError):
        PoolConfig(start_method="not-a-method")
