"""Encoder-state cache: byte-identity, LRU mechanics, weight-change guard.

The cache's one contract is that it is *invisible* in the outputs: a hit
must decode to bit-identical results as a miss, for every model family,
and a weight change must move the key space so stale states can never be
served against new parameters.
"""

import numpy as np
import pytest

from repro.data.batching import collate
from repro.data.vocabulary import PAD_ID
from repro.models import ModelConfig, build_model
from repro.observability import Telemetry
from repro.serving import (
    CachedEncoderModel,
    EncoderStateCache,
    GenerationRequest,
    fingerprint_model,
    pad_batch,
)

from conftest import DECODER, ENCODER, build_service, request_texts

FAMILIES = ["acnn", "seq2seq"]


def build_family(family: str, seed: int = 0):
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=seed)
    return build_model(family, config, len(ENCODER), len(DECODER))


def quiet_cache(capacity: int = 8) -> EncoderStateCache:
    return EncoderStateCache(capacity=capacity, telemetry=Telemetry([]))


def serve_rows(service, texts, beam_size=2, max_length=6):
    rows = []
    for index, text in enumerate(texts):
        result = service.handle(
            GenerationRequest(text, request_id=f"r{index}", beam_size=beam_size,
                              max_length=max_length)
        )
        rows.append((result.tokens, result.log_prob, result.rung))
    return rows


# ----------------------------------------------------------------------
# Byte identity: a hit must be indistinguishable from a miss
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", FAMILIES)
def test_cache_hit_outputs_byte_identical_to_miss(family):
    texts = request_texts(4, seed=11)
    model = build_family(family)

    cache = quiet_cache()
    cached_service = build_service(model=model, encoder_cache=cache)
    cold = serve_rows(cached_service, texts)   # all misses
    warm = serve_rows(cached_service, texts)   # all hits
    assert cache.stats.misses == len(texts)
    assert cache.stats.hits >= len(texts)
    # byte-identical, not approximate
    assert cold == warm

    # ... and identical to a cache-free service over the same weights.
    plain_service = build_service(model=model)
    assert serve_rows(plain_service, texts) == cold


@pytest.mark.parametrize("family", FAMILIES)
def test_cached_context_arrays_match_fresh_encode(family):
    model = build_family(family)
    cache = quiet_cache()
    proxy = CachedEncoderModel(model, cache)
    service = build_service(model=model)
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    batch = pad_batch(collate([encoded], pad_id=PAD_ID), 12)

    missed = proxy.encode(batch)    # miss: stores
    hit = proxy.encode(batch)       # hit: returns stored object
    fresh = model.encode(batch)     # bypasses the cache entirely
    assert hit is missed
    np.testing.assert_array_equal(hit.encoder_states.data, fresh.encoder_states.data)
    np.testing.assert_array_equal(hit.src_ext, fresh.src_ext)
    assert hit.max_oov == fresh.max_oov
    for (h1, c1), (h2, c2) in zip(hit.initial_states, fresh.initial_states):
        np.testing.assert_array_equal(h1.data, h2.data)
        np.testing.assert_array_equal(c1.data, c2.data)


def test_cached_contexts_are_frozen():
    model = build_family("acnn")
    cache = quiet_cache()
    proxy = CachedEncoderModel(model, cache)
    service = build_service(model=model)
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    context = proxy.encode(collate([encoded], pad_id=PAD_ID))
    with pytest.raises(ValueError):
        context.encoder_states.data[...] = 0.0
    with pytest.raises(ValueError):
        context.src_ext[...] = 0


def test_multi_example_batches_bypass_the_cache():
    model = build_family("acnn")
    cache = quiet_cache()
    proxy = CachedEncoderModel(model, cache)
    service = build_service(model=model)
    encoded = [
        service.admit(GenerationRequest(text, request_id=f"b{i}"))
        for i, text in enumerate(request_texts(2, seed=5))
    ]
    proxy.encode(collate(encoded, pad_id=PAD_ID))
    assert cache.stats.lookups == 0
    assert len(cache) == 0


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
def test_capacity_one_cache_evicts_and_still_serves_identically():
    texts = request_texts(3, seed=21)
    model = build_family("acnn")
    cache = quiet_cache(capacity=1)
    service = build_service(model=model, encoder_cache=cache)

    # Round-robin through 3 distinct sources: every lookup after the first
    # insert evicts, so nothing ever hits — and nothing ever changes bytes.
    first = serve_rows(service, texts * 2)
    assert cache.stats.hits == 0
    assert cache.stats.evictions == len(texts) * 2 - 1
    assert len(cache) == 1

    plain = build_service(model=model)
    assert serve_rows(plain, texts * 2) == first


def test_lru_keeps_recently_used_entries():
    texts = request_texts(3, seed=31)
    model = build_family("acnn")
    cache = quiet_cache(capacity=2)
    service = build_service(model=model, encoder_cache=cache)
    a, b, c = texts

    serve_rows(service, [a, b])     # cache: [a, b]
    serve_rows(service, [a])        # hit a -> LRU order [b, a]
    assert cache.stats.hits == 1
    serve_rows(service, [c])        # evicts b
    assert cache.stats.evictions == 1
    serve_rows(service, [a, c])     # both still resident
    assert cache.stats.hits == 3
    serve_rows(service, [b])        # b was the evictee: a miss
    assert cache.stats.misses == 4


def test_cache_counters_flow_into_report():
    cache = quiet_cache(capacity=2)
    service = build_service(encoder_cache=cache)
    serve_rows(service, request_texts(2, seed=41) * 2)
    payload = service.report()["encoder_cache"]
    assert payload["hits"] == 2
    assert payload["misses"] == 2
    assert payload["size"] == 2
    assert payload["capacity"] == 2


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        EncoderStateCache(capacity=0)


# ----------------------------------------------------------------------
# Weight-change invalidation (stale-state poisoning guard)
# ----------------------------------------------------------------------
def test_cache_key_changes_when_weights_change():
    """The guard this PR pins: without the fingerprint in the key, a warm
    cache would keep serving encoder states computed under *old* weights
    after a reload — byte-poisoning every decode. This test fails against
    a key built from token ids alone."""
    model = build_family("acnn", seed=0)
    cache = quiet_cache()
    cache.bind(model)
    service = build_service(model=model)
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    batch = collate([encoded], pad_id=PAD_ID)
    key_before = cache.key_for(batch)

    # Perturb one weight in place — same architecture, same tokens.
    name, param = next(iter(model.named_parameters()))
    param.data[...] = param.data + 1e-3
    cache.refresh(model)
    assert cache.key_for(batch) != key_before


def test_refresh_on_drift_drops_every_entry():
    model = build_family("acnn")
    cache = quiet_cache()
    service = build_service(model=model, encoder_cache=cache)
    serve_rows(service, request_texts(3, seed=51))
    assert len(cache) == 3

    name, param = next(iter(model.named_parameters()))
    param.data[...] = param.data + 1e-3
    assert cache.refresh(model) is True
    assert len(cache) == 0
    assert cache.stats.invalidations == 3
    # Unchanged weights: refresh is a no-op.
    assert cache.refresh(model) is False
    assert cache.stats.invalidations == 3


def test_fingerprint_sensitivity():
    base = fingerprint_model(build_family("acnn", seed=0))
    assert fingerprint_model(build_family("acnn", seed=0)) == base
    assert fingerprint_model(build_family("acnn", seed=1)) != base
    assert fingerprint_model(build_family("seq2seq", seed=0)) != base


def test_key_distinguishes_copy_visible_structure():
    """Two sources with identical encoder ids must not collide when their
    extended (copy) ids differ — the copy path sees different sources."""
    model = build_family("acnn")
    cache = quiet_cache()
    cache.bind(model)
    service = build_service(model=model)
    text = request_texts(1, seed=3)[0]
    encoded = service.admit(GenerationRequest(text, request_id="x"))
    batch_a = collate([encoded], pad_id=PAD_ID)

    from dataclasses import replace

    ext = list(encoded.src_ext_ids)
    ext[0] = ext[0] + 1
    batch_b = collate([replace(encoded, src_ext_ids=tuple(ext))], pad_id=PAD_ID)
    assert cache.key_for(batch_a) != cache.key_for(batch_b)


def test_key_includes_padded_width():
    model = build_family("acnn")
    cache = quiet_cache()
    cache.bind(model)
    service = build_service(model=model)
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    batch = collate([encoded], pad_id=PAD_ID)
    wide = pad_batch(batch, batch.src.shape[1] + 4)
    assert cache.key_for(batch) != cache.key_for(wide)


# ----------------------------------------------------------------------
# pad_batch
# ----------------------------------------------------------------------
def test_pad_batch_is_identity_at_current_width():
    service = build_service()
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    batch = collate([encoded], pad_id=PAD_ID)
    assert pad_batch(batch, batch.src.shape[1]) is batch


def test_pad_batch_refuses_to_shrink():
    service = build_service()
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    batch = collate([encoded], pad_id=PAD_ID)
    with pytest.raises(ValueError):
        pad_batch(batch, batch.src.shape[1] - 1)


def test_pad_batch_pads_with_inert_values():
    service = build_service()
    encoded = service.admit(GenerationRequest(request_texts(1, seed=3)[0], request_id="x"))
    batch = collate([encoded], pad_id=PAD_ID)
    width = batch.src.shape[1] + 3
    padded = pad_batch(batch, width)
    assert padded.src.shape[1] == width
    assert (padded.src[:, -3:] == PAD_ID).all()
    assert padded.src_pad_mask[:, -3:].all()
    assert (padded.answer_mask[:, -3:] == 0.0).all()
    assert (padded.copy_match[:, :, -3:] == 0.0).all()
