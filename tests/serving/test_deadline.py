"""Deadlines, manual clocks, and cooperative expiry inside the real engines."""

import pytest

from repro.data import collate
from repro.decoding import batched_beam_decode, greedy_decode
from repro.serving import (
    Deadline,
    DeadlineExceeded,
    FaultInjectingModel,
    FaultInjector,
    FaultPlan,
    ManualClock,
)

from conftest import DECODER, ENCODER, EXAMPLES, build_tiny_model

from repro.data import QGDataset


def _batch():
    dataset = QGDataset(EXAMPLES[:2], ENCODER, DECODER)
    return collate(list(dataset), pad_id=0)


def test_deadline_remaining_and_expiry():
    clock = ManualClock()
    deadline = Deadline(2.0, clock)
    assert deadline.remaining() == pytest.approx(2.0)
    assert not deadline.expired()
    clock.advance(2.5)
    assert deadline.expired()
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check()
    assert excinfo.value.budget_seconds == pytest.approx(2.0)
    assert excinfo.value.overrun_seconds == pytest.approx(0.5)


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        Deadline(0.0, ManualClock())


def test_manual_clock_rejects_backwards_advance():
    clock = ManualClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def _slow_model(clock, slow_seconds=0.2):
    """Every encode and decode step stalls the shared clock."""
    injector = FaultInjector(
        FaultPlan(seed=0, slow_rate=1.0, slow_seconds=slow_seconds), clock=clock
    )
    return FaultInjectingModel(build_tiny_model(), injector)


def test_deadline_expires_mid_beam():
    clock = ManualClock()
    model = _slow_model(clock)
    # Encode stalls 0.2s, each step stalls 0.2s: the budget dies after the
    # first step and the per-step check raises from inside the beam loop.
    deadline = Deadline(0.3, clock)
    with pytest.raises(DeadlineExceeded):
        batched_beam_decode(model, _batch(), beam_size=2, max_length=10, deadline=deadline)
    assert clock.now() >= 0.3


def test_deadline_expires_mid_greedy():
    clock = ManualClock()
    model = _slow_model(clock)
    deadline = Deadline(0.3, clock)
    with pytest.raises(DeadlineExceeded):
        greedy_decode(model, _batch(), max_length=10, deadline=deadline)


def test_decode_without_deadline_is_unlimited():
    clock = ManualClock()
    model = _slow_model(clock)
    hypotheses = batched_beam_decode(model, _batch(), beam_size=2, max_length=10)
    assert len(hypotheses) == 2
