"""The inference service: ladder fallback, retries, poison, determinism."""

import pytest

from repro.models.base import NonFiniteLogits
from repro.serving import (
    FaultPlan,
    GenerationRequest,
    ManualClock,
    RequestFailed,
    RetryPolicy,
    ServiceConfig,
    build_ladder,
    is_retryable,
)

from conftest import build_service, build_tiny_model


class FailFirstN:
    """Proxy model whose encode raises a retryable fault for the first N calls."""

    def __init__(self, model, fail_calls: int):
        self._model = model
        self._remaining = fail_calls

    def __getattr__(self, name):
        return getattr(self._model, name)

    def encode(self, batch):
        if self._remaining > 0:
            self._remaining -= 1
            raise NonFiniteLogits("encode")
        return self._model.encode(batch)


class PoisonModel:
    """Deterministic non-retryable failure (an IndexError deep in the stack)."""

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        return getattr(self._model, name)

    def encode(self, batch):
        raise IndexError("poison request")


def test_happy_path_serves_at_top_rung():
    service = build_service()
    result = service.handle(GenerationRequest("zorvex was born in karlin .", request_id="a"))
    assert result.rung == "beam"
    assert result.attempts == 1
    assert not result.degraded
    assert service.stats.served == 1
    assert service.stats.served_by_rung == {"beam": 1}


def test_ladder_shape():
    assert [r.name for r in build_ladder(3, 24)] == [
        "beam",
        "beam_1",
        "greedy",
        "greedy_truncated",
    ]
    # beam-1 requests skip the redundant beam rungs.
    assert [r.name for r in build_ladder(1, 24)] == ["greedy", "greedy_truncated"]
    floor = build_ladder(3, 24, truncated_length=8)[-1]
    assert not floor.heed_deadline
    assert floor.max_length == 8


def test_deadline_pressure_degrades_to_floor():
    clock = ManualClock()
    # Every encode/step stalls 1s against a 0.5s budget: all deadline-heeding
    # rungs die, the deadline-blind floor still serves.
    service = build_service(
        clock=clock,
        config=ServiceConfig(default_deadline_seconds=0.5),
        fault_plan=FaultPlan(seed=0, slow_rate=1.0, slow_seconds=1.0),
    )
    result = service.handle(GenerationRequest("mira designed the velkin tower ."))
    assert result.rung == "greedy_truncated"
    assert result.degraded
    assert service.stats.rung_fallbacks >= 1
    assert service.stats.served_by_rung == {"greedy_truncated": 1}


def test_retry_after_whole_ladder_failure():
    # The first attempt's whole ladder (4 rungs = 4 encodes) fails with a
    # retryable fault; the second attempt succeeds at the top rung.
    model = FailFirstN(build_tiny_model(), fail_calls=4)
    service = build_service(model=model, retry=RetryPolicy(max_attempts=2, jitter=0.0))
    result = service.handle(GenerationRequest("zorvex was born in karlin ."))
    assert result.rung == "beam"
    assert result.attempts == 2
    assert service.stats.retries == 1
    # The backoff slept on the manual clock.
    assert service.clock.now() > 0


def test_poison_fails_fast_without_retry():
    service = build_service(model=PoisonModel(build_tiny_model()))
    with pytest.raises(RequestFailed) as excinfo:
        service.handle(GenerationRequest("zorvex was born in karlin ."))
    assert excinfo.value.attempts == 1
    assert isinstance(excinfo.value.cause, IndexError)
    assert service.stats.failed == 1
    assert service.stats.retries == 0


def test_retryable_classification():
    assert is_retryable(NonFiniteLogits("step_log_probs", step=3))
    assert not is_retryable(IndexError("boom"))
    assert not is_retryable(ValueError("bad"))


def test_breaker_opens_under_sustained_poison_and_sheds():
    from repro.serving import BreakerConfig, BreakerOpen

    service = build_service(
        model=PoisonModel(build_tiny_model()),
        breaker_config=BreakerConfig(window=10, min_samples=3, failure_threshold=0.5,
                                     cooldown_seconds=60.0),
    )
    for _ in range(3):
        with pytest.raises(RequestFailed):
            service.handle(GenerationRequest("zorvex was born in karlin ."))
    assert service.breaker.state == "open"
    with pytest.raises(BreakerOpen):
        service.handle(GenerationRequest("zorvex was born in karlin ."))
    assert service.stats.shed_by_reason == {"breaker_open": 1}


def test_serve_wraps_every_error_as_outcome():
    service = build_service(model=PoisonModel(build_tiny_model()))
    rejected = service.serve(GenerationRequest(""))
    assert rejected.status == "rejected"
    assert rejected.reason == "empty"
    failed = service.serve(GenerationRequest("zorvex was born in karlin ."))
    assert failed.status == "failed"
    assert failed.error == "IndexError"
    assert service.stats.finished == 2


def test_redispatched_request_is_not_double_counted():
    """The pool may re-dispatch an in-flight request to a survivor while the
    'dead' worker's result is already in the pipe; the same request id then
    resolves twice. The ledger must stay exactly-once: one served, one
    counted duplicate, byte-identical payloads either way."""
    service = build_service()
    request = GenerationRequest("zorvex was born in karlin .", request_id="dup-1")
    encoded = service.admit(request)
    first = service.handle_admitted(request, encoded, service.start_deadline(request))
    second = service.handle_admitted(request, encoded, service.start_deadline(request))
    assert first.tokens == second.tokens
    assert first.rung == second.rung
    assert service.stats.served == 1
    assert service.stats.served_by_rung == {"beam": 1}
    assert service.stats.duplicate_results == 1
    # Anonymous requests share the empty id; they are never deduplicated.
    anonymous = GenerationRequest("mira designed the velkin tower .")
    for _ in range(2):
        encoded = service.admit(anonymous)
        service.handle_admitted(anonymous, encoded, service.start_deadline(anonymous))
    assert service.stats.served == 3


def test_rung_outputs_are_byte_deterministic_under_fixed_seed():
    def run_once():
        service = build_service(
            clock=ManualClock(),
            fault_plan=FaultPlan(seed=11, per_request=True, nan_rate=0.3,
                                 slow_rate=0.3, error_rate=0.3),
        )
        rows = []
        for index in range(12):
            outcome = service.serve(
                GenerationRequest("the quen river flows through belcor .",
                                  request_id=f"r{index}")
            )
            if outcome.result is not None:
                rows.append(
                    (outcome.request_id, outcome.status, outcome.result.tokens,
                     outcome.result.rung, outcome.result.attempts)
                )
            else:
                rows.append((outcome.request_id, outcome.status, outcome.error))
        return rows, service.report()

    first_rows, first_report = run_once()
    second_rows, second_report = run_once()
    assert first_rows == second_rows
    assert first_report == second_report
    # The plan actually injected something, or this test proves nothing.
    assert sum(first_report["injected"].values()) > 0
