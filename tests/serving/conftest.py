"""Shared fixtures for the serving suite.

A tiny deterministic ACNN over a closed vocabulary: big enough to drive
the real beam/greedy engines through the service, small enough that the
200-request chaos run stays fast. All clocks are manual, so nothing in
this suite ever sleeps for real.
"""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample
from repro.models import ModelConfig, build_model
from repro.observability import Telemetry
from repro.serving import InferenceService, ManualClock, ServiceConfig

SENTENCES = [
    "zorvex was born in karlin .",
    "mira designed the velkin tower .",
    "draxby is the capital of ostavia .",
    "the quen river flows through belcor .",
    "tovenka built the glass spire .",
    "the ilex bridge spans the morda .",
]
QUESTIONS = [
    "where was zorvex born ?",
    "who designed the velkin tower ?",
    "what is the capital of ostavia ?",
    "what river flows through belcor ?",
    "who built the glass spire ?",
    "what spans the morda ?",
]
EXAMPLES = [
    QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
    for s, q in zip(SENTENCES, QUESTIONS)
]
ENCODER, DECODER = QGDataset.build_vocabs(EXAMPLES, 100, 100)
WORDS = sorted({word for sentence in SENTENCES for word in sentence.split() if word != "."})


def build_tiny_model(seed: int = 0):
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=seed)
    return build_model("acnn", config, len(ENCODER), len(DECODER))


def build_service(model=None, **kwargs):
    """An InferenceService on a manual clock with a quiet telemetry hub."""
    kwargs.setdefault("clock", ManualClock())
    kwargs.setdefault("telemetry", Telemetry([]))
    kwargs.setdefault("config", ServiceConfig(default_deadline_seconds=5.0))
    if model is None:
        model = build_tiny_model()
    return InferenceService(model, ENCODER, DECODER, **kwargs)


def request_texts(count: int, seed: int = 99) -> list[str]:
    """Deterministic in-vocabulary request sentences."""
    rng = np.random.default_rng(seed)
    texts = []
    for _ in range(count):
        size = int(rng.integers(3, 7))
        texts.append(" ".join(rng.choice(WORDS, size=size)))
    return texts


@pytest.fixture()
def tiny_model():
    return build_tiny_model()
