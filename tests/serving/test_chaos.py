"""The chaos suite: sustained seeded faults against the full serving stack.

Acceptance shape: a fleet of requests through the micro-batcher with every
fault type armed at a 10% per-request rate must finish with zero uncaught
exceptions, a served rate >= 90% (any rung counts), internally consistent
accounting, and byte-identical outputs when repeated with the same seed.
"""

from collections import Counter

from repro.observability import Telemetry
from repro.serving import (
    ContinuousBatchingEngine,
    EncoderStateCache,
    EngineConfig,
    FaultPlan,
    GenerationRequest,
    InferenceService,
    ManualClock,
    MicroBatcher,
    ServiceConfig,
)

from conftest import DECODER, ENCODER, build_tiny_model, request_texts

NUM_REQUESTS = 120
FAULT_RATE = 0.1


def run_fleet(model, seed: int):
    clock = ManualClock()
    service = InferenceService(
        model,
        ENCODER,
        DECODER,
        config=ServiceConfig(default_deadline_seconds=2.0),
        clock=clock,
        telemetry=Telemetry([]),
        fault_plan=FaultPlan(
            seed=seed,
            per_request=True,
            nan_rate=FAULT_RATE,
            slow_rate=FAULT_RATE,
            error_rate=FAULT_RATE,
            slow_seconds=0.2,
        ),
    )
    batcher = MicroBatcher(service, max_batch=4, queue_limit=16)
    outcomes = []
    for index, text in enumerate(request_texts(NUM_REQUESTS, seed=555)):
        outcome = batcher.submit(
            GenerationRequest(text, request_id=f"req-{index:03d}", beam_size=3, max_length=12)
        )
        if outcome is not None:
            outcomes.append(outcome)
        if (index + 1) % 4 == 0:
            outcomes.extend(batcher.drain())
    outcomes.extend(batcher.drain())
    return outcomes, service


def outcome_rows(outcomes):
    rows = []
    for outcome in outcomes:
        if outcome.result is not None:
            rows.append(
                (outcome.request_id, outcome.status, outcome.result.tokens,
                 outcome.result.rung, outcome.result.attempts)
            )
        else:
            rows.append((outcome.request_id, outcome.status, outcome.error, outcome.reason))
    return rows


def test_chaos_fleet_survives_and_accounts():
    outcomes, service = run_fleet(build_tiny_model(), seed=7)

    # Every request came back exactly once, through a typed outcome.
    assert len(outcomes) == NUM_REQUESTS
    assert sorted(o.request_id for o in outcomes) == sorted(
        f"req-{i:03d}" for i in range(NUM_REQUESTS)
    )

    statuses = Counter(o.status for o in outcomes)
    assert statuses["served"] >= 0.9 * NUM_REQUESTS

    # The plan really injected faults; the fleet served through them.
    report = service.report()
    assert sum(report["injected"].values()) > 0

    # Ledger agrees with the outcomes and with itself.
    stats = service.stats
    assert stats.finished == NUM_REQUESTS
    assert stats.served == statuses["served"]
    assert stats.shed == statuses.get("shed", 0)
    assert stats.failed == statuses.get("failed", 0)
    assert stats.rejected == statuses.get("rejected", 0)
    assert sum(stats.served_by_rung.values()) == stats.served
    assert sum(stats.shed_by_reason.values()) == stats.shed


def test_chaos_fleet_is_byte_deterministic():
    model = build_tiny_model()
    first_outcomes, first_service = run_fleet(model, seed=7)
    second_outcomes, second_service = run_fleet(model, seed=7)
    assert outcome_rows(first_outcomes) == outcome_rows(second_outcomes)
    assert first_service.report() == second_service.report()


def test_chaos_different_seed_changes_fault_schedule():
    model = build_tiny_model()
    _, first_service = run_fleet(model, seed=7)
    _, second_service = run_fleet(model, seed=8)
    assert (
        first_service.report()["injected"] != second_service.report()["injected"]
        or first_service.report() != second_service.report()
    )


# ----------------------------------------------------------------------
# The same fleet through the continuous-batching engine
# ----------------------------------------------------------------------
def run_continuous_fleet(model, seed: int, with_cache: bool = False):
    clock = ManualClock()
    cache = EncoderStateCache(capacity=32, telemetry=Telemetry([])) if with_cache else None
    service = InferenceService(
        model,
        ENCODER,
        DECODER,
        config=ServiceConfig(default_deadline_seconds=2.0),
        clock=clock,
        telemetry=Telemetry([]),
        fault_plan=FaultPlan(
            seed=seed,
            per_request=True,
            nan_rate=FAULT_RATE,
            slow_rate=FAULT_RATE,
            error_rate=FAULT_RATE,
            slow_seconds=0.2,
        ),
        encoder_cache=cache,
    )
    engine = ContinuousBatchingEngine(
        service, EngineConfig(max_rows=8, queue_limit=16, admit_per_step=4, pad_to=12)
    )
    outcomes = []
    for index, text in enumerate(request_texts(NUM_REQUESTS, seed=555)):
        outcome = engine.submit(
            GenerationRequest(text, request_id=f"req-{index:03d}", beam_size=3, max_length=12)
        )
        if outcome is not None:
            outcomes.append(outcome)
        if (index + 1) % 4 == 0:
            outcomes.extend(engine.step())
        if (index + 1) % 16 == 0:
            outcomes.extend(engine.drain())
    outcomes.extend(engine.drain())
    return outcomes, service, engine


def test_continuous_chaos_fleet_survives_and_accounts():
    outcomes, service, engine = run_continuous_fleet(build_tiny_model(), seed=7)

    # Zero uncaught exceptions: every request returned as a typed outcome,
    # exactly once, and nothing is stuck in the engine.
    assert len(outcomes) == NUM_REQUESTS
    assert sorted(o.request_id for o in outcomes) == sorted(
        f"req-{i:03d}" for i in range(NUM_REQUESTS)
    )
    assert engine.queue_depth == 0 and engine.in_flight == 0

    statuses = Counter(o.status for o in outcomes)
    assert statuses["served"] >= 0.9 * NUM_REQUESTS

    # The plan really injected all three fault kinds into the frontier.
    report = service.report()
    assert all(report["injected"][kind] > 0 for kind in ("nan", "slow", "error"))

    # Per-request fault isolation: poisoned rows went solo, but the
    # frontier kept serving cohabitants — most requests finished in it.
    assert engine.stats.poisoned > 0
    assert engine.stats.served_in_frontier > engine.stats.solo_fallbacks

    stats = service.stats
    assert stats.finished == NUM_REQUESTS
    assert stats.served == statuses["served"]
    assert stats.shed == statuses.get("shed", 0)
    assert stats.failed == statuses.get("failed", 0)
    assert sum(stats.served_by_rung.values()) == stats.served


def test_continuous_chaos_fleet_is_byte_deterministic():
    model = build_tiny_model()
    first_outcomes, first_service, _ = run_continuous_fleet(model, seed=7)
    second_outcomes, second_service, _ = run_continuous_fleet(model, seed=7)
    assert outcome_rows(first_outcomes) == outcome_rows(second_outcomes)
    assert first_service.report() == second_service.report()


def test_continuous_chaos_fleet_with_cache_is_byte_deterministic():
    """The encoder cache under chaos: repeats are byte-identical, hits
    happen (the fleet reuses sources), and hits change zero output bytes
    relative to the uncached fleet."""
    model = build_tiny_model()
    cached_outcomes, cached_service, _ = run_continuous_fleet(
        model, seed=7, with_cache=True
    )
    repeat_outcomes, _, _ = run_continuous_fleet(model, seed=7, with_cache=True)
    assert outcome_rows(cached_outcomes) == outcome_rows(repeat_outcomes)

    report = cached_service.report()
    assert report["encoder_cache"]["hits"] > 0

    plain_outcomes, _, _ = run_continuous_fleet(model, seed=7, with_cache=False)
    assert outcome_rows(cached_outcomes) == outcome_rows(plain_outcomes)
