"""The chaos suite: sustained seeded faults against the full serving stack.

Acceptance shape: a fleet of requests through the micro-batcher with every
fault type armed at a 10% per-request rate must finish with zero uncaught
exceptions, a served rate >= 90% (any rung counts), internally consistent
accounting, and byte-identical outputs when repeated with the same seed.
"""

from collections import Counter

from repro.observability import Telemetry
from repro.serving import (
    FaultPlan,
    GenerationRequest,
    InferenceService,
    ManualClock,
    MicroBatcher,
    ServiceConfig,
)

from conftest import DECODER, ENCODER, build_tiny_model, request_texts

NUM_REQUESTS = 120
FAULT_RATE = 0.1


def run_fleet(model, seed: int):
    clock = ManualClock()
    service = InferenceService(
        model,
        ENCODER,
        DECODER,
        config=ServiceConfig(default_deadline_seconds=2.0),
        clock=clock,
        telemetry=Telemetry([]),
        fault_plan=FaultPlan(
            seed=seed,
            per_request=True,
            nan_rate=FAULT_RATE,
            slow_rate=FAULT_RATE,
            error_rate=FAULT_RATE,
            slow_seconds=0.2,
        ),
    )
    batcher = MicroBatcher(service, max_batch=4, queue_limit=16)
    outcomes = []
    for index, text in enumerate(request_texts(NUM_REQUESTS, seed=555)):
        outcome = batcher.submit(
            GenerationRequest(text, request_id=f"req-{index:03d}", beam_size=3, max_length=12)
        )
        if outcome is not None:
            outcomes.append(outcome)
        if (index + 1) % 4 == 0:
            outcomes.extend(batcher.drain())
    outcomes.extend(batcher.drain())
    return outcomes, service


def outcome_rows(outcomes):
    rows = []
    for outcome in outcomes:
        if outcome.result is not None:
            rows.append(
                (outcome.request_id, outcome.status, outcome.result.tokens,
                 outcome.result.rung, outcome.result.attempts)
            )
        else:
            rows.append((outcome.request_id, outcome.status, outcome.error, outcome.reason))
    return rows


def test_chaos_fleet_survives_and_accounts():
    outcomes, service = run_fleet(build_tiny_model(), seed=7)

    # Every request came back exactly once, through a typed outcome.
    assert len(outcomes) == NUM_REQUESTS
    assert sorted(o.request_id for o in outcomes) == sorted(
        f"req-{i:03d}" for i in range(NUM_REQUESTS)
    )

    statuses = Counter(o.status for o in outcomes)
    assert statuses["served"] >= 0.9 * NUM_REQUESTS

    # The plan really injected faults; the fleet served through them.
    report = service.report()
    assert sum(report["injected"].values()) > 0

    # Ledger agrees with the outcomes and with itself.
    stats = service.stats
    assert stats.finished == NUM_REQUESTS
    assert stats.served == statuses["served"]
    assert stats.shed == statuses.get("shed", 0)
    assert stats.failed == statuses.get("failed", 0)
    assert stats.rejected == statuses.get("rejected", 0)
    assert sum(stats.served_by_rung.values()) == stats.served
    assert sum(stats.shed_by_reason.values()) == stats.shed


def test_chaos_fleet_is_byte_deterministic():
    model = build_tiny_model()
    first_outcomes, first_service = run_fleet(model, seed=7)
    second_outcomes, second_service = run_fleet(model, seed=7)
    assert outcome_rows(first_outcomes) == outcome_rows(second_outcomes)
    assert first_service.report() == second_service.report()


def test_chaos_different_seed_changes_fault_schedule():
    model = build_tiny_model()
    _, first_service = run_fleet(model, seed=7)
    _, second_service = run_fleet(model, seed=8)
    assert (
        first_service.report()["injected"] != second_service.report()["injected"]
        or first_service.report() != second_service.report()
    )
