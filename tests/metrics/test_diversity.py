"""Tests for distinct-n and unique-output diversity metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import distinct_n, unique_output_ratio


def test_distinct_n_all_unique():
    outputs = [["a", "b"], ["c", "d"]]
    assert distinct_n(outputs, n=2) == 1.0


def test_distinct_n_fully_repetitive():
    outputs = [["a", "a", "a", "a"]]
    # 3 bigrams, all ("a","a") -> 1 unique / 3 total.
    assert distinct_n(outputs, n=2) == pytest.approx(1 / 3)


def test_distinct_n_across_outputs():
    outputs = [["a", "b"], ["a", "b"]]
    assert distinct_n(outputs, n=2) == pytest.approx(0.5)


def test_distinct_1():
    outputs = [["a", "b", "a"]]
    assert distinct_n(outputs, n=1) == pytest.approx(2 / 3)


def test_distinct_n_short_outputs_skipped():
    assert distinct_n([["a"]], n=2) == 0.0
    assert distinct_n([], n=2) == 0.0


def test_distinct_n_validates_order():
    with pytest.raises(ValueError):
        distinct_n([["a"]], n=0)


def test_unique_output_ratio():
    outputs = [("a", "b"), ("a", "b"), ("c",)]
    assert unique_output_ratio(outputs) == pytest.approx(2 / 3)


def test_unique_output_ratio_empty_raises():
    with pytest.raises(ValueError):
        unique_output_ratio([])


words = st.sampled_from(["a", "b", "c"])


@given(st.lists(st.lists(words, min_size=1, max_size=5), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_distinct_n_bounded(outputs):
    value = distinct_n(outputs, n=1)
    assert 0.0 <= value <= 1.0


@given(st.lists(st.lists(words, min_size=1, max_size=5), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_unique_ratio_bounded(outputs):
    value = unique_output_ratio(outputs)
    assert 0.0 < value <= 1.0
