"""Tests for ROUGE-L and the LCS kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import corpus_rouge_l, lcs_length, rouge_l_sentence


def test_lcs_identical():
    assert lcs_length(["a", "b", "c"], ["a", "b", "c"]) == 3


def test_lcs_empty():
    assert lcs_length([], ["a"]) == 0
    assert lcs_length(["a"], []) == 0


def test_lcs_classic_example():
    # ABCBDAB vs BDCABA -> LCS length 4 (e.g. BCAB)
    a = list("abcbdab")
    b = list("bdcaba")
    assert lcs_length(a, b) == 4


def test_lcs_subsequence_not_substring():
    assert lcs_length(["a", "x", "b", "y", "c"], ["a", "b", "c"]) == 3


def test_rouge_perfect_match_is_one():
    hyp = ["what", "is", "the", "capital", "?"]
    assert rouge_l_sentence(hyp, [hyp]) == pytest.approx(1.0)


def test_rouge_no_overlap_is_zero():
    assert rouge_l_sentence(["a"], [["b"]]) == 0.0


def test_rouge_hand_computed():
    hyp = ["the", "cat", "sat"]          # len 3
    ref = ["the", "cat", "sat", "down"]  # len 4, lcs 3
    precision, recall, beta = 1.0, 0.75, 1.2
    expected = (1 + beta ** 2) * precision * recall / (recall + beta ** 2 * precision)
    assert rouge_l_sentence(hyp, [ref]) == pytest.approx(expected)


def test_rouge_takes_best_reference():
    hyp = ["a", "b", "c"]
    weak = ["x", "y"]
    strong = ["a", "b", "c"]
    assert rouge_l_sentence(hyp, [weak, strong]) == pytest.approx(1.0)


def test_rouge_requires_reference():
    with pytest.raises(ValueError):
        rouge_l_sentence(["a"], [])


def test_corpus_rouge_is_mean_of_segments():
    hyp1 = ["a", "b"]
    hyp2 = ["x"]
    refs1 = [["a", "b"]]
    refs2 = [["y"]]
    score = corpus_rouge_l([hyp1, hyp2], [refs1, refs2])
    assert score == pytest.approx(100.0 * (1.0 + 0.0) / 2)


def test_corpus_rouge_validates_lengths():
    with pytest.raises(ValueError):
        corpus_rouge_l([["a"]], [])
    with pytest.raises(ValueError):
        corpus_rouge_l([], [])


words = st.sampled_from(["the", "cat", "sat", "mat", "dog"])


@given(st.lists(words, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_rouge_self_is_one(tokens):
    assert rouge_l_sentence(tokens, [list(tokens)]) == pytest.approx(1.0)


@given(st.lists(words, min_size=1, max_size=8), st.lists(words, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_rouge_bounded(hyp, ref):
    assert 0.0 <= rouge_l_sentence(hyp, [ref]) <= 1.0


@given(st.lists(words, min_size=1, max_size=8), st.lists(words, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_lcs_symmetric_and_bounded(a, b):
    assert lcs_length(a, b) == lcs_length(b, a)
    assert lcs_length(a, b) <= min(len(a), len(b))
