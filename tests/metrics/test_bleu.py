"""Tests for the BLEU implementation, incl. hand-computed reference values."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import bleu_n_scores, corpus_bleu, ngrams, sentence_bleu


def test_ngrams_basic():
    assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]


def test_ngrams_too_short_returns_empty():
    assert ngrams(["a"], 2) == []


def test_ngrams_rejects_bad_order():
    with pytest.raises(ValueError):
        ngrams(["a"], 0)


def test_perfect_match_scores_100():
    hyp = ["the", "cat", "sat", "on", "the", "mat"]
    assert corpus_bleu([hyp], [[hyp]], max_n=4) == pytest.approx(100.0)


def test_no_overlap_scores_zero():
    assert corpus_bleu([["x", "y"]], [[["a", "b"]]], max_n=1) == 0.0


def test_hand_computed_unigram_precision():
    """hyp: 4 tokens, 3 matched -> p1 = 3/4, no brevity penalty."""
    hyp = ["the", "cat", "sat", "quickly"]
    ref = ["the", "cat", "sat", "down"]
    score = corpus_bleu([hyp], [[ref]], max_n=1)
    assert score == pytest.approx(75.0)


def test_clipping_limits_repeated_words():
    """Papineni's classic: hyp 'the the the...' clipped by ref counts."""
    hyp = ["the"] * 7
    ref = ["the", "cat", "is", "on", "the", "mat"]  # 'the' appears twice
    score = corpus_bleu([hyp], [[ref]], max_n=1)
    # p1 = 2/7; hypothesis (7) longer than reference (6) -> no brevity penalty.
    assert score == pytest.approx(100.0 * 2 / 7)


def test_brevity_penalty_applied_when_short():
    hyp = ["the", "cat"]
    ref = ["the", "cat", "sat", "on", "the", "mat"]
    score = corpus_bleu([hyp], [[ref]], max_n=1)
    expected = 100.0 * math.exp(1 - 6 / 2) * 1.0
    assert score == pytest.approx(expected)


def test_no_brevity_penalty_when_longer():
    hyp = ["the", "cat", "sat", "on", "the", "red", "mat"]
    ref = ["the", "cat", "sat"]
    score = corpus_bleu([hyp], [[ref]], max_n=1)
    assert score == pytest.approx(100.0 * 3 / 7)


def test_multiple_references_takes_max_clip():
    hyp = ["the", "fast", "cat"]
    refs = [["the", "cat"], ["a", "fast", "dog"]]
    score = corpus_bleu([hyp], [refs], max_n=1)
    # All three unigrams covered across the two references; closest ref len = 3.
    assert score == pytest.approx(100.0)


def test_closest_reference_length_used_for_brevity():
    hyp = ["a", "b", "c", "d"]
    refs = [["a", "b", "c", "x"], ["a"] * 10]
    # closest length is 4 -> no penalty.
    score = corpus_bleu([hyp], [refs], max_n=1)
    assert score == pytest.approx(75.0)


def test_cumulative_bleu4_geometric_mean():
    hyp = ["the", "cat", "sat", "on", "the", "mat"]
    score4 = corpus_bleu([hyp], [[hyp]], max_n=4)
    score1 = corpus_bleu([hyp], [[hyp]], max_n=1)
    assert score4 == pytest.approx(score1) == pytest.approx(100.0)


def test_zero_higher_order_zeroes_unsmoothed_bleu():
    hyp = ["a", "c", "b"]  # shares unigrams with ref, but no bigrams
    ref = ["b", "x", "a"]
    assert corpus_bleu([hyp], [[ref]], max_n=2) == 0.0
    assert corpus_bleu([hyp], [[ref]], max_n=2, smooth_epsilon=0.1) > 0.0


def test_bleu_n_scores_returns_all_orders():
    hyp = ["the", "cat", "sat", "down"]
    scores = bleu_n_scores([hyp], [[hyp]])
    assert set(scores) == {"BLEU-1", "BLEU-2", "BLEU-3", "BLEU-4"}
    assert all(v == pytest.approx(100.0) for v in scores.values())


def test_bleu_orders_are_monotone_nonincreasing():
    hyp = ["the", "black", "cat", "sat", "on", "a", "mat"]
    ref = ["the", "cat", "sat", "on", "the", "mat"]
    scores = bleu_n_scores([hyp], [[ref]], smooth_epsilon=0.01)
    assert scores["BLEU-1"] >= scores["BLEU-2"] >= scores["BLEU-3"] >= scores["BLEU-4"]


def test_corpus_pools_counts_not_scores():
    """Corpus BLEU pools n-gram counts across segments (not mean of BLEUs)."""
    hyp1, ref1 = ["a", "b"], ["a", "b"]
    hyp2, ref2 = ["x", "y"], ["p", "q"]
    pooled = corpus_bleu([hyp1, hyp2], [[ref1], [ref2]], max_n=1)
    assert pooled == pytest.approx(100.0 * 2 / 4)


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError):
        corpus_bleu([["a"]], [])
    with pytest.raises(ValueError):
        corpus_bleu([], [])
    with pytest.raises(ValueError):
        corpus_bleu([["a"]], [[]])


def test_sentence_bleu_smoothing_default():
    assert sentence_bleu(["a", "q"], [["a", "b"]]) > 0.0


words = st.sampled_from(["the", "cat", "sat", "mat", "dog", "ran"])


@given(st.lists(words, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_self_bleu_is_100(tokens):
    assert corpus_bleu([tokens], [[list(tokens)]], max_n=min(4, len(tokens))) == pytest.approx(100.0)


@given(st.lists(words, min_size=1, max_size=8), st.lists(words, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_bleu_bounded(hyp, ref):
    score = corpus_bleu([hyp], [[ref]], max_n=2, smooth_epsilon=0.01)
    assert 0.0 <= score <= 100.0 + 1e-9
