"""Tests for the coverage extension (See et al. 2017) on the ACNN."""

import numpy as np
import pytest

from repro.data import collate
from repro.data.vocabulary import BOS_ID
from repro.models import ACNN, ModelConfig, build_model
from repro.nn import GlobalAttention
from repro.tensor import Tensor, check_gradients, no_grad


def _model(tiny_config, tiny_vocabs, **kwargs):
    encoder, decoder = tiny_vocabs
    return build_model("acnn", tiny_config, len(encoder), len(decoder), use_coverage=True, **kwargs)


def test_coverage_attention_requires_flag():
    attn = GlobalAttention(4, 6, np.random.default_rng(0), use_coverage=False)
    d = Tensor(np.zeros((1, 4)))
    h = Tensor(np.zeros((1, 3, 6)))
    with pytest.raises(ValueError):
        attn(d, h, coverage=Tensor(np.zeros((1, 3))))


def test_coverage_attention_changes_scores_once_weight_nonzero():
    attn = GlobalAttention(4, 6, np.random.default_rng(0), use_coverage=True)
    attn.coverage_weight.data[0] = -2.0
    rng = np.random.default_rng(1)
    d = Tensor(rng.standard_normal((1, 4)))
    h = Tensor(rng.standard_normal((1, 3, 6)))
    heavy = Tensor(np.array([[5.0, 0.0, 0.0]]))
    _, base = attn(d, h)
    _, shifted = attn(d, h, coverage=heavy)
    # Negative coverage weight suppresses the already-covered position.
    assert shifted.data[0, 0] < base.data[0, 0]


def test_coverage_attention_gradcheck():
    attn = GlobalAttention(2, 3, np.random.default_rng(2), use_coverage=True)
    attn.coverage_weight.data[0] = 0.5
    rng = np.random.default_rng(3)
    d = Tensor(rng.standard_normal((1, 2)), requires_grad=True)
    h = Tensor(rng.standard_normal((1, 4, 3)), requires_grad=True)
    cov = Tensor(rng.random((1, 4)), requires_grad=True)

    def loss():
        context, _ = attn(d, h, coverage=cov)
        return (context * context).sum()

    check_gradients(loss, [d, h, cov, attn.weight, attn.coverage_weight], rtol=1e-3)


def test_coverage_model_has_coverage_parameter(tiny_config, tiny_vocabs):
    model = _model(tiny_config, tiny_vocabs)
    names = {name for name, _ in model.named_parameters()}
    assert "attention.coverage_weight" in names


def test_coverage_loss_finite_and_trains(tiny_config, tiny_vocabs, tiny_batch):
    from repro.optim import SGD

    model = _model(tiny_config, tiny_vocabs)
    optimizer = SGD(model.parameters(), lr=0.5)
    first = model.loss(tiny_batch)
    assert np.isfinite(first.item())
    first.backward()
    optimizer.step()
    model.zero_grad()
    assert model.loss(tiny_batch).item() < first.item() + 1e-9


def test_coverage_penalty_increases_loss_vs_plain_nll(tiny_config, tiny_vocabs, tiny_batch):
    encoder, decoder = tiny_vocabs
    with_pen = build_model(
        "acnn", tiny_config, len(encoder), len(decoder),
        use_coverage=True, coverage_loss_weight=1.0,
    )
    without_pen = build_model(
        "acnn", tiny_config, len(encoder), len(decoder),
        use_coverage=True, coverage_loss_weight=0.0,
    )
    without_pen.load_state_dict(with_pen.state_dict())
    assert with_pen.loss(tiny_batch).item() >= without_pen.loss(tiny_batch).item()


def test_coverage_state_threads_through_decoding(tiny_config, tiny_vocabs, tiny_batch):
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        state = model.initial_decoder_state(context)
        assert state.coverage is not None
        assert np.allclose(state.coverage, 0.0)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        _, state = model.step_log_probs(prev, state, context)
        # One step accumulates exactly one attention distribution per row.
        sums = state.coverage.sum(axis=1)
        assert np.allclose(sums, 1.0, atol=1e-6)
        _, state = model.step_log_probs(prev, state, context)
        assert np.allclose(state.coverage.sum(axis=1), 2.0, atol=1e-6)


def test_coverage_state_select_for_beam(tiny_config, tiny_vocabs, tiny_batch):
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        state = model.initial_decoder_state(context)
        picked = state.select(np.array([0, 0, 1]))
    assert picked.coverage.shape[0] == 3


def test_coverage_beam_decoding_runs(tiny_config, tiny_vocabs, tiny_batch):
    from repro.decoding import beam_decode

    model = _model(tiny_config, tiny_vocabs)
    hyps = beam_decode(model, tiny_batch, beam_size=2, max_length=6)
    assert len(hyps) == tiny_batch.size


def test_coverage_loss_gradcheck(tiny_vocabs, tiny_dataset):
    encoder, decoder = tiny_vocabs
    config = ModelConfig(embedding_dim=4, hidden_size=3, num_layers=1, dropout=0.0, seed=11)
    model = ACNN(config, len(encoder), len(decoder), use_coverage=True, coverage_loss_weight=0.7)
    model.attention.coverage_weight.data[0] = 0.3
    batch = collate(list(tiny_dataset)[:2], pad_id=0)
    check_gradients(lambda: model.loss(batch), model.parameters(), rtol=2e-3, atol=1e-6)


def test_coverage_rejects_negative_weight(tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    with pytest.raises(ValueError):
        build_model(
            "acnn", tiny_config, len(encoder), len(decoder),
            use_coverage=True, coverage_loss_weight=-1.0,
        )


def test_describe_mentions_coverage(tiny_config, tiny_vocabs):
    assert "coverage" in _model(tiny_config, tiny_vocabs).describe()
