"""Behaviour every model family must share: loss, encode, stepping, factory."""

import numpy as np
import pytest

from repro.models import (
    ACNN,
    DuAttentionModel,
    ModelConfig,
    Seq2SeqBaseline,
    build_model,
)
from repro.data.vocabulary import BOS_ID
from repro.optim import SGD
from repro.tensor import no_grad

FAMILIES = ["seq2seq", "du-attention", "acnn"]


def _build(family, tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    return build_model(family, tiny_config, len(encoder), len(decoder))


@pytest.mark.parametrize("family", FAMILIES)
def test_loss_is_finite_positive_scalar(family, tiny_config, tiny_vocabs, tiny_batch):
    model = _build(family, tiny_config, tiny_vocabs)
    loss = model.loss(tiny_batch)
    value = loss.item()
    assert np.isfinite(value)
    assert value > 0


@pytest.mark.parametrize("family", FAMILIES)
def test_loss_backward_populates_gradients(family, tiny_config, tiny_vocabs, tiny_batch):
    model = _build(family, tiny_config, tiny_vocabs)
    model.loss(tiny_batch).backward()
    with_grad = [name for name, p in model.named_parameters() if p.grad is not None]
    # Every parameter should participate in a full teacher-forced pass.
    missing = [name for name, p in model.named_parameters() if p.grad is None]
    assert not missing, f"no gradient for: {missing}"
    assert with_grad


@pytest.mark.parametrize("family", FAMILIES)
def test_one_sgd_step_reduces_loss(family, tiny_config, tiny_vocabs, tiny_batch):
    model = _build(family, tiny_config, tiny_vocabs)
    optimizer = SGD(model.parameters(), lr=0.2)
    first = model.loss(tiny_batch)
    first.backward()
    optimizer.step()
    model.zero_grad()
    second = model.loss(tiny_batch).item()
    assert second < first.item()


@pytest.mark.parametrize("family", FAMILIES)
def test_step_log_probs_shape_and_normalization(family, tiny_config, tiny_vocabs, tiny_batch):
    model = _build(family, tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        state = model.initial_decoder_state(context)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, state, context)
    assert log_probs.shape == (context.batch_size, model.extended_vocab_size(context))
    sums = np.exp(log_probs).sum(axis=1)
    assert np.allclose(sums, 1.0, atol=1e-6)


@pytest.mark.parametrize("family", FAMILIES)
def test_decoding_is_deterministic_in_eval(family, tiny_config, tiny_vocabs, tiny_batch):
    model = _build(family, tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        lp1, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
        lp2, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    assert np.allclose(lp1, lp2)


@pytest.mark.parametrize("family", FAMILIES)
def test_state_dict_round_trip_preserves_loss(family, tiny_config, tiny_vocabs, tiny_batch):
    encoder, decoder = tiny_vocabs
    source = _build(family, tiny_config, tiny_vocabs)
    target = build_model(family, tiny_config.scaled(seed=99), len(encoder), len(decoder))
    target.load_state_dict(source.state_dict())
    assert np.isclose(source.loss(tiny_batch).item(), target.loss(tiny_batch).item())


@pytest.mark.parametrize("family", FAMILIES)
def test_describe_mentions_family_specifics(family, tiny_config, tiny_vocabs):
    model = _build(family, tiny_config, tiny_vocabs)
    text = model.describe()
    assert "encoder" in text
    assert "decoder" in text


def test_factory_rejects_unknown_family(tiny_config):
    with pytest.raises(KeyError):
        build_model("transformer", tiny_config, 10, 10)


def test_factory_returns_expected_classes(tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    assert isinstance(build_model("seq2seq", tiny_config, len(encoder), len(decoder)), Seq2SeqBaseline)
    assert isinstance(build_model("du-attention", tiny_config, len(encoder), len(decoder)), DuAttentionModel)
    assert isinstance(build_model("acnn", tiny_config, len(encoder), len(decoder)), ACNN)


def test_config_validation():
    with pytest.raises(ValueError):
        ModelConfig(hidden_size=0)
    with pytest.raises(ValueError):
        ModelConfig(dropout=1.0)
    with pytest.raises(ValueError):
        ModelConfig(num_layers=0)
    with pytest.raises(ValueError):
        ModelConfig(embedding_dim=0)


def test_config_scaled_replaces_fields():
    config = ModelConfig().scaled(hidden_size=32)
    assert config.hidden_size == 32
    assert config.embedding_dim == 300
