"""ACNN-specific tests: copy distribution, switch gate, mixture, gradients."""

import numpy as np
import pytest

from repro.data import collate
from repro.data.vocabulary import BOS_ID
from repro.models import ACNN, build_model
from repro.tensor import Tensor, check_gradients, no_grad


def _acnn(tiny_config, tiny_vocabs, **kwargs):
    encoder, decoder = tiny_vocabs
    return build_model("acnn", tiny_config, len(encoder), len(decoder), **kwargs)


def test_copy_distribution_sums_to_one_over_valid_positions(tiny_config, tiny_vocabs, tiny_batch):
    model = _acnn(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        d = Tensor(np.random.default_rng(0).standard_normal((tiny_batch.size, tiny_config.hidden_size)))
        c = Tensor(np.random.default_rng(1).standard_normal((tiny_batch.size, 2 * tiny_config.hidden_size)))
        p_cop = model.copy_distribution(d, c, context.encoder_states, context.src_pad_mask).data
    assert np.allclose(p_cop.sum(axis=1), 1.0)
    assert np.allclose(p_cop[tiny_batch.src_pad_mask], 0.0)


def test_switch_gate_in_unit_interval(tiny_config, tiny_vocabs, tiny_batch):
    model = _acnn(tiny_config, tiny_vocabs).eval()
    rng = np.random.default_rng(2)
    d = Tensor(rng.standard_normal((4, tiny_config.hidden_size)))
    c = Tensor(rng.standard_normal((4, 2 * tiny_config.hidden_size)))
    y = Tensor(rng.standard_normal((4, tiny_config.embedding_dim)))
    z = model.switch(d, c, y).data
    assert z.shape == (4,)
    assert np.all((z > 0) & (z < 1))


def test_fixed_switch_returns_constant(tiny_config, tiny_vocabs):
    model = _acnn(tiny_config, tiny_vocabs, switch_mode="fixed", fixed_switch=0.25)
    rng = np.random.default_rng(3)
    d = Tensor(rng.standard_normal((2, tiny_config.hidden_size)))
    c = Tensor(rng.standard_normal((2, 2 * tiny_config.hidden_size)))
    y = Tensor(rng.standard_normal((2, tiny_config.embedding_dim)))
    assert np.allclose(model.switch(d, c, y).data, 0.25)


def test_invalid_switch_mode_rejected(tiny_config, tiny_vocabs):
    with pytest.raises(ValueError):
        _acnn(tiny_config, tiny_vocabs, switch_mode="sometimes")
    with pytest.raises(ValueError):
        _acnn(tiny_config, tiny_vocabs, switch_mode="fixed", fixed_switch=1.5)


def test_extended_distribution_covers_oov_slots(tiny_config, tiny_vocabs, tiny_batch):
    """The copy path must put real probability on source OOV words."""
    model = _acnn(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        state = model.initial_decoder_state(context)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, state, context)
    vocab_size = model.decoder_vocab_size
    oov_mass = np.exp(log_probs[:, vocab_size:]).sum(axis=1)
    # Each example has source OOVs, and an untrained gate is near 0.5,
    # so the OOV slots must carry non-trivial mass.
    assert np.all(oov_mass > 1e-4)


def test_pure_attention_fixed_switch_puts_no_mass_on_oov(tiny_config, tiny_vocabs, tiny_batch):
    model = _acnn(tiny_config, tiny_vocabs, switch_mode="fixed", fixed_switch=0.0).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    oov_mass = np.exp(log_probs[:, model.decoder_vocab_size:]).sum(axis=1)
    assert np.allclose(oov_mass, 0.0, atol=1e-9)


def test_pure_copy_fixed_switch_puts_all_mass_on_source(tiny_config, tiny_vocabs, tiny_batch):
    model = _acnn(tiny_config, tiny_vocabs, switch_mode="fixed", fixed_switch=1.0).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    probs = np.exp(log_probs)
    for row in range(tiny_batch.size):
        source_ids = set(tiny_batch.src_ext[row][~tiny_batch.src_pad_mask[row]])
        non_source = [i for i in range(probs.shape[1]) if i not in source_ids]
        assert probs[row, non_source].sum() < 1e-6


def test_mixture_equals_manual_combination(tiny_config, tiny_vocabs, tiny_batch):
    """Eq. 2 check: extended distribution = (1-z) P_att scattered + z P_cop."""
    model = _acnn(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        state = model.initial_decoder_state(context)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)

        embedded = model.decoder_embedding(prev)
        d, c, _, logits, _ = model._decode_step(
            embedded, state.lstm_states, context.encoder_states, context.src_pad_mask
        )
        from repro.tensor.ops import softmax

        p_att = softmax(logits, axis=-1).data
        p_cop = model.copy_distribution(d, c, context.encoder_states, context.src_pad_mask).data
        z = model.switch(d, c, embedded).data[:, None]

        log_probs, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
        probs = np.exp(log_probs)

    manual = np.zeros_like(probs)
    manual[:, : model.decoder_vocab_size] = (1 - z) * p_att
    for row in range(tiny_batch.size):
        for position, ext_id in enumerate(tiny_batch.src_ext[row]):
            if not tiny_batch.src_pad_mask[row, position]:
                manual[row, ext_id] += z[row, 0] * p_cop[row, position]
    assert np.allclose(probs, manual, atol=1e-9)


def test_loss_gradcheck_small_acnn(tiny_vocabs, tiny_dataset):
    """Full end-to-end gradient check of the ACNN training loss."""
    from repro.models import ModelConfig

    encoder, decoder = tiny_vocabs
    config = ModelConfig(embedding_dim=4, hidden_size=3, num_layers=1, dropout=0.0, seed=11)
    model = ACNN(config, len(encoder), len(decoder))
    batch = collate(list(tiny_dataset)[:2], pad_id=0)

    parameters = model.parameters()
    check_gradients(lambda: model.loss(batch), parameters, rtol=2e-3, atol=1e-6)


def test_loss_decreases_over_several_steps(tiny_config, tiny_vocabs, tiny_batch):
    from repro.optim import SGD, clip_grad_norm

    model = _acnn(tiny_config, tiny_vocabs)
    optimizer = SGD(model.parameters(), lr=1.0)
    losses = []
    for _ in range(40):
        loss = model.loss(tiny_batch)
        losses.append(loss.item())
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()
    assert losses[-1] < losses[0] * 0.85


def test_trained_acnn_copies_entities(tiny_config, tiny_vocabs, tiny_batch, tiny_dataset):
    """After overfitting the tiny corpus, greedy decoding must copy OOVs."""
    from repro.decoding import extended_ids_to_tokens, greedy_decode
    from repro.optim import SGD, clip_grad_norm

    model = _acnn(tiny_config.scaled(hidden_size=24, embedding_dim=16), tiny_vocabs)
    optimizer = SGD(model.parameters(), lr=0.7)
    for _ in range(120):
        model.train()
        loss = model.loss(tiny_batch)
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()

    hypotheses = greedy_decode(model, tiny_batch, max_length=12)
    _, decoder = tiny_vocabs
    copied_any = False
    for hyp, encoded in zip(hypotheses, tiny_batch.examples):
        tokens = extended_ids_to_tokens(hyp.token_ids, decoder, encoded.oov_tokens)
        gold_oov = [t for t in encoded.example.question if t not in decoder]
        if any(t in tokens for t in gold_oov):
            copied_any = True
    assert copied_any, "overfit ACNN never copied an out-of-vocabulary entity"


def test_scheduled_sampling_validation(tiny_config, tiny_vocabs):
    with pytest.raises(ValueError):
        _acnn(tiny_config, tiny_vocabs, scheduled_sampling_rate=1.0)


def test_scheduled_sampling_loss_trains(tiny_config, tiny_vocabs, tiny_batch):
    from repro.optim import SGD

    model = _acnn(tiny_config, tiny_vocabs, scheduled_sampling_rate=0.3)
    optimizer = SGD(model.parameters(), lr=0.5)
    first = model.loss(tiny_batch)
    assert np.isfinite(first.item())
    first.backward()
    optimizer.step()
    model.zero_grad()
    assert np.isfinite(model.loss(tiny_batch).item())


def test_scheduled_sampling_disabled_in_eval(tiny_config, tiny_vocabs, tiny_batch):
    """In eval mode the loss must be the deterministic teacher-forced one."""
    model = _acnn(tiny_config, tiny_vocabs, scheduled_sampling_rate=0.5)
    model.eval()
    with no_grad():
        a = model.loss(tiny_batch).item()
        b = model.loss(tiny_batch).item()
    assert a == b


def test_scheduled_sampling_zero_matches_teacher_forcing(tiny_config, tiny_vocabs, tiny_batch):
    plain = _acnn(tiny_config, tiny_vocabs)
    sampled = _acnn(tiny_config, tiny_vocabs, scheduled_sampling_rate=0.0)
    sampled.load_state_dict(plain.state_dict())
    plain.eval()
    sampled.eval()
    with no_grad():
        assert np.isclose(plain.loss(tiny_batch).item(), sampled.loss(tiny_batch).item())


# ---------------------------------------------------------------------------
# Scheduled-sampling feedback: must come from the Eq. 2 mixture, not from
# the attention softmax alone
# ---------------------------------------------------------------------------
def test_sampled_feedback_follows_copy_gate_to_unk(tiny_config, tiny_vocabs):
    """When the gate favors copying an OOV source word, the fed-back token
    is UNK (the inference contract), not the attention argmax."""
    from repro.data.vocabulary import UNK_ID

    model = _acnn(tiny_config, tiny_vocabs)
    vocab_size = model.decoder_vocab_size
    generated = 5  # some in-vocab word the attention path prefers
    p_att = np.zeros((1, vocab_size))
    p_att[0, generated] = 1.0
    p_cop = np.array([[0.9, 0.1]])  # copy mass on source position 0
    src_ext = np.array([[vocab_size, vocab_size + 1]])  # both positions OOV
    z = np.array([0.8])  # gate favors copying

    feedback = model.sampled_feedback(p_att, p_cop, z, src_ext, max_oov=2)
    assert feedback[0] == UNK_ID
    assert feedback[0] != p_att.argmax(axis=1)[0]


def test_sampled_feedback_follows_copy_gate_to_in_vocab_word(tiny_config, tiny_vocabs):
    """A copied in-vocab word wins over the attention argmax when z is high
    and feeds back as itself."""
    model = _acnn(tiny_config, tiny_vocabs)
    vocab_size = model.decoder_vocab_size
    generated, copied = 5, 7
    p_att = np.zeros((1, vocab_size))
    p_att[0, generated] = 1.0
    p_cop = np.array([[1.0]])
    src_ext = np.array([[copied]])  # source word is in the decoder vocab
    z = np.array([0.8])

    feedback = model.sampled_feedback(p_att, p_cop, z, src_ext, max_oov=0)
    assert feedback[0] == copied


def test_sampled_feedback_respects_generation_when_gate_closed(tiny_config, tiny_vocabs):
    model = _acnn(tiny_config, tiny_vocabs)
    vocab_size = model.decoder_vocab_size
    generated = 5
    p_att = np.zeros((1, vocab_size))
    p_att[0, generated] = 1.0
    p_cop = np.array([[1.0]])
    src_ext = np.array([[vocab_size]])
    z = np.array([0.1])  # gate favors generation

    feedback = model.sampled_feedback(p_att, p_cop, z, src_ext, max_oov=1)
    assert feedback[0] == generated


def test_scheduled_sampling_feedback_stays_in_decoder_vocab(tiny_config, tiny_vocabs, tiny_batch):
    """End to end: a copy-heavy gate with near-certain sampling must train
    without feeding extended ids into the decoder embedding."""
    model = _acnn(
        tiny_config,
        tiny_vocabs,
        switch_mode="fixed",
        fixed_switch=1.0,
        scheduled_sampling_rate=0.99,
    )
    model.train()
    loss = model.loss(tiny_batch)
    assert np.isfinite(loss.item())


# ----------------------------------------------------------------------
# Numerical hardening of the Eq. 2/4 mixture (saturated-gate regression)
# ----------------------------------------------------------------------
def test_saturated_gate_keeps_loss_and_grads_finite(tiny_config, tiny_vocabs, tiny_batch):
    """Regression: a hugely confident switch gate used to return exact 1.0,
    zeroing the generate branch; gold tokens only that branch explains got
    probability 0 and the Eq. 7 log hit the floor with dead gradients."""
    model = _acnn(tiny_config, tiny_vocabs)
    model.switch_bias.data[...] = 1e5  # drive sigmoid into exact saturation
    loss = model.loss(tiny_batch)
    assert np.isfinite(loss.item())
    loss.backward()
    for parameter in model.parameters():
        if parameter.grad is not None:
            assert np.isfinite(parameter.grad).all(), parameter.name


def test_adaptive_gate_never_exactly_saturates(tiny_config, tiny_vocabs):
    model = _acnn(tiny_config, tiny_vocabs).eval()
    d = Tensor(np.full((2, tiny_config.hidden_size), 1e6))
    c = Tensor(np.full((2, 2 * tiny_config.hidden_size), 1e6))
    y = Tensor(np.full((2, tiny_config.embedding_dim), 1e6))
    for sign in (1.0, -1.0):
        z = model.switch(d * sign, c * sign, y * sign).data
        assert np.all(z > 0.0) and np.all(z < 1.0)


def test_fixed_switch_extremes_stay_exact(tiny_config, tiny_vocabs):
    """0/1 fixed gates are deliberate ablations (pure attention / pure
    copy) and must NOT be touched by the saturation guard."""
    rng = np.random.default_rng(9)
    d = Tensor(rng.standard_normal((2, tiny_config.hidden_size)))
    c = Tensor(rng.standard_normal((2, 2 * tiny_config.hidden_size)))
    y = Tensor(rng.standard_normal((2, tiny_config.embedding_dim)))
    for value in (0.0, 1.0):
        model = _acnn(tiny_config, tiny_vocabs, switch_mode="fixed", fixed_switch=value)
        np.testing.assert_array_equal(model.switch(d, c, y).data, value)
