"""Tests for the answer-position feature extension (Zhou et al. 2017)."""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.data.dataset import _find_span
from repro.models import build_model
from repro.optim import SGD


def test_find_span_basic():
    assert _find_span(("a", "b", "c", "d"), ("b", "c")) == (1, 2)


def test_find_span_absent():
    assert _find_span(("a", "b"), ("x",)) == ()


def test_find_span_empty_needle():
    assert _find_span(("a",), ()) == ()


def test_find_span_needle_longer_than_haystack():
    assert _find_span(("a",), ("a", "b")) == ()


def test_find_span_first_occurrence():
    assert _find_span(("x", "a", "x", "a"), ("a",)) == (1,)


def _answer_example():
    return QGExample(
        sentence=tuple("zorvex was born in karlin .".split()),
        paragraph=tuple("zorvex was born in karlin .".split()),
        question=tuple("where was zorvex born ?".split()),
        answer=("karlin",),
    )


def _dataset():
    example = _answer_example()
    encoder = Vocabulary.build([example.sentence])
    decoder = Vocabulary(["where", "was", "born", "?"])
    return QGDataset([example], encoder, decoder)


def test_encoded_answer_positions():
    encoded = _dataset()[0]
    assert encoded.answer_positions == (4,)
    assert encoded.src_tokens[4] == "karlin"


def test_batch_answer_mask():
    dataset = _dataset()
    batch = collate(list(dataset), pad_id=0)
    expected = np.zeros(batch.src.shape[1])
    expected[4] = 1.0
    assert np.allclose(batch.answer_mask[0], expected)


@pytest.mark.parametrize("family", ["du-attention", "acnn"])
def test_answer_feature_model_trains(family, tiny_config, tiny_vocabs, tiny_batch):
    encoder, decoder = tiny_vocabs
    model = build_model(
        family, tiny_config, len(encoder), len(decoder), use_answer_features=True
    )
    names = {name for name, _ in model.named_parameters()}
    assert "answer_embedding.weight" in names

    optimizer = SGD(model.parameters(), lr=0.3)
    first = model.loss(tiny_batch)
    assert np.isfinite(first.item())
    first.backward()
    optimizer.step()
    model.zero_grad()
    assert model.loss(tiny_batch).item() < first.item()


def test_answer_features_change_encoding(tiny_config, tiny_vocabs, tiny_batch):
    """With a nonzero answer mask, the tag embedding must alter the encoder."""
    encoder, decoder = tiny_vocabs
    model = build_model(
        "acnn", tiny_config, len(encoder), len(decoder), use_answer_features=True
    ).eval()
    from repro.tensor import no_grad
    import dataclasses

    with no_grad():
        base = model.encode(tiny_batch).encoder_states.data.copy()
        flipped = dataclasses.replace(
            tiny_batch, answer_mask=1.0 - tiny_batch.answer_mask
        )
        other = model.encode(flipped).encoder_states.data
    assert not np.allclose(base, other)


def test_answer_feature_dim_validation(tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    with pytest.raises(ValueError):
        build_model(
            "du-attention", tiny_config, len(encoder), len(decoder),
            use_answer_features=True, answer_feature_dim=0,
        )


def test_answer_feature_beam_decoding(tiny_config, tiny_vocabs, tiny_batch):
    from repro.decoding import beam_decode

    encoder, decoder = tiny_vocabs
    model = build_model(
        "acnn", tiny_config, len(encoder), len(decoder), use_answer_features=True
    )
    hyps = beam_decode(model, tiny_batch, beam_size=2, max_length=6)
    assert len(hyps) == tiny_batch.size
