"""Shared fixtures for model tests: a tiny corpus, vocabs, and batches."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary, collate
from repro.models import ModelConfig


@pytest.fixture(scope="session")
def tiny_examples():
    sentences = [
        "zorvex was born in karlin in 1887 .",
        "the velkin tower was designed by mirosta .",
        "quenlib acquired fenora for 250 million dollars in 1999 .",
        "draxby is the capital and largest city of ostavia .",
    ]
    questions = [
        "where was zorvex born ?",
        "who designed the velkin tower ?",
        "how much did quenlib pay to acquire fenora ?",
        "what is the capital of ostavia ?",
    ]
    return [
        QGExample(
            sentence=tuple(s.split()),
            paragraph=tuple((s + " trade grew along the coast . the town is very old .").split()),
            question=tuple(q.split()),
        )
        for s, q in zip(sentences, questions)
    ]


@pytest.fixture(scope="session")
def tiny_vocabs(tiny_examples):
    encoder = Vocabulary.build([ex.paragraph for ex in tiny_examples])
    # Keep entity names OUT of the decoder vocab so copying is required.
    decoder = Vocabulary(
        ["where", "was", "born", "?", "who", "designed", "the", "how", "much",
         "did", "pay", "to", "acquire", "what", "is", "capital", "of", "tower"]
    )
    return encoder, decoder


@pytest.fixture(scope="session")
def tiny_dataset(tiny_examples, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    return QGDataset(tiny_examples, encoder, decoder)


@pytest.fixture(scope="session")
def tiny_batch(tiny_dataset):
    return collate(list(tiny_dataset), pad_id=0)


@pytest.fixture(scope="session")
def tiny_config():
    return ModelConfig(embedding_dim=12, hidden_size=10, num_layers=2, dropout=0.0, seed=3)
