"""Seq2Seq-baseline-specific tests."""

import numpy as np

from repro.models import Seq2SeqBaseline, build_model
from repro.tensor import no_grad


def _model(tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    return build_model("seq2seq", tiny_config, len(encoder), len(decoder))


def test_decoder_initialized_from_encoder_final_states(tiny_config, tiny_vocabs, tiny_batch):
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        # Initial decoder states are exactly the encoder's final states.
        embedded = model.encoder_embedding(tiny_batch.src)
        _, final_states = model.encoder(embedded, pad_mask=tiny_batch.src_pad_mask)
    for (h_ctx, c_ctx), (h_ref, c_ref) in zip(context.initial_states, final_states):
        assert np.allclose(h_ctx.data, h_ref.data)
        assert np.allclose(c_ctx.data, c_ref.data)


def test_no_attention_parameters(tiny_config, tiny_vocabs):
    model = _model(tiny_config, tiny_vocabs)
    names = {name for name, _ in model.named_parameters()}
    assert not any("attention" in name for name in names)
    assert not any("copy" in name for name in names)


def test_output_depends_only_on_prefix_not_source_content(tiny_config, tiny_vocabs, tiny_batch):
    """Without attention, two sources with equal final encoder state behave
    identically — here we just verify the distribution ignores source
    padding beyond the final state (sanity of the architecture)."""
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        prev = np.full(context.batch_size, 2, dtype=np.int64)
        lp1, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
        # Mutating encoder_states must not change the step (no attention).
        context.encoder_states.data[...] = 0.0
        lp2, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    assert np.allclose(lp1, lp2)


def test_oov_slots_get_zero_probability(tiny_config, tiny_vocabs, tiny_batch):
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        prev = np.full(context.batch_size, 2, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    if context.max_oov:
        assert np.all(np.exp(log_probs[:, model.decoder_vocab_size:]) == 0.0)


def test_describe_mentions_no_attention(tiny_config, tiny_vocabs):
    text = _model(tiny_config, tiny_vocabs).describe()
    assert "attention: none" in text
    assert isinstance(_model(tiny_config, tiny_vocabs), Seq2SeqBaseline)
