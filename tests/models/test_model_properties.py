"""Hypothesis property tests on model-level invariants.

Across randomly drawn tiny architectures and corpora:

- every model's step distribution is a proper probability distribution over
  the extended vocabulary;
- the ACNN mixture respects the switch gate's bounds;
- losses are finite and positive;
- encoding is deterministic in eval mode.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.data.vocabulary import BOS_ID
from repro.models import ModelConfig, build_model
from repro.tensor import no_grad

_WORDS = ["alpha", "bravo", "ostavia", "karlin", "zorvex", "tower", "river", "1887"]
_QWORDS = ["where", "what", "who", "is", "was", "the", "?"]


@st.composite
def tiny_problem(draw):
    """A random tiny (model config, batch) pair."""
    num_examples = draw(st.integers(1, 3))
    examples = []
    for _ in range(num_examples):
        sent_len = draw(st.integers(2, 6))
        q_len = draw(st.integers(2, 5))
        sentence = tuple(draw(st.sampled_from(_WORDS)) for _ in range(sent_len))
        question = tuple(draw(st.sampled_from(_WORDS + _QWORDS)) for _ in range(q_len))
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(_QWORDS + [draw(st.sampled_from(_WORDS))])
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    config = ModelConfig(
        embedding_dim=draw(st.integers(2, 8)),
        hidden_size=draw(st.integers(2, 8)),
        num_layers=draw(st.integers(1, 2)),
        dropout=0.0,
        seed=draw(st.integers(0, 100)),
    )
    family = draw(st.sampled_from(["seq2seq", "du-attention", "acnn"]))
    return family, config, len(encoder), len(decoder), batch


@given(tiny_problem())
@settings(max_examples=25, deadline=None)
def test_step_distribution_is_normalized(problem):
    family, config, enc_size, dec_size, batch = problem
    model = build_model(family, config, enc_size, dec_size).eval()
    with no_grad():
        context = model.encode(batch)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    probs = np.exp(log_probs)
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)


@given(tiny_problem())
@settings(max_examples=25, deadline=None)
def test_loss_is_finite_positive(problem):
    family, config, enc_size, dec_size, batch = problem
    model = build_model(family, config, enc_size, dec_size)
    value = model.loss(batch).item()
    assert np.isfinite(value)
    assert value > 0


@given(tiny_problem())
@settings(max_examples=15, deadline=None)
def test_eval_mode_deterministic(problem):
    family, config, enc_size, dec_size, batch = problem
    model = build_model(family, config, enc_size, dec_size).eval()
    with no_grad():
        a = model.loss(batch).item()
        b = model.loss(batch).item()
    assert a == b


@given(tiny_problem(), st.floats(0.0, 1.0))
@settings(max_examples=15, deadline=None)
def test_acnn_oov_mass_bounded_by_gate(problem, fixed_z):
    """With a frozen gate z, the total copy-region mass can never exceed z."""
    _, config, enc_size, dec_size, batch = problem
    model = build_model(
        "acnn", config, enc_size, dec_size, switch_mode="fixed", fixed_switch=fixed_z
    ).eval()
    with no_grad():
        context = model.encode(batch)
        prev = np.full(context.batch_size, BOS_ID, dtype=np.int64)
        log_probs, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    oov_mass = np.exp(log_probs[:, dec_size:]).sum(axis=1)
    assert np.all(oov_mass <= fixed_z + 1e-9)


@given(tiny_problem())
@settings(max_examples=10, deadline=None)
def test_backward_populates_all_gradients(problem):
    family, config, enc_size, dec_size, batch = problem
    model = build_model(family, config, enc_size, dec_size)
    model.loss(batch).backward()
    missing = [name for name, p in model.named_parameters() if p.grad is None]
    assert not missing, missing
