"""Du-attention-baseline-specific tests."""

import numpy as np

from repro.models import DuAttentionModel, build_model
from repro.tensor import no_grad


def _model(tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    return build_model("du-attention", tiny_config, len(encoder), len(decoder))


def test_bridge_produces_decoder_sized_states(tiny_config, tiny_vocabs, tiny_batch):
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
    assert len(context.initial_states) == tiny_config.num_layers
    for h, c in context.initial_states:
        assert h.shape == (tiny_batch.size, tiny_config.hidden_size)
        assert c.shape == (tiny_batch.size, tiny_config.hidden_size)
        # tanh bridge keeps states bounded.
        assert np.all(np.abs(h.data) <= 1.0)
        assert np.all(np.abs(c.data) <= 1.0)


def test_encoder_states_are_bidirectional_width(tiny_config, tiny_vocabs, tiny_batch):
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
    assert context.encoder_states.shape == (
        tiny_batch.size,
        tiny_batch.src.shape[1],
        2 * tiny_config.hidden_size,
    )


def test_source_content_changes_distribution(tiny_config, tiny_vocabs, tiny_batch):
    """Unlike the Seq2Seq baseline, attention reads the encoder states."""
    model = _model(tiny_config, tiny_vocabs).eval()
    with no_grad():
        context = model.encode(tiny_batch)
        prev = np.full(context.batch_size, 2, dtype=np.int64)
        lp1, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
        context.encoder_states.data[...] *= 2.0
        lp2, _ = model.step_log_probs(prev, model.initial_decoder_state(context), context)
    assert not np.allclose(lp1, lp2)


def test_no_copy_parameters(tiny_config, tiny_vocabs):
    names = {name for name, _ in _model(tiny_config, tiny_vocabs).named_parameters()}
    assert not any("copy" in name for name in names)
    assert not any("switch" in name for name in names)
    assert any(name.startswith("attention") for name in names)


def test_bridge_parameters_per_layer(tiny_config, tiny_vocabs):
    names = {name for name, _ in _model(tiny_config, tiny_vocabs).named_parameters()}
    for layer in range(tiny_config.num_layers):
        assert f"bridge_h_{layer}.weight" in names
        assert f"bridge_c_{layer}.weight" in names


def test_is_du_class(tiny_config, tiny_vocabs):
    model = _model(tiny_config, tiny_vocabs)
    assert isinstance(model, DuAttentionModel)
    assert type(model) is DuAttentionModel  # not the ACNN subclass
