"""The ACNN extensions must compose: coverage + answer tags + scheduled
sampling together, through training and beam decoding."""

import numpy as np

from repro.decoding import beam_decode, greedy_decode
from repro.models import build_model
from repro.optim import SGD, clip_grad_norm


def _full_acnn(tiny_config, tiny_vocabs):
    encoder, decoder = tiny_vocabs
    return build_model(
        "acnn",
        tiny_config,
        len(encoder),
        len(decoder),
        use_coverage=True,
        coverage_loss_weight=0.5,
        use_answer_features=True,
        scheduled_sampling_rate=0.2,
    )


def test_composed_model_registers_all_extension_parameters(tiny_config, tiny_vocabs):
    model = _full_acnn(tiny_config, tiny_vocabs)
    names = {name for name, _ in model.named_parameters()}
    assert "attention.coverage_weight" in names
    assert "answer_embedding.weight" in names
    assert "switch_d" in names
    assert "copy_projection.weight" in names


def test_composed_model_trains(tiny_config, tiny_vocabs, tiny_batch):
    model = _full_acnn(tiny_config, tiny_vocabs)
    optimizer = SGD(model.parameters(), lr=0.5)
    losses = []
    for _ in range(6):
        loss = model.loss(tiny_batch)
        losses.append(loss.item())
        assert np.isfinite(losses[-1])
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()
    assert losses[-1] < losses[0]


def test_composed_model_gradients_reach_every_parameter(tiny_config, tiny_vocabs, tiny_batch):
    model = _full_acnn(tiny_config, tiny_vocabs)
    model.loss(tiny_batch).backward()
    missing = [name for name, p in model.named_parameters() if p.grad is None]
    assert not missing, missing


def test_composed_model_decodes_both_ways(tiny_config, tiny_vocabs, tiny_batch):
    model = _full_acnn(tiny_config, tiny_vocabs)
    greedy = greedy_decode(model, tiny_batch, max_length=6)
    beam = beam_decode(model, tiny_batch, beam_size=3, max_length=6)
    assert len(greedy) == len(beam) == tiny_batch.size


def test_composed_describe_lists_everything(tiny_config, tiny_vocabs):
    text = _full_acnn(tiny_config, tiny_vocabs).describe()
    assert "coverage" in text
    assert "adaptive" in text
