"""Lazy execution mode: arena replay, graph staging, and the equivalence
contract (fusion on must be byte-identical to eager for forwards and
tolerance-pinned for backwards), plus the reentrancy-audited ``no_grad``.
"""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.decoding import batched_beam_decode
from repro.decoding.greedy import greedy_decode
from repro.models import ModelConfig, build_model
from repro.tensor import Tensor, no_grad
from repro.tensor.core import is_grad_enabled
from repro.tensor.lazy import (
    Arena,
    arena_fast_path,
    compile_graph,
    fusion_context,
    fusion_enabled,
    is_lazy_enabled,
    lazy,
    resolve_fusion,
    set_fusion_enabled,
    signature_of,
)
from repro.tensor.profiler import TapeProfile

_WORDS = ["zorvex", "karlin", "tower", "river", "1887", "ostavia", "velkin"]
_QWORDS = ["where", "what", "who", "is", "was", "the", "?"]


def _synthetic_batch(seed: int, num_examples: int = 4):
    rng = np.random.default_rng(seed)
    examples = []
    for _ in range(num_examples):
        sentence = tuple(rng.choice(_WORDS, size=rng.integers(3, 7)))
        question = tuple(rng.choice(_QWORDS, size=rng.integers(2, 5)))
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(_QWORDS)
    dataset = QGDataset(examples, encoder, decoder)
    return encoder, decoder, collate(list(dataset), pad_id=0)


def _model(family, encoder, decoder, seed=3, layers=2):
    config = ModelConfig(
        embedding_dim=8, hidden_size=10, num_layers=layers, dropout=0.0, seed=seed
    )
    return build_model(family, config, len(encoder), len(decoder))


# ---------------------------------------------------------------------------
# Arena
# ---------------------------------------------------------------------------
def test_arena_trace_then_replay():
    arena = Arena()
    first = arena.buffer("slot", (3, 4))
    again = arena.buffer("slot", (3, 4))
    assert first is again
    assert arena.stats() == {"slots": 1, "hits": 1, "misses": 1, "nbytes": first.nbytes}


def test_arena_rotate_ping_pongs():
    arena = Arena()
    a = arena.buffer("state", (2, 2), rotate=2)
    b = arena.buffer("state", (2, 2), rotate=2)
    c = arena.buffer("state", (2, 2), rotate=2)
    assert a is not b
    assert a is c  # cycle of two


def test_arena_distinguishes_key_shape_dtype():
    arena = Arena()
    assert arena.buffer("k", (2,)) is not arena.buffer("k2", (2,))
    assert arena.buffer("k", (2,)) is not arena.buffer("k", (3,))
    assert arena.buffer("k", (2,)) is not arena.buffer("k", (2,), dtype=np.float32)


def test_arena_reset_starts_new_trace():
    arena = Arena()
    arena.buffer("x", (2,))
    arena.reset()
    assert arena.stats()["slots"] == 0
    arena.buffer("x", (2,))
    assert arena.misses == 2


def test_tape_profile_counts_arena_traffic():
    arena = Arena()
    with TapeProfile() as profile:
        arena.buffer("x", (4,))
        arena.buffer("x", (4,))
    assert profile.arena_misses == 1
    assert profile.arena_hits == 1
    assert profile.arena_bytes == 4 * 8


# ---------------------------------------------------------------------------
# Mode plumbing: contexts, defaults, fast-path gating
# ---------------------------------------------------------------------------
def test_lazy_context_and_decorator():
    assert not is_lazy_enabled()
    with lazy():
        assert is_lazy_enabled()
        with lazy():  # nests
            assert is_lazy_enabled()
        assert is_lazy_enabled()
    assert not is_lazy_enabled()

    @lazy()
    def staged():
        return is_lazy_enabled()

    assert staged()
    assert not is_lazy_enabled()


def test_lazy_exception_safe():
    with pytest.raises(RuntimeError):
        with lazy():
            raise RuntimeError("boom")
    assert not is_lazy_enabled()


def test_fast_path_requires_no_grad_and_no_anomaly():
    from repro.tensor import detect_anomaly

    assert arena_fast_path() is None
    with lazy() as ctx:
        # grad enabled by default -> node fusion only, no raw arena
        assert arena_fast_path() is None
        with no_grad():
            assert arena_fast_path() is ctx.arena
            with detect_anomaly(emit_telemetry=False):
                assert arena_fast_path() is None
            assert arena_fast_path() is ctx.arena


def test_fusion_default_off_and_resolution():
    assert not fusion_enabled()  # zero behavior change out of the box
    assert resolve_fusion(None) is False
    assert resolve_fusion(True) is True
    previous = set_fusion_enabled(True)
    try:
        assert previous is False
        assert resolve_fusion(None) is True
        assert resolve_fusion(False) is False
    finally:
        set_fusion_enabled(False)


def test_fusion_context_is_noop_when_off_or_nested():
    from contextlib import nullcontext

    assert isinstance(fusion_context(), nullcontext)  # off -> no-op
    assert isinstance(fusion_context(True), lazy)
    with lazy():
        # already staged: inner loops share the outer arena
        assert isinstance(fusion_context(True), nullcontext)


# ---------------------------------------------------------------------------
# Shape signatures and compile_graph
# ---------------------------------------------------------------------------
def test_signature_distinguishes_shapes_and_scalars():
    a = signature_of(Tensor(np.zeros((2, 3))), beam=3)
    b = signature_of(Tensor(np.zeros((2, 3))), beam=3)
    c = signature_of(Tensor(np.zeros((2, 4))), beam=3)
    d = signature_of(Tensor(np.zeros((2, 3))), beam=5)
    assert a == b
    assert a != c
    assert a != d


def test_compile_graph_traces_once_per_signature():
    calls = []

    @compile_graph
    def step(x):
        calls.append(x.shape)
        assert is_lazy_enabled()
        arena = arena_fast_path()
        buf = arena.buffer("out", x.shape)
        np.multiply(x, 2.0, out=buf)
        return buf

    with no_grad():
        first = step(np.ones((2, 2)))
        second = step(np.ones((2, 2)))
        assert first is second  # replayed through the same buffer
        step(np.ones((3, 2)))  # new signature -> new buffer plan
    assert step.arena.misses == 2
    assert step.arena.hits == 1
    assert step.signatures[signature_of(np.ones((2, 2)))] == 2


# ---------------------------------------------------------------------------
# Equivalence contract: fusion on == fusion off, byte for byte
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", ["seq2seq", "du-attention", "acnn"])
def test_beam_decode_fusion_byte_identical(family):
    encoder, decoder, batch = _synthetic_batch(seed=11)
    model = _model(family, encoder, decoder)
    off = batched_beam_decode(model, batch, beam_size=3, max_length=10)
    on = batched_beam_decode(model, batch, beam_size=3, max_length=10, fusion=True)
    assert [h.token_ids for h in off] == [h.token_ids for h in on]
    assert [h.log_prob for h in off] == [h.log_prob for h in on]  # exact
    assert [h.finished for h in off] == [h.finished for h in on]


@pytest.mark.parametrize("family", ["seq2seq", "du-attention", "acnn"])
def test_greedy_decode_fusion_byte_identical(family):
    encoder, decoder, batch = _synthetic_batch(seed=5)
    model = _model(family, encoder, decoder, layers=3)  # stacked cells share shapes
    off = greedy_decode(model, batch, max_length=10)
    on = greedy_decode(model, batch, max_length=10, fusion=True)
    assert [h.token_ids for h in off] == [h.token_ids for h in on]
    assert [h.log_prob for h in off] == [h.log_prob for h in on]


def test_coverage_model_keeps_eager_attention_but_matches():
    encoder, decoder, batch = _synthetic_batch(seed=23)
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=7)
    model = build_model("acnn", config, len(encoder), len(decoder), use_coverage=True)
    off = batched_beam_decode(model, batch, beam_size=3, max_length=8)
    on = batched_beam_decode(model, batch, beam_size=3, max_length=8, fusion=True)
    assert [h.token_ids for h in off] == [h.token_ids for h in on]
    assert [h.log_prob for h in off] == [h.log_prob for h in on]


@pytest.mark.parametrize("family", ["seq2seq", "du-attention", "acnn"])
def test_loss_and_gradients_match_under_fusion(family):
    encoder, decoder, batch = _synthetic_batch(seed=7)
    eager_model = _model(family, encoder, decoder)
    fused_model = _model(family, encoder, decoder)

    eager_loss = eager_model.loss(batch)
    eager_loss.backward()
    with lazy():
        fused_loss = fused_model.loss(batch)
        fused_loss.backward()

    assert eager_loss.item() == fused_loss.item()  # forward byte-identical
    for p_eager, p_fused in zip(eager_model.parameters(), fused_model.parameters()):
        if p_eager.grad is None:
            assert p_fused.grad is None
            continue
        # Backwards are tolerance-pinned: the hand-written fused backward
        # sums in a different order than the elementary chain.
        np.testing.assert_allclose(p_fused.grad, p_eager.grad, rtol=1e-10, atol=1e-12)


def test_trainer_config_fusion_flag_matches_eager():
    from repro.data.batching import BatchIterator
    from repro.training import Trainer, TrainerConfig

    rng = np.random.default_rng(19)
    examples = []
    for _ in range(4):
        sentence = tuple(rng.choice(_WORDS, size=rng.integers(3, 7)))
        question = tuple(rng.choice(_QWORDS, size=rng.integers(2, 5)))
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(_QWORDS)
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)

    def run(fusion):
        model = _model("acnn", encoder, decoder, seed=3)
        trainer = Trainer(
            model,
            BatchIterator(dataset, batch_size=4, seed=1),
            config=TrainerConfig(epochs=1, fusion=fusion),
        )
        return trainer.train_batch(batch)

    loss_off, norm_off = run(False)
    loss_on, norm_on = run(True)
    assert loss_off == loss_on
    np.testing.assert_allclose(norm_on, norm_off, rtol=1e-10)


# ---------------------------------------------------------------------------
# Node budget / allocation behavior of replayed steps
# ---------------------------------------------------------------------------
def test_replayed_decode_allocates_nothing_after_trace():
    """After the first step per shape signature, steps are pure replay:
    zero tape nodes and zero new arena buffers (O(1) — in fact 0 — graph
    work per step)."""
    encoder, decoder, batch = _synthetic_batch(seed=3)
    model = _model("acnn", encoder, decoder)
    with TapeProfile() as profile:
        batched_beam_decode(model, batch, beam_size=3, max_length=12, fusion=True)
    assert profile.nodes == 0  # inference tape stays empty
    assert profile.arena_hits > 0  # steps actually replayed
    assert profile.arena_misses > 0  # ... after a trace phase

    # Decode again with identical shapes through a shared compiled step:
    # every step must be a pure arena replay (no new allocations at all).
    step = compile_graph(model.step_log_probs)
    model.eval()
    with no_grad():
        context = model.encode(batch)
        from repro.models.base import expand_encoder_context

        expanded = expand_encoder_context(context, 3)
        state = model.initial_decoder_state(expanded)
        prev = np.zeros(batch.size * 3, dtype=np.int64)
        # Trace phase: the first call allocates every slot, the second
        # fills the other half of each rotate=2 ping-pong slot.
        _, state = step(prev, state, expanded)
        _, state = step(prev, state, expanded)
        trace_misses = step.arena.misses
        with TapeProfile() as replay_profile:
            for _ in range(5):
                _, state = step(prev, state, expanded)
    assert step.arena.misses == trace_misses  # no allocation growth
    assert replay_profile.arena_misses == 0
    assert replay_profile.arena_hits > 0
    assert replay_profile.nodes == 0


def test_fused_training_step_has_constant_node_budget():
    """Under fusion each decoder step adds a fixed small number of tape
    nodes regardless of how many elementary ops the chains would take."""
    encoder, decoder, batch = _synthetic_batch(seed=13)
    time_steps = batch.tgt_input.shape[1]

    model_eager = _model("acnn", encoder, decoder)
    with TapeProfile() as eager_profile:
        model_eager.loss(batch)

    model_fused = _model("acnn", encoder, decoder)
    with TapeProfile() as fused_profile, lazy():
        model_fused.loss(batch)

    assert fused_profile.nodes < eager_profile.nodes
    # The fused chains replace ~15 elementary nodes per step (attention ~10
    # + copy chain ~4) with 2; everything else is unchanged.
    saved_per_step = (eager_profile.nodes - fused_profile.nodes) / time_steps
    assert saved_per_step >= 8


# ---------------------------------------------------------------------------
# no_grad: decorator form, nesting, exception safety (reentrancy audit)
# ---------------------------------------------------------------------------
def test_no_grad_as_decorator():
    @no_grad()
    def compute(x):
        assert not is_grad_enabled()
        return x * 2.0

    x = Tensor(np.ones(3), requires_grad=True)
    out = compute(x)
    assert is_grad_enabled()
    assert not out.requires_grad


def test_no_grad_nested_and_exception_safe():
    assert is_grad_enabled()
    with pytest.raises(ValueError):
        with no_grad():
            with no_grad():
                raise ValueError("inner")
    assert is_grad_enabled()


def test_no_grad_single_instance_reentrant():
    guard = no_grad()
    with guard:
        assert not is_grad_enabled()
        with guard:  # reusing one instance must still restore correctly
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()
