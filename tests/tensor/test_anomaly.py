"""Tests for tape-level anomaly detection and op provenance."""

import numpy as np
import pytest

from repro.observability import MemorySink, Telemetry, use_telemetry
from repro.tensor import (
    NumericalAnomaly,
    Tensor,
    detect_anomaly,
    exp,
    is_anomaly_enabled,
    log,
    provenance_of,
    softmax,
    sqrt,
    tanh,
)


def test_disabled_by_default():
    assert not is_anomaly_enabled()
    x = Tensor(np.array([-1.0]), requires_grad=True)
    out = log(x)  # produces nan silently when the mode is off
    assert np.isnan(out.data[0])
    assert provenance_of(out) is None


def test_context_toggles_flag():
    with detect_anomaly():
        assert is_anomaly_enabled()
    assert not is_anomaly_enabled()


def test_forward_nan_names_culprit_op():
    x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        with pytest.raises(NumericalAnomaly) as excinfo:
            log(x)
    anomaly = excinfo.value
    assert anomaly.op == "log"
    assert anomaly.phase == "forward"
    assert anomaly.kind == "nan"
    assert "test_anomaly.py" in anomaly.record.site


def test_forward_inf_detected():
    x = Tensor(np.array([1000.0]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        with pytest.raises(NumericalAnomaly) as excinfo:
            exp(x)
    assert excinfo.value.op == "exp"
    assert excinfo.value.kind == "inf"


def test_causal_chain_tracks_producers():
    x = Tensor(np.array([500.0]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        with pytest.raises(NumericalAnomaly) as excinfo:
            doubled = x * 2.0
            exp(doubled)  # exp(1000) -> inf
    chain_ops = [record.op for record in excinfo.value.chain]
    assert chain_ops[0] == "exp"
    assert "__mul__" in chain_ops


def test_backward_anomaly_attributed_to_op():
    # sqrt'(0) = 0.5 / 0 = inf: forward is clean, backward mints the inf.
    x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        out = sqrt(x).sum()
        with pytest.raises(NumericalAnomaly) as excinfo:
            out.backward()
    anomaly = excinfo.value
    assert anomaly.phase == "backward"
    assert anomaly.kind == "inf"
    assert anomaly.op == "sqrt"


def test_check_backward_only():
    x = Tensor(np.array([-1.0]), requires_grad=True)
    with detect_anomaly(check_forward=False, emit_telemetry=False):
        out = log(x)  # nan allowed through
        assert np.isnan(out.data[0])


def test_clean_graph_raises_nothing():
    x = Tensor(np.array([0.5, -0.5]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        loss = (tanh(x) * tanh(x)).sum()
        loss.backward()
    assert np.isfinite(x.grad).all()


def test_provenance_recorded_inside_context():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        out = softmax(x, axis=-1)
    record = provenance_of(out)
    assert record is not None
    assert record.op == "softmax"
    assert record.output_shape == (2,)


def test_poisoned_input_noted_in_message():
    x = Tensor(np.array([np.nan]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        with pytest.raises(NumericalAnomaly, match="already non-finite"):
            x * 2.0


def test_telemetry_emission():
    sink = MemorySink()
    hub = Telemetry([sink])
    x = Tensor(np.array([-1.0]), requires_grad=True)
    with use_telemetry(hub):
        with detect_anomaly():
            with pytest.raises(NumericalAnomaly):
                log(x)
    markers = [r for r in sink.of_kind("run") if r["name"] == "anomaly"]
    assert len(markers) == 1
    payload = markers[0]["data"]
    assert payload["op"] == "log"
    assert payload["phase"] == "forward"
    assert payload["chain"]
    counters = [r for r in sink.of_kind("counter") if r["name"] == "anomaly.forward"]
    assert counters


def test_nested_contexts_do_not_interfere():
    x = Tensor(np.array([-1.0]), requires_grad=True)
    with detect_anomaly(emit_telemetry=False):
        with detect_anomaly(emit_telemetry=False):
            with pytest.raises(NumericalAnomaly):
                log(x)
        assert is_anomaly_enabled()
    assert not is_anomaly_enabled()


def test_scatter_overflow_in_indexed_accumulation_detected():
    """Regression: embedding/gather backwards write into the sparse grad
    buffer with ``np.add.at``, bypassing ``_accumulate_grad``. Each incoming
    gradient here is finite, so the per-node check passes — the inf is
    *minted inside the accumulation* (two ~1e308 updates at one row).
    The seed code raised nothing and silently poisoned the buffer; the
    scatter path must check the written region."""
    from repro.tensor import embedding_lookup

    weight = Tensor(np.zeros((4, 2)), requires_grad=True)
    out = embedding_lookup(weight, np.array([1, 1]))  # duplicate row
    with detect_anomaly(emit_telemetry=False):
        with pytest.raises(NumericalAnomaly) as excinfo:
            with np.errstate(over="ignore"):
                out.backward(np.full((2, 2), 1e308))
    assert excinfo.value.kind == "inf"
    assert excinfo.value.phase == "backward"


def test_scatter_checks_incoming_gradient_too():
    """A NaN arriving at the scatter site is reported even when the target
    buffer write alone would mask it (NaN + 0 scatter regions)."""
    from repro.tensor import gather_rows

    x = Tensor(np.zeros((3, 4)), requires_grad=True)
    picked = gather_rows(x, np.array([0, 2, 1]))
    seed = np.array([1.0, np.nan, 1.0])
    with detect_anomaly(emit_telemetry=False):
        with pytest.raises(NumericalAnomaly) as excinfo:
            picked.backward(seed)
    assert excinfo.value.kind == "nan"


def test_slice_backward_through_checked_scatter():
    """Basic-slice backwards also route through the checked scatter path
    and stay correct (values accumulate exactly as before the fix)."""
    x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    (x[:, 1:] * 2.0).sum().backward()
    np.testing.assert_array_equal(x.grad, [[0.0, 2.0, 2.0], [0.0, 2.0, 2.0]])
