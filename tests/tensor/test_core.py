"""Unit tests for the autograd core: Tensor arithmetic, broadcasting, tape."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, no_grad


def test_add_forward_and_backward():
    a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
    b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
    out = (a + b).sum()
    out.backward()
    assert np.allclose(out.data, 66.0)
    assert np.allclose(a.grad, [1.0, 1.0, 1.0])
    assert np.allclose(b.grad, [1.0, 1.0, 1.0])


def test_sub_backward_negates_second_operand():
    a = Tensor([4.0], requires_grad=True)
    b = Tensor([1.0], requires_grad=True)
    (a - b).sum().backward()
    assert np.allclose(a.grad, [1.0])
    assert np.allclose(b.grad, [-1.0])


def test_mul_backward_is_cross_term():
    a = Tensor([2.0, 3.0], requires_grad=True)
    b = Tensor([5.0, 7.0], requires_grad=True)
    (a * b).sum().backward()
    assert np.allclose(a.grad, [5.0, 7.0])
    assert np.allclose(b.grad, [2.0, 3.0])


def test_div_gradcheck():
    a = Tensor([2.0, 3.0, -1.5], requires_grad=True)
    b = Tensor([5.0, -7.0, 2.0], requires_grad=True)
    check_gradients(lambda: (a / b).sum(), [a, b])


def test_scalar_operand_promotion():
    a = Tensor([1.0, 2.0], requires_grad=True)
    out = (2.0 * a + 1.0 - 0.5).sum()
    out.backward()
    assert np.allclose(a.grad, [2.0, 2.0])
    assert np.allclose(out.data, 7.0)


def test_pow_gradcheck():
    a = Tensor([2.0, 3.0, 0.5], requires_grad=True)
    check_gradients(lambda: (a ** 3).sum(), [a])


def test_neg_backward():
    a = Tensor([1.0, -2.0], requires_grad=True)
    (-a).sum().backward()
    assert np.allclose(a.grad, [-1.0, -1.0])


def test_broadcast_add_unbroadcasts_gradient():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones((4,)), requires_grad=True)
    (a + b).sum().backward()
    assert a.grad.shape == (3, 4)
    assert b.grad.shape == (4,)
    assert np.allclose(b.grad, 3.0)


def test_broadcast_keepdim_axis():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones((3, 1)), requires_grad=True)
    (a * b).sum().backward()
    assert b.grad.shape == (3, 1)
    assert np.allclose(b.grad, 4.0)


def test_matmul_2d_gradcheck():
    rng = np.random.default_rng(0)
    a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
    check_gradients(lambda: (a @ b).sum(), [a, b])


def test_matmul_matrix_vector_gradcheck():
    rng = np.random.default_rng(1)
    a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    v = Tensor(rng.standard_normal(4), requires_grad=True)
    check_gradients(lambda: (a @ v).sum(), [a, v])


def test_matmul_vector_vector_gradcheck():
    rng = np.random.default_rng(2)
    a = Tensor(rng.standard_normal(5), requires_grad=True)
    b = Tensor(rng.standard_normal(5), requires_grad=True)
    check_gradients(lambda: a @ b, [a, b])


def test_matmul_batched_with_shared_weight():
    rng = np.random.default_rng(3)
    x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
    w = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
    check_gradients(lambda: (x @ w).sum(), [x, w])


def test_sum_axis_and_keepdims():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    out = a.sum(axis=1, keepdims=True)
    assert out.shape == (2, 1)
    out.sum().backward()
    assert np.allclose(a.grad, np.ones((2, 3)))


def test_mean_gradient_scales_by_count():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    a.mean().backward()
    assert np.allclose(a.grad, np.full((2, 3), 1.0 / 6.0))


def test_reshape_round_trip_gradient():
    a = Tensor(np.arange(6.0), requires_grad=True)
    (a.reshape(2, 3) * 2.0).sum().backward()
    assert np.allclose(a.grad, np.full(6, 2.0))


def test_transpose_gradient():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    scale = Tensor(np.arange(6.0).reshape(3, 2))
    (a.T * scale).sum().backward()
    assert np.allclose(a.grad, scale.data.T)


def test_getitem_slice_gradient():
    a = Tensor(np.arange(10.0), requires_grad=True)
    a[2:5].sum().backward()
    expected = np.zeros(10)
    expected[2:5] = 1.0
    assert np.allclose(a.grad, expected)


def test_getitem_repeated_fancy_index_accumulates():
    a = Tensor(np.arange(4.0), requires_grad=True)
    a[np.array([1, 1, 2])].sum().backward()
    assert np.allclose(a.grad, [0.0, 2.0, 1.0, 0.0])


def test_gradient_accumulates_across_reuse():
    a = Tensor([3.0], requires_grad=True)
    (a * a).sum().backward()
    assert np.allclose(a.grad, [6.0])


def test_diamond_graph_gradient():
    a = Tensor([2.0], requires_grad=True)
    b = a * 3.0
    c = a * 4.0
    (b + c).sum().backward()
    assert np.allclose(a.grad, [7.0])


def test_backward_on_non_grad_tensor_raises():
    a = Tensor([1.0])
    with pytest.raises(RuntimeError):
        a.backward()


def test_backward_seed_shape_mismatch_raises():
    a = Tensor([1.0, 2.0], requires_grad=True)
    out = a * 2.0
    with pytest.raises(ValueError):
        out.backward(np.ones(3))


def test_no_grad_blocks_graph_construction():
    a = Tensor([1.0], requires_grad=True)
    with no_grad():
        out = a * 2.0
    assert not out.requires_grad


def test_detach_cuts_graph():
    a = Tensor([1.0], requires_grad=True)
    out = (a.detach() * 2.0)
    assert not out.requires_grad
    assert out.data is not None


def test_item_on_scalar_and_error_on_vector():
    assert Tensor([5.0]).item() == 5.0
    with pytest.raises(ValueError):
        Tensor([1.0, 2.0]).item()


def test_integer_input_promoted_to_float():
    a = Tensor([1, 2, 3])
    assert a.dtype.kind == "f"


def test_zero_grad_clears():
    a = Tensor([1.0], requires_grad=True)
    (a * 2.0).sum().backward()
    assert a.grad is not None
    a.zero_grad()
    assert a.grad is None


def test_repr_contains_shape():
    assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))
