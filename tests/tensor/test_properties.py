"""Hypothesis property tests for the autodiff engine.

These verify algebraic identities of the tape (linearity of backward,
broadcasting correctness, softmax invariants) over randomly generated
shapes and values, and machine-check gradients of composed expressions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import tensor as T
from repro.tensor import Tensor, check_gradients

floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False, width=64)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=floats,
    )


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_sum_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))


@given(small_arrays(), floats)
@settings(max_examples=50, deadline=None)
def test_scalar_mul_gradient_is_scalar(data, scalar):
    x = Tensor(data, requires_grad=True)
    (x * scalar).sum().backward()
    assert np.allclose(x.grad, np.full_like(data, scalar))


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_add_self_doubles_gradient(data):
    x = Tensor(data, requires_grad=True)
    (x + x).sum().backward()
    assert np.allclose(x.grad, np.full_like(data, 2.0))


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_tanh_gradcheck_random_shapes(data):
    x = Tensor(data, requires_grad=True)
    check_gradients(lambda: T.tanh(x).sum(), [x], rtol=1e-3, atol=1e-5)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_softmax_output_is_probability_distribution(data):
    out = T.softmax(Tensor(data), axis=-1).data
    assert np.all(out >= 0.0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@given(small_arrays(), floats)
@settings(max_examples=30, deadline=None)
def test_softmax_shift_invariance(data, shift):
    base = T.softmax(Tensor(data), axis=-1).data
    shifted = T.softmax(Tensor(data + shift), axis=-1).data
    assert np.allclose(base, shifted, atol=1e-10)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_log_softmax_upper_bounded_by_zero(data):
    out = T.log_softmax(Tensor(data), axis=-1).data
    assert np.all(out <= 1e-12)


@given(
    arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=floats),
    arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=floats),
)
@settings(max_examples=30, deadline=None)
def test_matmul_matches_numpy(a_data, b_data):
    if a_data.shape[1] != b_data.shape[0]:
        b_data = np.resize(b_data, (a_data.shape[1], b_data.shape[1]))
    out = Tensor(a_data) @ Tensor(b_data)
    assert np.allclose(out.data, a_data @ b_data)


@given(st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_backward_linearity_in_seed(rows, cols):
    rng = np.random.default_rng(rows * 10 + cols)
    data = rng.standard_normal((rows, cols))
    seed = rng.standard_normal((rows, cols))

    x1 = Tensor(data, requires_grad=True)
    T.tanh(x1).backward(seed)
    x2 = Tensor(data, requires_grad=True)
    T.tanh(x2).backward(2.0 * seed)
    assert np.allclose(2.0 * x1.grad, x2.grad)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_composed_expression_gradcheck(data):
    x = Tensor(data, requires_grad=True)
    check_gradients(
        lambda: (T.sigmoid(x) * T.tanh(x) + x * 0.5).sum(),
        [x],
        rtol=1e-3,
        atol=1e-5,
    )


@given(small_arrays(max_dims=1, max_side=6))
@settings(max_examples=30, deadline=None)
def test_concat_then_split_is_identity(data):
    x = Tensor(data, requires_grad=True)
    y = Tensor(data.copy(), requires_grad=True)
    joined = T.concat([x, y], axis=0)
    assert np.allclose(joined.data[: len(data)], data)
    assert np.allclose(joined.data[len(data):], data)
