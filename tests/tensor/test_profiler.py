"""Tests for the tape profiler, incl. pinning the fused-LSTM node budget."""

import numpy as np

from repro.nn import LSTMCell
from repro.nn.functional import lstm_cell_step
from repro.tensor import TapeProfile, Tensor, no_grad
from repro.tensor.ops import tanh


def test_counts_nodes_and_elements():
    x = Tensor(np.ones((2, 3)), requires_grad=True)
    with TapeProfile() as profile:
        y = tanh(x)          # 1 node, 6 elements
        z = (y * 2.0).sum()  # mul node (6) + sum node (1)
    assert profile.nodes == 3
    assert profile.elements == 6 + 6 + 1


def test_no_grad_creates_no_nodes():
    x = Tensor(np.ones((2, 3)), requires_grad=True)
    with TapeProfile() as profile:
        with no_grad():
            tanh(x)
    assert profile.nodes == 0


def test_constant_inputs_create_no_nodes():
    x = Tensor(np.ones((2, 3)))  # requires_grad=False
    with TapeProfile() as profile:
        tanh(x)
    assert profile.nodes == 0


def test_profile_inactive_outside_context():
    x = Tensor(np.ones(2), requires_grad=True)
    with TapeProfile() as profile:
        tanh(x)
    tanh(x)  # outside: not counted
    assert profile.nodes == 1


def test_nested_profiles_both_count():
    x = Tensor(np.ones(2), requires_grad=True)
    with TapeProfile() as outer:
        tanh(x)
        with TapeProfile() as inner:
            tanh(x)
    assert inner.nodes == 1
    assert outer.nodes == 2


def test_fused_lstm_step_node_budget():
    """The fused cell must stay at 3 nodes per step (core + 2 slices).

    A refactor that silently re-expands the cell into elementary ops would
    blow this budget and the paragraph-scale training speed with it.
    """
    cell = LSTMCell(8, 8, np.random.default_rng(0))
    x = Tensor(np.ones((4, 8)), requires_grad=True)
    h, c = cell.initial_state(4)
    with TapeProfile() as profile:
        lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
    assert profile.nodes == 3


def test_reference_cell_is_much_larger():
    cell = LSTMCell(8, 8, np.random.default_rng(0))
    x = Tensor(np.ones((4, 8)), requires_grad=True)
    h, c = cell.initial_state(4)
    with TapeProfile() as profile:
        cell.forward_reference(x, (h, c))
    assert profile.nodes >= 10
