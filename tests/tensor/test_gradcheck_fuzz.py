"""Adversarial property-based fuzzing of the stabilized kernels.

Hypothesis drives the degenerate corners a hand-written test sweep misses:
extreme-magnitude logits, rows of identical values, exact-zero probability
rows, and fully/partially masked attention patterns. The property under
test is the stability contract of :func:`check_finite_gradients`: no input
in the op's documented domain may produce a non-finite output or gradient.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.loss import sequence_nll
from repro.nn.numerics import safe_div, safe_exp, safe_log, saturating_sigmoid
from repro.tensor import Tensor, check_finite_gradients, log_softmax, masked_fill, softmax

SETTINGS = settings(max_examples=30, deadline=None)

finite_logits = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 3), st.integers(1, 6)),
    elements=st.floats(
        min_value=-1e15, max_value=1e15, allow_nan=False, allow_infinity=False
    ),
)

probabilities = arrays(
    dtype=np.float64,
    shape=st.integers(1, 8),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def _grad_tensor(data):
    return Tensor(np.asarray(data, dtype=float), requires_grad=True)


@SETTINGS
@given(finite_logits)
def test_softmax_finite_on_extreme_logits(data):
    x = _grad_tensor(data)
    value = check_finite_gradients(lambda: (softmax(x, axis=-1) * 3.0).sum(), [x])
    assert 0.0 <= value <= 3.0 * data.shape[0] + 1e-9


@SETTINGS
@given(finite_logits)
def test_log_softmax_grads_finite_on_extreme_logits(data):
    x = _grad_tensor(data)
    # log-probabilities themselves may legitimately be very negative, so
    # the scalar reduced here is softmax-weighted (finite by construction).
    check_finite_gradients(
        lambda: (softmax(x, axis=-1) * log_softmax(x, axis=-1)).sum() * -1.0, [x]
    )


@SETTINGS
@given(finite_logits, st.data())
def test_masked_attention_rows_stay_finite(data, draw):
    """Rows with arbitrary masks — including fully-masked — stay finite."""
    mask = draw.draw(
        arrays(dtype=np.bool_, shape=data.shape, elements=st.booleans()), label="mask"
    )
    x = _grad_tensor(data)
    def loss():
        filled = masked_fill(x, mask, -np.inf)
        return (softmax(filled, axis=-1) * 2.0).sum()
    check_finite_gradients(loss, [x])


@SETTINGS
@given(probabilities)
def test_safe_log_finite_on_zero_probabilities(probs):
    x = _grad_tensor(probs)
    check_finite_gradients(lambda: safe_log(x, ceiling=1.0).sum(), [x])


@SETTINGS
@given(probabilities)
def test_sequence_nll_finite_on_degenerate_probabilities(probs):
    """Eq. 7 loss: exact-zero gold-token probabilities must not produce inf."""
    step_probs = [_grad_tensor(probs)]
    targets = np.zeros((probs.size, 1), dtype=int)
    pad_mask = np.zeros((probs.size, 1), dtype=bool)
    loss = sequence_nll(step_probs, targets, pad_mask)
    assert np.isfinite(loss.item())
    loss.backward()
    assert np.isfinite(step_probs[0].grad).all()


@SETTINGS
@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(1, 8),
        elements=st.floats(
            min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
        ),
    )
)
def test_saturating_sigmoid_never_saturates_exactly(data):
    x = _grad_tensor(data)
    value = check_finite_gradients(lambda: safe_log(saturating_sigmoid(x)).sum(), [x])
    assert np.isfinite(value)
    gate = saturating_sigmoid(Tensor(data)).data
    assert (gate > 0.0).all() and (gate < 1.0).all()


@SETTINGS
@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(1, 6),
        elements=st.floats(
            min_value=-700.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    )
)
def test_safe_exp_finite_on_overflowing_inputs(data):
    x = _grad_tensor(data)
    check_finite_gradients(lambda: safe_log(safe_exp(x)).sum(), [x])


@SETTINGS
@given(probabilities, probabilities)
def test_safe_div_finite_on_zero_denominators(numerator, denominator):
    size = min(numerator.size, denominator.size)
    x = _grad_tensor(numerator[:size])
    y = _grad_tensor(denominator[:size])
    check_finite_gradients(lambda: safe_div(x, y).sum(), [x, y])
