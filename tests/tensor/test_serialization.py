"""Tests for npz save/load of named arrays."""

import numpy as np
import pytest

from repro.tensor import load_arrays, save_arrays


def test_round_trip(tmp_path):
    arrays = {
        "weights": np.arange(6.0).reshape(2, 3),
        "bias": np.zeros(3),
        "scalarish": np.array([7.5]),
    }
    path = tmp_path / "ckpt.npz"
    save_arrays(path, arrays)
    loaded = load_arrays(path)
    assert set(loaded) == set(arrays)
    for key in arrays:
        assert np.allclose(loaded[key], arrays[key])
        assert loaded[key].dtype == arrays[key].dtype


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "ckpt.npz"
    save_arrays(path, {"x": np.ones(2)})
    assert np.allclose(load_arrays(path)["x"], 1.0)


def test_dotted_parameter_names(tmp_path):
    """state_dict keys contain dots; the archive must preserve them."""
    path = tmp_path / "ckpt.npz"
    save_arrays(path, {"encoder.cell_0.weight_ih": np.ones((2, 2))})
    loaded = load_arrays(path)
    assert "encoder.cell_0.weight_ih" in loaded


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_arrays(tmp_path / "absent.npz")


def test_integer_arrays_preserved(tmp_path):
    path = tmp_path / "ckpt.npz"
    save_arrays(path, {"ids": np.array([1, 2, 3], dtype=np.int64)})
    assert load_arrays(path)["ids"].dtype == np.int64
