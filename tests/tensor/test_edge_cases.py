"""Edge-case tests for the tensor engine."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, check_gradients


def test_reshape_with_minus_one():
    x = Tensor(np.arange(12.0), requires_grad=True)
    y = x.reshape(3, -1)
    assert y.shape == (3, 4)
    y.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_getitem_with_negative_index():
    x = Tensor(np.arange(5.0), requires_grad=True)
    x[-1].backward()
    assert np.allclose(x.grad, [0, 0, 0, 0, 1])


def test_getitem_with_step_slice():
    x = Tensor(np.arange(6.0), requires_grad=True)
    x[::2].sum().backward()
    assert np.allclose(x.grad, [1, 0, 1, 0, 1, 0])


def test_chained_transposes_cancel():
    x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    y = x.T.T
    assert np.allclose(y.data, x.data)
    y.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_sum_over_all_axes_tuple():
    x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
    out = x.sum(axis=(0, 2))
    assert out.shape == (3,)
    out.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_mean_with_axis_tuple():
    x = Tensor(np.ones((2, 4)), requires_grad=True)
    out = x.mean(axis=(0, 1))
    assert np.isclose(out.item(), 1.0)


def test_scalar_tensor_arithmetic():
    a = Tensor(3.0, requires_grad=True)
    b = Tensor(4.0, requires_grad=True)
    (a * b + a).backward()
    assert np.allclose(a.grad, 5.0)
    assert np.allclose(b.grad, 3.0)


def test_zero_size_slice_is_harmless():
    x = Tensor(np.arange(4.0), requires_grad=True)
    y = x[2:2]
    assert y.shape == (0,)


def test_softmax_on_single_element_axis():
    x = Tensor(np.array([[3.0], [7.0]]))
    out = T.softmax(x, axis=1)
    assert np.allclose(out.data, 1.0)


def test_log_softmax_extreme_values_finite():
    x = Tensor(np.array([[1e4, -1e4, 0.0]]))
    out = T.log_softmax(x, axis=1)
    assert np.all(np.isfinite(out.data))


def test_masked_fill_everything():
    x = Tensor(np.ones(3), requires_grad=True)
    out = T.masked_fill(x, np.ones(3, dtype=bool), -5.0)
    assert np.allclose(out.data, -5.0)
    out.sum().backward()
    assert np.allclose(x.grad, 0.0)


def test_concat_single_tensor():
    x = Tensor(np.ones(3), requires_grad=True)
    out = T.concat([x], axis=0)
    out.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_deep_chain_backward_iterative():
    """A 500-op chain must not hit Python recursion limits."""
    x = Tensor(np.ones(2), requires_grad=True)
    y = x
    for _ in range(500):
        y = y * 1.001
    y.sum().backward()
    assert np.allclose(x.grad, 1.001 ** 500)


def test_broadcast_three_way_gradcheck():
    a = Tensor(np.random.default_rng(0).standard_normal((2, 1, 3)), requires_grad=True)
    b = Tensor(np.random.default_rng(1).standard_normal((1, 4, 1)), requires_grad=True)
    check_gradients(lambda: (a * b).sum(), [a, b])


def test_pow_negative_base_integer_exponent():
    x = Tensor(np.array([-2.0]), requires_grad=True)
    (x ** 2).backward()
    assert np.allclose(x.grad, [-4.0])


def test_pow_type_error_on_tensor_exponent():
    x = Tensor(np.ones(2))
    with pytest.raises(TypeError):
        x ** Tensor(np.ones(2))
