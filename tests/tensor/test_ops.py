"""Gradient and forward checks for every op in repro.tensor.ops."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, check_gradients


def _randn(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


def test_tanh_forward_and_gradcheck():
    x = Tensor(_randn((3, 4)), requires_grad=True)
    assert np.allclose(T.tanh(x).data, np.tanh(x.data))
    check_gradients(lambda: T.tanh(x).sum(), [x])


def test_sigmoid_matches_reference_and_gradcheck():
    x = Tensor(_randn((3, 4), seed=1), requires_grad=True)
    expected = 1.0 / (1.0 + np.exp(-x.data))
    assert np.allclose(T.sigmoid(x).data, expected)
    check_gradients(lambda: T.sigmoid(x).sum(), [x])


def test_sigmoid_stable_for_large_magnitudes():
    x = Tensor([-1000.0, 1000.0])
    out = T.sigmoid(x).data
    assert np.all(np.isfinite(out))
    assert out[0] == pytest.approx(0.0)
    assert out[1] == pytest.approx(1.0)


def test_relu_forward_and_gradcheck():
    x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
    assert np.allclose(T.relu(x).data, [0.0, 0.5, 2.0])
    check_gradients(lambda: T.relu(x).sum(), [x])


def test_exp_log_inverse_and_gradchecks():
    x = Tensor([0.5, 1.0, 2.0], requires_grad=True)
    assert np.allclose(T.log(T.exp(x)).data, x.data)
    check_gradients(lambda: T.exp(x).sum(), [x])
    check_gradients(lambda: T.log(x).sum(), [x])


def test_sqrt_gradcheck():
    x = Tensor([0.25, 1.0, 4.0], requires_grad=True)
    check_gradients(lambda: T.sqrt(x).sum(), [x])


def test_clip_forward_and_zero_gradient_outside():
    x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
    out = T.clip(x, 0.0, 1.0)
    assert np.allclose(out.data, [0.0, 0.5, 1.0])
    out.sum().backward()
    assert np.allclose(x.grad, [0.0, 1.0, 0.0])


def test_abs_gradcheck_away_from_zero():
    x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
    check_gradients(lambda: T.abs_(x).sum(), [x])


def test_maximum_routes_gradient_to_winner():
    a = Tensor([1.0, 5.0], requires_grad=True)
    b = Tensor([2.0, 3.0], requires_grad=True)
    T.maximum(a, b).sum().backward()
    assert np.allclose(a.grad, [0.0, 1.0])
    assert np.allclose(b.grad, [1.0, 0.0])


def test_softmax_rows_sum_to_one():
    x = Tensor(_randn((4, 7), seed=2))
    out = T.softmax(x, axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0)


def test_softmax_shift_invariance():
    x = _randn((2, 5), seed=3)
    a = T.softmax(Tensor(x)).data
    b = T.softmax(Tensor(x + 100.0)).data
    assert np.allclose(a, b)


def test_softmax_gradcheck():
    x = Tensor(_randn((3, 4), seed=4), requires_grad=True)
    weights = Tensor(_randn((3, 4), seed=5))
    check_gradients(lambda: (T.softmax(x, axis=-1) * weights).sum(), [x])


def test_log_softmax_consistent_with_softmax():
    x = Tensor(_randn((3, 6), seed=6))
    assert np.allclose(T.log_softmax(x).data, np.log(T.softmax(x).data))


def test_log_softmax_gradcheck():
    x = Tensor(_randn((2, 5), seed=7), requires_grad=True)
    weights = Tensor(_randn((2, 5), seed=8))
    check_gradients(lambda: (T.log_softmax(x, axis=-1) * weights).sum(), [x])


def test_concat_forward_and_gradient_split():
    a = Tensor(np.ones((2, 3)), requires_grad=True)
    b = Tensor(np.ones((2, 2)), requires_grad=True)
    out = T.concat([a, b], axis=1)
    assert out.shape == (2, 5)
    (out * 2.0).sum().backward()
    assert np.allclose(a.grad, 2.0)
    assert np.allclose(b.grad, 2.0)


def test_concat_gradcheck():
    a = Tensor(_randn((2, 3), seed=9), requires_grad=True)
    b = Tensor(_randn((2, 2), seed=10), requires_grad=True)
    weights = Tensor(_randn((2, 5), seed=11))
    check_gradients(lambda: (T.concat([a, b], axis=1) * weights).sum(), [a, b])


def test_stack_creates_new_axis_and_gradcheck():
    a = Tensor(_randn(3, seed=12), requires_grad=True)
    b = Tensor(_randn(3, seed=13), requires_grad=True)
    out = T.stack([a, b], axis=0)
    assert out.shape == (2, 3)
    weights = Tensor(_randn((2, 3), seed=14))
    check_gradients(lambda: (T.stack([a, b], axis=0) * weights).sum(), [a, b])


def test_squeeze_expand_dims_round_trip():
    x = Tensor(_randn((2, 1, 3), seed=15), requires_grad=True)
    out = T.expand_dims(T.squeeze(x, axis=1), axis=1)
    assert out.shape == x.shape
    out.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_max_forward_and_tie_splitting():
    x = Tensor([[1.0, 3.0, 3.0]], requires_grad=True)
    out = T.max_(x, axis=1)
    assert np.allclose(out.data, [3.0])
    out.sum().backward()
    assert np.allclose(x.grad, [[0.0, 0.5, 0.5]])


def test_max_gradcheck_distinct_values():
    x = Tensor(np.array([[1.0, 4.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
    check_gradients(lambda: T.max_(x, axis=1).sum(), [x])


def test_dropout_disabled_in_eval_mode():
    x = Tensor(np.ones((4, 4)))
    out = T.dropout(x, 0.5, np.random.default_rng(0), training=False)
    # No-op dropout must still be a distinct graph node (the historical
    # `return x` aliased input and output identities); the data is shared,
    # and gradients flow through unchanged.
    assert out is not x
    assert out.data is x.data
    x2 = Tensor(np.ones((4, 4)), requires_grad=True)
    T.dropout(x2, 0.0, np.random.default_rng(0), training=True).sum().backward()
    assert np.array_equal(x2.grad, np.ones((4, 4)))


def test_dropout_scales_survivors():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones((1000,)))
    out = T.dropout(x, 0.3, rng, training=True).data
    survivors = out[out != 0.0]
    assert np.allclose(survivors, 1.0 / 0.7)
    # Expected keep fraction near 70%.
    assert 0.6 < (out != 0).mean() < 0.8


def test_dropout_gradient_matches_mask():
    rng = np.random.default_rng(1)
    x = Tensor(np.ones(100), requires_grad=True)
    out = T.dropout(x, 0.4, rng, training=True)
    out.sum().backward()
    assert np.allclose(x.grad, out.data)


def test_dropout_rejects_bad_probability():
    with pytest.raises(ValueError):
        T.dropout(Tensor([1.0]), 1.0, np.random.default_rng(0))


def test_embedding_lookup_forward_and_grad_accumulation():
    weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
    indices = np.array([[0, 1], [1, 3]])
    out = T.embedding_lookup(weight, indices)
    assert out.shape == (2, 2, 3)
    assert np.allclose(out.data[1, 1], [9.0, 10.0, 11.0])
    out.sum().backward()
    # Row 1 appears twice, rows 0 and 3 once, row 2 never.
    assert np.allclose(weight.grad, np.array([[1.0] * 3, [2.0] * 3, [0.0] * 3, [1.0] * 3]))


def test_embedding_lookup_rejects_float_indices():
    weight = Tensor(np.zeros((4, 3)))
    with pytest.raises(TypeError):
        T.embedding_lookup(weight, np.array([0.5]))


def test_masked_fill_blocks_gradient():
    x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
    mask = np.array([False, True, False])
    out = T.masked_fill(x, mask, -1e9)
    assert out.data[1] == -1e9
    out.sum().backward()
    assert np.allclose(x.grad, [1.0, 0.0, 1.0])


def test_where_selects_and_routes_gradients():
    cond = np.array([True, False, True])
    a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
    b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
    out = T.where(cond, a, b)
    assert np.allclose(out.data, [1.0, 20.0, 3.0])
    out.sum().backward()
    assert np.allclose(a.grad, [1.0, 0.0, 1.0])
    assert np.allclose(b.grad, [0.0, 1.0, 0.0])


def test_gather_rows_forward_and_gradcheck():
    x = Tensor(_randn((4, 5), seed=16), requires_grad=True)
    indices = np.array([0, 4, 2, 2])
    out = T.gather_rows(x, indices)
    assert np.allclose(out.data, x.data[np.arange(4), indices])
    check_gradients(lambda: T.gather_rows(x, indices).sum(), [x])
