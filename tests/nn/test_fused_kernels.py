"""Fused attention / pointer / LSTM kernels: gradchecks against numerical
gradients, byte-identity fuzzing against the elementary-op formulation, and
the arena replay tier under ``lazy() + no_grad``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.attention import GlobalAttention
from repro.nn.functional import (
    fused_attention,
    fused_pointer_probs,
    lstm_cell_step,
)
from repro.nn.lstm import LSTMCell
from repro.tensor import Tensor, no_grad
from repro.tensor.gradcheck import check_gradients
from repro.tensor.lazy import lazy
from repro.tensor.ops import expand_dims, masked_fill, softmax

dims = st.integers(2, 5)
seeds = st.integers(0, 10_000)


def _attention_inputs(batch, time, dec, enc, seed, with_mask=True):
    rng = np.random.default_rng(seed)
    d = Tensor(rng.standard_normal((batch, dec)), requires_grad=True)
    states = Tensor(rng.standard_normal((batch, time, enc)), requires_grad=True)
    weight = Tensor(rng.standard_normal((dec, enc)) * 0.5, requires_grad=True)
    if with_mask and time > 1:
        mask = rng.random((batch, time)) < 0.3
        mask[:, 0] = False  # never fully masked
    else:
        mask = None
    return d, states, weight, mask


def _eager_attention_chain(d, states, weight, mask):
    from repro.tensor.ops import tanh

    projected = d @ weight
    scores = tanh((expand_dims(projected, 1) * states).sum(axis=2))
    if mask is not None:
        scores = masked_fill(scores, mask, -1e9)
    weights = softmax(scores, axis=1)
    context = (expand_dims(weights, 2) * states).sum(axis=1)
    return context, weights


# ---------------------------------------------------------------------------
# fused_attention
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("with_mask", [False, True])
def test_fused_attention_gradcheck(with_mask):
    d, states, weight, mask = _attention_inputs(2, 4, 3, 3, seed=0, with_mask=with_mask)

    def loss():
        context, weights = fused_attention(d, states, weight, pad_mask=mask)
        return (context * context).sum() + (weights * weights).sum()

    check_gradients(loss, [d, states, weight])


@given(dims, st.integers(1, 6), dims, dims, seeds)
@settings(max_examples=40, deadline=None)
def test_fused_attention_byte_identical_to_eager(batch, time, dec, enc, seed):
    d, states, weight, mask = _attention_inputs(batch, time, dec, enc, seed)
    f_context, f_weights = fused_attention(d, states, weight, pad_mask=mask)
    e_context, e_weights = _eager_attention_chain(d, states, weight, mask)
    assert np.array_equal(f_context.data, e_context.data)  # bytes, not close
    assert np.array_equal(f_weights.data, e_weights.data)


@given(dims, st.integers(2, 6), dims, dims, seeds)
@settings(max_examples=25, deadline=None)
def test_fused_attention_arena_replay_byte_identical(batch, time, dec, enc, seed):
    d, states, weight, mask = _attention_inputs(batch, time, dec, enc, seed)
    e_context, e_weights = _eager_attention_chain(d, states, weight, mask)
    with lazy(), no_grad():
        for _ in range(3):  # replay steps reuse buffers
            a_context, a_weights = fused_attention(d, states, weight, pad_mask=mask)
            assert np.array_equal(a_context.data, e_context.data)
            assert np.array_equal(a_weights.data, e_weights.data)


def test_attention_layer_routes_through_fused_kernel_identically():
    rng = np.random.default_rng(3)
    layer = GlobalAttention(4, 6, rng)
    d = Tensor(rng.standard_normal((3, 4)))
    states = Tensor(rng.standard_normal((3, 5, 6)))
    mask = rng.random((3, 5)) < 0.3
    mask[:, 0] = False
    eager_c, eager_w = layer(d, states, pad_mask=mask)
    with lazy():
        fused_c, fused_w = layer(d, states, pad_mask=mask)
    assert np.array_equal(eager_c.data, fused_c.data)
    assert np.array_equal(eager_w.data, fused_w.data)


def test_fused_attention_weights_normalized_and_masked():
    d, states, weight, mask = _attention_inputs(3, 5, 4, 4, seed=9)
    with lazy(), no_grad():
        _, weights = fused_attention(d, states, weight, pad_mask=mask)
    np.testing.assert_allclose(weights.data.sum(axis=1), 1.0, rtol=1e-12)
    assert (weights.data[mask] < 1e-12).all()


# ---------------------------------------------------------------------------
# fused_pointer_probs
# ---------------------------------------------------------------------------
def _pointer_inputs(batch, time, enc, seed):
    rng = np.random.default_rng(seed)
    projected = Tensor(rng.standard_normal((batch, enc)), requires_grad=True)
    states = Tensor(rng.standard_normal((batch, time, enc)), requires_grad=True)
    bias = Tensor(rng.standard_normal(1), requires_grad=True)
    mask = rng.random((batch, time)) < 0.3
    mask[:, 0] = False
    return projected, states, bias, mask


def _eager_pointer_chain(projected, states, bias, mask):
    scores = (expand_dims(projected, 1) * states).sum(axis=2)
    scores = scores + bias
    scores = masked_fill(scores, mask, -1e9)
    return softmax(scores, axis=1)


def test_fused_pointer_probs_gradcheck():
    projected, states, bias, mask = _pointer_inputs(2, 4, 3, seed=1)

    def loss():
        probs = fused_pointer_probs(projected, states, bias, mask)
        return (probs * probs).sum()

    check_gradients(loss, [projected, states, bias])


@given(dims, st.integers(2, 6), dims, seeds)
@settings(max_examples=40, deadline=None)
def test_fused_pointer_probs_byte_identical(batch, time, enc, seed):
    projected, states, bias, mask = _pointer_inputs(batch, time, enc, seed)
    eager = _eager_pointer_chain(projected, states, bias, mask)
    fused = fused_pointer_probs(projected, states, bias, mask)
    assert np.array_equal(fused.data, eager.data)
    with lazy(), no_grad():
        for _ in range(3):
            arena_probs = fused_pointer_probs(projected, states, bias, mask)
            assert np.array_equal(arena_probs.data, eager.data)


# ---------------------------------------------------------------------------
# LSTM step: arena tier vs fused node vs elementary reference
# ---------------------------------------------------------------------------
@given(dims, dims, dims, seeds)
@settings(max_examples=40, deadline=None)
def test_lstm_arena_step_byte_identical(batch, input_size, hidden, seed):
    rng = np.random.default_rng(seed)
    cell = LSTMCell(input_size, hidden, rng)
    x = Tensor(rng.standard_normal((batch, input_size)))
    state = cell.initial_state(batch)
    x2 = Tensor(rng.standard_normal((batch, input_size)))

    with no_grad():
        h1, c1 = cell(x, state)
        h2, c2 = cell(x2, (h1, c1))
    with lazy(), no_grad():
        a_h1, a_c1 = cell(x, state)
        a_h2, a_c2 = cell(x2, (a_h1, a_c1))
    assert np.array_equal(a_h1.data, h1.data)
    assert np.array_equal(a_c1.data, c1.data)
    assert np.array_equal(a_h2.data, h2.data)
    assert np.array_equal(a_c2.data, c2.data)


def test_lstm_arena_matches_forward_reference():
    rng = np.random.default_rng(17)
    cell = LSTMCell(4, 5, rng)
    x = Tensor(rng.standard_normal((3, 4)))
    state = cell.initial_state(3)
    ref_h, ref_c = cell.forward_reference(x, state)
    with lazy(), no_grad():
        h, c = cell(x, state)
    np.testing.assert_allclose(h.data, ref_h.data, rtol=1e-12, atol=1e-14)
    np.testing.assert_allclose(c.data, ref_c.data, rtol=1e-12, atol=1e-14)


def test_stacked_cells_with_shared_shapes_do_not_alias():
    """Three same-shaped cells chained for many steps: per-cell arena keys
    must keep each cell's ping-pong state private (a shared slot would
    corrupt h/c after two steps)."""
    rng = np.random.default_rng(23)
    cells = [LSTMCell(6, 6, rng) for _ in range(3)]
    xs = [Tensor(rng.standard_normal((2, 6))) for _ in range(6)]

    def run_chain():
        states = [cell.initial_state(2) for cell in cells]
        for x in xs:
            inp = x
            for idx, cell in enumerate(cells):
                h, c = cell(inp, states[idx])
                states[idx] = (h, c)
                inp = h
        return [(h.data.copy(), c.data.copy()) for h, c in states]

    with no_grad():
        eager = run_chain()
    with lazy(), no_grad():
        fused = run_chain()
    for (eh, ec), (fh, fc) in zip(eager, fused):
        assert np.array_equal(eh, fh)
        assert np.array_equal(ec, fc)


def test_fused_kernels_are_single_tape_nodes_under_grad():
    from repro.tensor.profiler import TapeProfile

    d, states, weight, mask = _attention_inputs(2, 4, 3, 3, seed=5)
    with TapeProfile() as eager_profile:
        _eager_attention_chain(d, states, weight, mask)
    with TapeProfile() as fused_profile:
        fused_attention(d, states, weight, pad_mask=mask)
    # one packed node + two slice views
    assert fused_profile.nodes == 3
    assert fused_profile.nodes < eager_profile.nodes


def test_anomaly_mode_disables_raw_arena_but_keeps_fusion():
    """detect_anomaly needs tape nodes for provenance: inside lazy() the
    kernels must fall back to single-node form (which on_op sees)."""
    from repro.tensor import NumericalAnomaly, detect_anomaly

    d, states, weight, mask = _attention_inputs(2, 4, 3, 3, seed=5)
    d.data[0, 0] = np.nan
    with lazy(), pytest.raises(NumericalAnomaly):
        with detect_anomaly(emit_telemetry=False):
            fused_attention(d, states, weight, pad_mask=mask)
