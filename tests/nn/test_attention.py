"""Tests for the paper's global attention (Section 3.1)."""

import numpy as np

from repro.nn import GlobalAttention
from repro.tensor import Tensor, check_gradients


def _attention(dec=3, enc=4, seed=0):
    return GlobalAttention(dec, enc, np.random.default_rng(seed))


def test_weights_form_distribution():
    attn = _attention()
    d = Tensor(np.random.default_rng(1).standard_normal((2, 3)))
    h = Tensor(np.random.default_rng(2).standard_normal((2, 5, 4)))
    context, weights = attn(d, h)
    assert context.shape == (2, 4)
    assert weights.shape == (2, 5)
    assert np.allclose(weights.data.sum(axis=1), 1.0)
    assert np.all(weights.data >= 0)


def test_scores_match_paper_formula():
    """e_{k,t} = tanh(d_k^T W_h h_t), verified element by element."""
    attn = _attention()
    d = np.random.default_rng(3).standard_normal((2, 3))
    h = np.random.default_rng(4).standard_normal((2, 5, 4))
    scores = attn.scores(Tensor(d), Tensor(h)).data
    for b in range(2):
        for t in range(5):
            expected = np.tanh(d[b] @ attn.weight.data @ h[b, t])
            assert np.isclose(scores[b, t], expected)


def test_context_is_weighted_average():
    attn = _attention()
    d = Tensor(np.random.default_rng(5).standard_normal((1, 3)))
    h_data = np.random.default_rng(6).standard_normal((1, 4, 4))
    context, weights = attn(d, Tensor(h_data))
    expected = (weights.data[0][:, None] * h_data[0]).sum(axis=0)
    assert np.allclose(context.data[0], expected)


def test_pad_mask_zeroes_attention():
    attn = _attention()
    d = Tensor(np.random.default_rng(7).standard_normal((1, 3)))
    h = Tensor(np.random.default_rng(8).standard_normal((1, 5, 4)))
    pad_mask = np.array([[False, False, True, True, True]])
    _, weights = attn(d, h, pad_mask=pad_mask)
    assert np.allclose(weights.data[0, 2:], 0.0)
    assert np.allclose(weights.data[0, :2].sum(), 1.0)


def test_fully_valid_mask_equals_no_mask():
    attn = _attention()
    d = Tensor(np.random.default_rng(9).standard_normal((1, 3)))
    h = Tensor(np.random.default_rng(10).standard_normal((1, 5, 4)))
    _, w_none = attn(d, h)
    _, w_mask = attn(d, h, pad_mask=np.zeros((1, 5), dtype=bool))
    assert np.allclose(w_none.data, w_mask.data)


def test_attention_gradcheck():
    attn = GlobalAttention(2, 3, np.random.default_rng(11))
    d = Tensor(np.random.default_rng(12).standard_normal((2, 2)), requires_grad=True)
    h = Tensor(np.random.default_rng(13).standard_normal((2, 4, 3)), requires_grad=True)

    def loss():
        context, _ = attn(d, h)
        return (context * context).sum()

    check_gradients(loss, [d, h, attn.weight], rtol=1e-3, atol=1e-5)


def test_attention_gradcheck_with_mask():
    attn = GlobalAttention(2, 3, np.random.default_rng(14))
    d = Tensor(np.random.default_rng(15).standard_normal((1, 2)), requires_grad=True)
    h = Tensor(np.random.default_rng(16).standard_normal((1, 4, 3)), requires_grad=True)
    pad = np.array([[False, False, False, True]])

    def loss():
        context, _ = attn(d, h, pad_mask=pad)
        return context.sum()

    check_gradients(loss, [d, h, attn.weight], rtol=1e-3, atol=1e-5)
