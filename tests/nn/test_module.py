"""Tests for the Module/Parameter registration and serialization system."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter


class Block(Module):
    def __init__(self, rng):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.inner = Linear(2, 3, rng)

    def forward(self, x):
        return self.inner(x)


def _block():
    return Block(np.random.default_rng(0))


def test_named_parameters_are_dotted():
    names = {name for name, _ in _block().named_parameters()}
    assert names == {"weight", "inner.weight", "inner.bias"}


def test_parameters_require_grad():
    assert all(p.requires_grad for p in _block().parameters())


def test_num_parameters_counts_scalars():
    block = _block()
    assert block.num_parameters() == 4 + 6 + 3


def test_train_eval_propagates():
    block = _block()
    block.eval()
    assert not block.training
    assert not block.inner.training
    block.train()
    assert block.inner.training


def test_zero_grad_clears_all():
    block = _block()
    for p in block.parameters():
        p.grad = np.ones_like(p.data)
    block.zero_grad()
    assert all(p.grad is None for p in block.parameters())


def test_state_dict_round_trip():
    source = _block()
    target = Block(np.random.default_rng(99))
    assert not np.allclose(source.inner.weight.data, target.inner.weight.data)
    target.load_state_dict(source.state_dict())
    assert np.allclose(source.inner.weight.data, target.inner.weight.data)


def test_state_dict_returns_copies():
    block = _block()
    state = block.state_dict()
    state["weight"][...] = 42.0
    assert not np.allclose(block.weight.data, 42.0)


def test_load_state_dict_rejects_missing_keys():
    block = _block()
    state = block.state_dict()
    del state["weight"]
    with pytest.raises(KeyError):
        block.load_state_dict(state)


def test_load_state_dict_rejects_unexpected_keys():
    block = _block()
    state = block.state_dict()
    state["ghost"] = np.zeros(1)
    with pytest.raises(KeyError):
        block.load_state_dict(state)


def test_load_state_dict_rejects_shape_mismatch():
    block = _block()
    state = block.state_dict()
    state["weight"] = np.zeros((3, 3))
    with pytest.raises(ValueError):
        block.load_state_dict(state)


def test_modules_iterates_subtree():
    block = _block()
    kinds = [type(m).__name__ for m in block.modules()]
    assert kinds == ["Block", "Linear"]


def test_forward_not_implemented_on_base():
    with pytest.raises(NotImplementedError):
        Module()(1)
