"""Tests for NLL / cross-entropy / sequence losses."""

import numpy as np
import pytest

from repro.nn import cross_entropy, nll_loss, sequence_nll
from repro.tensor import Tensor, check_gradients, log_softmax


def test_nll_loss_value():
    log_probs = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
    loss = nll_loss(Tensor(log_probs), np.array([0, 1]))
    expected = -(np.log(0.7) + np.log(0.8)) / 2
    assert np.isclose(loss.item(), expected)


def test_nll_loss_mask_excludes_entries():
    log_probs = np.log(np.array([[0.5, 0.5], [0.9, 0.1]]))
    loss = nll_loss(Tensor(log_probs), np.array([0, 1]), mask=np.array([1.0, 0.0]))
    assert np.isclose(loss.item(), -np.log(0.5))


def test_nll_loss_all_masked_raises():
    with pytest.raises(ValueError):
        nll_loss(Tensor(np.zeros((2, 2))), np.array([0, 1]), mask=np.zeros(2))


def test_cross_entropy_equals_manual_log_softmax():
    logits = Tensor(np.random.default_rng(0).standard_normal((3, 5)))
    targets = np.array([1, 0, 4])
    manual = nll_loss(log_softmax(logits, axis=-1), targets)
    assert np.isclose(cross_entropy(logits, targets).item(), manual.item())


def test_cross_entropy_gradcheck():
    logits = Tensor(np.random.default_rng(1).standard_normal((3, 4)), requires_grad=True)
    targets = np.array([0, 3, 2])
    check_gradients(lambda: cross_entropy(logits, targets), [logits])


def test_cross_entropy_uniform_equals_log_vocab():
    logits = Tensor(np.zeros((2, 10)))
    loss = cross_entropy(logits, np.array([3, 7]))
    assert np.isclose(loss.item(), np.log(10))


def test_sequence_nll_averages_over_valid_tokens():
    probs = [Tensor(np.array([0.5, 0.25])), Tensor(np.array([1.0, 0.125]))]
    targets = np.zeros((2, 2), dtype=int)
    pad = np.array([[False, False], [False, True]])
    loss = sequence_nll(probs, targets, pad)
    expected = -(np.log(0.5) + np.log(1.0) + np.log(0.25)) / 3
    assert np.isclose(loss.item(), expected)


def test_sequence_nll_clamps_zero_probabilities():
    probs = [Tensor(np.array([0.0]))]
    loss = sequence_nll(probs, np.zeros((1, 1), dtype=int), np.array([[False]]))
    assert np.isfinite(loss.item())


def test_sequence_nll_length_mismatch_raises():
    with pytest.raises(ValueError):
        sequence_nll([Tensor(np.ones(1))], np.zeros((1, 2), dtype=int), np.zeros((1, 2), dtype=bool))


def test_sequence_nll_all_padding_raises():
    with pytest.raises(ValueError):
        sequence_nll([Tensor(np.ones(1))], np.zeros((1, 1), dtype=int), np.array([[True]]))


def test_sequence_nll_gradcheck():
    raw = Tensor(np.array([[0.3, 0.6], [0.9, 0.2]]), requires_grad=True)
    targets = np.zeros((2, 2), dtype=int)
    pad = np.array([[False, False], [False, True]])

    def loss():
        steps = [raw[:, 0], raw[:, 1]]
        return sequence_nll(steps, targets, pad)

    check_gradients(loss, [raw])
