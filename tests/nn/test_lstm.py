"""Tests for LSTMCell, stacked LSTM, and the bidirectional encoder."""

import numpy as np

from repro.nn import LSTM, BidirectionalLSTM, LSTMCell
from repro.tensor import Tensor, check_gradients


def _rng(seed=0):
    return np.random.default_rng(seed)


def _inputs(batch, time, dim, seed=1):
    return Tensor(np.random.default_rng(seed).standard_normal((batch, time, dim)))


def test_cell_output_shapes():
    cell = LSTMCell(4, 3, _rng())
    h, c = cell.initial_state(2)
    x = Tensor(np.ones((2, 4)))
    h_new, c_new = cell(x, (h, c))
    assert h_new.shape == (2, 3)
    assert c_new.shape == (2, 3)


def test_cell_forget_bias_initialized_to_one():
    cell = LSTMCell(4, 3, _rng())
    assert np.allclose(cell.bias.data[3:6], 1.0)


def test_cell_reference_implementation():
    """Check the gate math against a direct numpy transcription."""
    cell = LSTMCell(2, 2, _rng(3))
    x = np.array([[0.5, -1.0]])
    h0 = np.array([[0.1, 0.2]])
    c0 = np.array([[-0.3, 0.4]])
    h_new, c_new = cell(Tensor(x), (Tensor(h0), Tensor(c0)))

    def sigmoid(v):
        return 1.0 / (1.0 + np.exp(-v))

    gates = x @ cell.weight_ih.data.T + h0 @ cell.weight_hh.data.T + cell.bias.data
    i, f, g, o = gates[:, :2], gates[:, 2:4], gates[:, 4:6], gates[:, 6:]
    c_ref = sigmoid(f) * c0 + sigmoid(i) * np.tanh(g)
    h_ref = sigmoid(o) * np.tanh(c_ref)
    assert np.allclose(c_new.data, c_ref)
    assert np.allclose(h_new.data, h_ref)


def test_cell_gradcheck():
    cell = LSTMCell(3, 2, _rng(1))
    x = Tensor(np.random.default_rng(2).standard_normal((2, 3)), requires_grad=True)

    def loss():
        h, c = cell(x, cell.initial_state(2))
        return (h * h + c).sum()

    check_gradients(loss, [x, cell.weight_ih, cell.weight_hh, cell.bias], rtol=1e-3)


def test_lstm_output_shape_and_state_count():
    lstm = LSTM(4, 3, num_layers=2, rng=_rng())
    out, states = lstm(_inputs(2, 5, 4))
    assert out.shape == (2, 5, 3)
    assert len(states) == 2
    assert states[0][0].shape == (2, 3)


def test_lstm_rejects_zero_layers():
    import pytest

    with pytest.raises(ValueError):
        LSTM(4, 3, num_layers=0, rng=_rng())


def test_lstm_final_state_equals_last_output():
    lstm = LSTM(4, 3, num_layers=1, rng=_rng())
    out, states = lstm(_inputs(2, 5, 4))
    assert np.allclose(out.data[:, -1, :], states[0][0].data)


def test_lstm_padding_carries_state():
    """A padded batch must reproduce the unpadded sequence's final state."""
    lstm = LSTM(4, 3, num_layers=1, rng=_rng(5))
    data = np.random.default_rng(6).standard_normal((1, 3, 4))
    out_short, states_short = lstm(Tensor(data))

    padded = np.concatenate([data, np.zeros((1, 2, 4))], axis=1)
    pad_mask = np.array([[False, False, False, True, True]])
    out_long, states_long = lstm(Tensor(padded), pad_mask=pad_mask)

    assert np.allclose(states_short[0][0].data, states_long[0][0].data)
    assert np.allclose(states_short[0][1].data, states_long[0][1].data)
    # Padded positions emit zeros.
    assert np.allclose(out_long.data[:, 3:, :], 0.0)
    assert np.allclose(out_long.data[:, :3, :], out_short.data)


def test_lstm_reverse_matches_manual_reversal():
    """reverse=True on x equals forward on time-reversed x, outputs re-reversed."""
    lstm = LSTM(2, 3, num_layers=1, rng=_rng(7))
    data = np.random.default_rng(8).standard_normal((1, 4, 2))
    out_rev, states_rev = lstm(Tensor(data), reverse=True)
    out_fwd, states_fwd = lstm(Tensor(data[:, ::-1, :].copy()))
    assert np.allclose(out_rev.data, out_fwd.data[:, ::-1, :])
    assert np.allclose(states_rev[0][0].data, states_fwd[0][0].data)


def test_lstm_step_matches_forward():
    lstm = LSTM(4, 3, num_layers=2, rng=_rng(9))
    data = np.random.default_rng(10).standard_normal((2, 3, 4))
    out, _ = lstm(Tensor(data))

    states = lstm.initial_states(2)
    for t in range(3):
        top, states = lstm.step(Tensor(data[:, t, :]), states)
        assert np.allclose(top.data, out.data[:, t, :])


def test_lstm_gradcheck_through_time():
    lstm = LSTM(2, 2, num_layers=1, rng=_rng(11))
    x = Tensor(np.random.default_rng(12).standard_normal((1, 3, 2)), requires_grad=True)

    def loss():
        out, _ = lstm(x)
        return (out * out).sum()

    check_gradients(loss, [x] + lstm.parameters(), rtol=1e-3, atol=1e-5)


def test_bilstm_output_width_is_doubled():
    encoder = BidirectionalLSTM(4, 3, num_layers=1, rng=_rng())
    out, fwd, bwd = encoder(_inputs(2, 5, 4))
    assert out.shape == (2, 5, 6)
    assert encoder.output_size == 6


def test_bilstm_directions_are_independent_parameters():
    encoder = BidirectionalLSTM(4, 3, num_layers=1, rng=_rng())
    names = {name for name, _ in encoder.named_parameters()}
    assert any(name.startswith("forward_lstm") for name in names)
    assert any(name.startswith("backward_lstm") for name in names)


def test_bilstm_concatenates_direction_outputs():
    encoder = BidirectionalLSTM(2, 3, num_layers=1, rng=_rng(13))
    data = _inputs(1, 4, 2, seed=14)
    out, fwd_states, bwd_states = encoder(data)
    fwd_out, _ = encoder.forward_lstm(data)
    bwd_out, _ = encoder.backward_lstm(data, reverse=True)
    assert np.allclose(out.data[:, :, :3], fwd_out.data)
    assert np.allclose(out.data[:, :, 3:], bwd_out.data)


def test_bilstm_backward_final_state_summarizes_from_start():
    """The backward direction's final state is its t=0 output."""
    encoder = BidirectionalLSTM(2, 3, num_layers=1, rng=_rng(15))
    data = _inputs(1, 4, 2, seed=16)
    out, _, bwd_states = encoder(data)
    assert np.allclose(out.data[:, 0, 3:], bwd_states[0][0].data)


def test_bilstm_gradcheck():
    encoder = BidirectionalLSTM(2, 2, num_layers=1, rng=_rng(17))
    x = Tensor(np.random.default_rng(18).standard_normal((1, 3, 2)), requires_grad=True)

    def loss():
        out, _, _ = encoder(x)
        return (out * out).sum()

    check_gradients(loss, [x] + encoder.parameters(), rtol=1e-3, atol=1e-5)


def test_interlayer_dropout_only_active_in_training():
    lstm = LSTM(4, 3, num_layers=2, rng=_rng(19), dropout=0.5, dropout_seed=1)
    data = _inputs(2, 4, 4, seed=20)
    lstm.eval()
    out_a, _ = lstm(data)
    out_b, _ = lstm(data)
    assert np.allclose(out_a.data, out_b.data)


def test_bilstm_padding_equivalence():
    """Padded bidirectional encoding must match the unpadded run."""
    encoder = BidirectionalLSTM(3, 4, num_layers=1, rng=_rng(21))
    data = np.random.default_rng(22).standard_normal((1, 4, 3))
    out_short, fwd_short, bwd_short = encoder(Tensor(data))

    padded = np.concatenate([data, np.zeros((1, 3, 3))], axis=1)
    mask = np.array([[False] * 4 + [True] * 3])
    out_long, fwd_long, bwd_long = encoder(Tensor(padded), pad_mask=mask)

    assert np.allclose(out_long.data[:, :4, :], out_short.data)
    assert np.allclose(out_long.data[:, 4:, :], 0.0)
    assert np.allclose(fwd_short[0][0].data, fwd_long[0][0].data)
    assert np.allclose(bwd_short[0][0].data, bwd_long[0][0].data)


def test_lstm_initial_states_are_independent_tensors():
    lstm = LSTM(2, 3, num_layers=2, rng=_rng(23))
    states = lstm.initial_states(2)
    states[0][0].data[...] = 5.0
    assert np.allclose(states[1][0].data, 0.0)


def test_lstm_two_layer_stack_feeds_layer_outputs():
    """Layer 1's input is layer 0's output sequence."""
    lstm = LSTM(2, 3, num_layers=2, rng=_rng(24), dropout=0.0)
    data = np.random.default_rng(25).standard_normal((1, 3, 2))
    out, states = lstm(Tensor(data))
    # Top-layer output must equal running layer 1 over layer 0's outputs.
    layer0 = LSTM(2, 3, num_layers=1, rng=_rng(99))
    layer0.cells[0].weight_ih.data[...] = lstm.cells[0].weight_ih.data
    layer0.cells[0].weight_hh.data[...] = lstm.cells[0].weight_hh.data
    layer0.cells[0].bias.data[...] = lstm.cells[0].bias.data
    mid, _ = layer0(Tensor(data))
    layer1 = LSTM(3, 3, num_layers=1, rng=_rng(98))
    layer1.cells[0].weight_ih.data[...] = lstm.cells[1].weight_ih.data
    layer1.cells[0].weight_hh.data[...] = lstm.cells[1].weight_hh.data
    layer1.cells[0].bias.data[...] = lstm.cells[1].bias.data
    top, _ = layer1(Tensor(mid.data))
    assert np.allclose(top.data, out.data)
