"""Tests for the fused LSTM step: must match the elementary-op reference."""

import numpy as np

from repro.nn import LSTMCell
from repro.nn.functional import lstm_cell_step
from repro.tensor import Tensor, check_gradients


def _cell(input_size=3, hidden=4, seed=0):
    return LSTMCell(input_size, hidden, np.random.default_rng(seed))


def _inputs(batch=2, input_size=3, hidden=4, seed=1):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((batch, input_size)), requires_grad=True)
    h = Tensor(rng.standard_normal((batch, hidden)), requires_grad=True)
    c = Tensor(rng.standard_normal((batch, hidden)), requires_grad=True)
    return x, h, c


def test_fused_forward_matches_reference():
    cell = _cell()
    x, h, c = _inputs()
    h_fused, c_fused = lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
    h_ref, c_ref = cell.forward_reference(x, (h, c))
    assert np.allclose(h_fused.data, h_ref.data)
    assert np.allclose(c_fused.data, c_ref.data)


def test_fused_backward_matches_reference():
    """Identical loss through both paths must give identical gradients."""
    cell_a = _cell(seed=3)
    cell_b = _cell(seed=3)

    x_a, h_a, c_a = _inputs(seed=4)
    out_h, out_c = lstm_cell_step(x_a, h_a, c_a, cell_a.weight_ih, cell_a.weight_hh, cell_a.bias)
    ((out_h * out_h).sum() + (out_c * 2.0).sum()).backward()

    x_b, h_b, c_b = _inputs(seed=4)
    ref_h, ref_c = cell_b.forward_reference(x_b, (h_b, c_b))
    ((ref_h * ref_h).sum() + (ref_c * 2.0).sum()).backward()

    for fused, ref in [
        (x_a, x_b), (h_a, h_b), (c_a, c_b),
        (cell_a.weight_ih, cell_b.weight_ih),
        (cell_a.weight_hh, cell_b.weight_hh),
        (cell_a.bias, cell_b.bias),
    ]:
        assert np.allclose(fused.grad, ref.grad, atol=1e-10), fused.name


def test_fused_gradcheck_h_path():
    cell = _cell(seed=5)
    x, h, c = _inputs(seed=6)

    def loss():
        h_new, _ = lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
        return (h_new * h_new).sum()

    check_gradients(loss, [x, h, c, cell.weight_ih, cell.weight_hh, cell.bias], rtol=1e-3)


def test_fused_gradcheck_c_path():
    cell = _cell(seed=7)
    x, h, c = _inputs(seed=8)

    def loss():
        _, c_new = lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
        return (c_new * c_new).sum()

    check_gradients(loss, [x, h, c, cell.weight_ih, cell.weight_hh, cell.bias], rtol=1e-3)


def test_fused_gradcheck_joint_paths():
    cell = _cell(seed=9)
    x, h, c = _inputs(seed=10)

    def loss():
        h_new, c_new = lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
        return (h_new * c_new).sum()

    check_gradients(loss, [x, h, c, cell.weight_ih, cell.weight_hh, cell.bias], rtol=1e-3)


def test_fused_multi_step_chain_gradcheck():
    """Two chained fused steps (the recurrent use case)."""
    cell = _cell(seed=11)
    x1, h0, c0 = _inputs(seed=12)
    x2 = Tensor(np.random.default_rng(13).standard_normal(x1.shape), requires_grad=True)

    def loss():
        h1, c1 = lstm_cell_step(x1, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias)
        h2, c2 = lstm_cell_step(x2, h1, c1, cell.weight_ih, cell.weight_hh, cell.bias)
        return (h2 * h2 + c2).sum()

    check_gradients(
        loss, [x1, x2, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias], rtol=1e-3
    )
