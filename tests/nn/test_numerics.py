"""Tests for the blessed guarded helpers and the stabilized kernels.

Two contracts:
- **Stability**: extreme inputs (huge logits, zeros, fully-masked rows)
  produce finite outputs and finite gradients.
- **Byte-identity**: well-conditioned inputs take the identical arithmetic
  path, bit-for-bit, so golden decode outputs cannot move.
"""

import numpy as np
import pytest

from repro.nn.numerics import (
    EXP_MAX,
    GATE_EPS,
    TINY,
    np_bernoulli_entropy,
    np_safe_div,
    np_safe_exp,
    np_safe_log,
    np_smoothed_log,
    safe_div,
    safe_exp,
    safe_log,
    safe_sqrt,
    saturating_sigmoid,
)
from repro.tensor import Tensor, check_gradients, log_softmax, sigmoid, softmax


def _t(values):
    return Tensor(np.asarray(values, dtype=float), requires_grad=True)


# ----------------------------------------------------------------------
# Stabilized softmax / log_softmax
# ----------------------------------------------------------------------
def test_softmax_byte_identical_on_well_conditioned_input():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(4, 7))
    got = softmax(Tensor(data.copy()), axis=-1).data
    reference = np.exp(data - data.max(axis=-1, keepdims=True))
    reference /= reference.sum(axis=-1, keepdims=True)
    np.testing.assert_array_equal(got, reference)  # bit-for-bit


def test_log_softmax_byte_identical_on_well_conditioned_input():
    rng = np.random.default_rng(1)
    data = rng.normal(size=(3, 5))
    got = log_softmax(Tensor(data.copy()), axis=-1).data
    shifted = data - data.max(axis=-1, keepdims=True)
    reference = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    np.testing.assert_array_equal(got, reference)


def test_softmax_extreme_logits_stay_finite():
    x = _t([[1e9, 0.0, -1e9], [-1e9, -1e9, -1e9]])
    out = softmax(x, axis=-1)
    assert np.isfinite(out.data).all()
    out.sum().backward()
    assert np.isfinite(x.grad).all()


def test_softmax_fully_masked_row_returns_zeros():
    x = _t([[-np.inf, -np.inf], [0.0, 0.0]])
    out = softmax(x, axis=-1)
    np.testing.assert_array_equal(out.data[0], [0.0, 0.0])
    np.testing.assert_allclose(out.data[1], [0.5, 0.5])
    out.sum().backward()
    assert np.isfinite(x.grad[1]).all()


def test_log_softmax_fully_masked_row_is_neg_inf_not_nan():
    x = Tensor(np.array([[-np.inf, -np.inf], [1.0, 2.0]]))
    out = log_softmax(x, axis=-1)
    assert np.isneginf(out.data[0]).all()
    assert np.isfinite(out.data[1]).all()


def test_softmax_partial_mask_matches_renormalization():
    x = Tensor(np.array([[-np.inf, 1.0, 1.0]]))
    out = softmax(x, axis=-1).data
    np.testing.assert_allclose(out, [[0.0, 0.5, 0.5]])


def test_softmax_does_not_launder_nan():
    # NaN must propagate so divergence detection still fires downstream.
    out = softmax(Tensor(np.array([[np.nan, 1.0]])), axis=-1)
    assert np.isnan(out.data).any()


def test_softmax_gradcheck_still_passes():
    x = _t(np.random.default_rng(2).normal(size=(2, 4)))
    check_gradients(lambda: (softmax(x, axis=-1) * softmax(x, axis=-1)).sum(), [x])


# ----------------------------------------------------------------------
# Tensor helpers
# ----------------------------------------------------------------------
def test_safe_log_floors_zero():
    x = _t([0.0, 1.0])
    out = safe_log(x)
    assert out.data[0] == np.log(TINY)
    assert out.data[1] == 0.0
    out.sum().backward()
    assert np.isfinite(x.grad).all()


def test_safe_log_identity_inside_range():
    values = np.array([0.25, 0.5, 1.0])
    np.testing.assert_array_equal(safe_log(Tensor(values)).data, np.log(values))


def test_safe_exp_caps_overflow():
    out = safe_exp(_t([1000.0, 0.0]))
    assert np.isfinite(out.data).all()
    assert out.data[0] == np.exp(EXP_MAX)
    assert out.data[1] == 1.0


def test_safe_sqrt_clamps_negative_cancellation_noise():
    x = _t([-1e-18, 4.0])
    out = safe_sqrt(x)
    assert out.data[0] == 0.0
    assert out.data[1] == 2.0


def test_safe_div_guards_zero_denominator():
    out = safe_div(_t([1.0]), _t([0.0]))
    assert np.isfinite(out.data).all()
    assert out.data[0] == 1.0 / TINY


def test_safe_div_identity_on_healthy_denominator():
    np.testing.assert_array_equal(
        safe_div(Tensor(np.array([3.0])), Tensor(np.array([2.0]))).data, [1.5]
    )


def test_saturating_sigmoid_never_exactly_zero_or_one():
    x = _t([-1e9, 1e9, 0.0])
    out = saturating_sigmoid(x)
    assert out.data[0] == GATE_EPS
    assert out.data[1] == 1.0 - GATE_EPS
    assert out.data[2] == 0.5
    out.sum().backward()
    assert np.isfinite(x.grad).all()


def test_saturating_sigmoid_byte_identical_in_linear_region():
    values = np.linspace(-20, 20, 17)
    raw = sigmoid(Tensor(values.copy())).data
    clamped = saturating_sigmoid(Tensor(values.copy())).data
    np.testing.assert_array_equal(raw, clamped)


def test_helpers_gradcheck():
    x = _t([0.3, 0.7, 2.5])
    check_gradients(lambda: safe_log(x).sum(), [x])
    check_gradients(lambda: safe_exp(x).sum(), [x])
    check_gradients(lambda: safe_sqrt(x).sum(), [x])
    check_gradients(lambda: saturating_sigmoid(x).sum(), [x])


# ----------------------------------------------------------------------
# Array helpers
# ----------------------------------------------------------------------
def test_np_safe_log_and_smoothed_log():
    zeros = np.array([0.0, 1.0])
    assert np.isfinite(np_safe_log(zeros)).all()
    np.testing.assert_array_equal(np_smoothed_log(zeros), np.log(zeros + TINY))


def test_np_safe_exp_and_div():
    assert np.isfinite(np_safe_exp(np.array([1e4]))).all()
    assert np.isfinite(np_safe_div(np.array([1.0]), np.array([0.0]))).all()


def test_np_bernoulli_entropy_at_saturation():
    entropy = np_bernoulli_entropy(np.array([0.0, 0.5, 1.0]))
    assert np.isfinite(entropy).all()
    assert entropy[0] == pytest.approx(0.0, abs=1e-9)
    assert entropy[1] == pytest.approx(np.log(2.0))
    assert entropy[2] == pytest.approx(0.0, abs=1e-9)


def test_np_bernoulli_entropy_matches_legacy_arithmetic():
    # Must equal the historical inline formula bit-for-bit (gate stats).
    z = np.array([0.1, 0.42, 0.9999])
    clipped = np.clip(z, 1e-12, 1.0 - 1e-12)
    legacy = -(clipped * np.log(clipped) + (1 - clipped) * np.log(1 - clipped))
    np.testing.assert_array_equal(np_bernoulli_entropy(z), legacy)


# ----------------------------------------------------------------------
# Fused-kernel array twins: np_fast_sigmoid / np_stable_softmax
# ----------------------------------------------------------------------
def test_np_fast_sigmoid_matches_gate_formula_bytes():
    from repro.nn.numerics import np_fast_sigmoid

    x = np.linspace(-30.0, 30.0, 101)
    # Twin of the historical LSTM gate nonlinearity (plain formulation),
    # not of ops.sigmoid's split-sign kernel — those agree only to ulps.
    expected = 1.0 / (1.0 + np.exp(-x))
    np.testing.assert_array_equal(np_fast_sigmoid(x), expected)
    out = np.empty_like(x)
    result = np_fast_sigmoid(x, out=out)
    assert result is out
    np.testing.assert_array_equal(out, expected)
    np.testing.assert_allclose(out, sigmoid(Tensor(x)).data, rtol=1e-15)


def test_np_fast_sigmoid_saturates_and_propagates_nan():
    from repro.nn.numerics import np_fast_sigmoid

    assert np_fast_sigmoid(np.array([-1e4]))[0] == 0.0  # overflow -> correct limit
    assert np_fast_sigmoid(np.array([1e4]))[0] == 1.0
    assert np.isnan(np_fast_sigmoid(np.array([np.nan]))[0])  # never laundered


def test_np_stable_softmax_matches_tape_softmax_bytes():
    from repro.nn.numerics import np_stable_softmax

    rng = np.random.default_rng(0)
    for scores in [
        rng.standard_normal((4, 7)),
        rng.standard_normal((4, 7)) * 1e4,  # extreme logits
        np.where(rng.random((4, 7)) < 0.4, -1e9, rng.standard_normal((4, 7))),
    ]:
        expected = softmax(Tensor(scores), axis=1).data
        np.testing.assert_array_equal(np_stable_softmax(scores, axis=1), expected)
        out = np.empty_like(scores)
        result = np_stable_softmax(scores, axis=1, out=out)
        assert result is out
        np.testing.assert_array_equal(out, expected)


def test_np_stable_softmax_fully_masked_row_returns_zeros():
    from repro.nn.numerics import np_stable_softmax

    scores = np.array([[-np.inf, -np.inf], [0.0, 1.0]])
    result = np_stable_softmax(scores, axis=1)
    np.testing.assert_array_equal(result[0], 0.0)
    assert result[1].sum() == pytest.approx(1.0)
    # identical to the tape op's guarded kernel
    np.testing.assert_array_equal(result, softmax(Tensor(scores), axis=1).data)


def test_np_stable_softmax_does_not_launder_nan():
    from repro.nn.numerics import np_stable_softmax

    scores = np.array([[0.0, np.nan, 1.0]])
    assert np.isnan(np_stable_softmax(scores, axis=1)).any()
