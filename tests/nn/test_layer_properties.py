"""Hypothesis property tests for nn layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dropout, Embedding, GlobalAttention, Linear
from repro.tensor import Tensor

dims = st.integers(1, 6)
seeds = st.integers(0, 1000)


@given(dims, dims, st.integers(1, 4), seeds)
@settings(max_examples=30, deadline=None)
def test_linear_output_shape(in_features, out_features, batch, seed):
    layer = Linear(in_features, out_features, np.random.default_rng(seed))
    x = Tensor(np.random.default_rng(seed + 1).standard_normal((batch, in_features)))
    assert layer(x).shape == (batch, out_features)


@given(dims, dims, seeds)
@settings(max_examples=30, deadline=None)
def test_linear_is_affine(in_features, out_features, seed):
    """f(a) + f(b) - f(0) == f(a + b) for an affine map."""
    layer = Linear(in_features, out_features, np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    a = rng.standard_normal((2, in_features))
    b = rng.standard_normal((2, in_features))
    zero = np.zeros((2, in_features))
    lhs = layer(Tensor(a)).data + layer(Tensor(b)).data - layer(Tensor(zero)).data
    rhs = layer(Tensor(a + b)).data
    assert np.allclose(lhs, rhs, atol=1e-9)


@given(st.integers(2, 20), dims, seeds)
@settings(max_examples=30, deadline=None)
def test_embedding_rows_match_table(vocab, dim, seed):
    emb = Embedding(vocab, dim, np.random.default_rng(seed))
    ids = np.random.default_rng(seed + 1).integers(0, vocab, size=5)
    out = emb(ids).data
    for row, token_id in enumerate(ids):
        assert np.allclose(out[row], emb.weight.data[token_id])


@given(st.floats(0.0, 0.9), seeds)
@settings(max_examples=30, deadline=None)
def test_dropout_eval_identity(p, seed):
    layer = Dropout(p, seed=seed).eval()
    x = Tensor(np.random.default_rng(seed).standard_normal((3, 3)))
    out = layer(x)
    # Identity *values* (sharing x's array is fine) but a distinct node:
    # returning the input object itself aliased graph identities, breaking
    # arena planning and train/eval tape-profile comparisons.
    assert out is not x
    assert out.data is x.data


@given(dims, dims, st.integers(1, 5), seeds)
@settings(max_examples=30, deadline=None)
def test_attention_weights_always_normalized(dec, enc, time, seed):
    attn = GlobalAttention(dec, enc, np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    d = Tensor(rng.standard_normal((2, dec)))
    h = Tensor(rng.standard_normal((2, time, enc)))
    context, weights = attn(d, h)
    assert np.allclose(weights.data.sum(axis=1), 1.0)
    assert context.shape == (2, enc)


@given(dims, dims, st.integers(2, 5), seeds)
@settings(max_examples=20, deadline=None)
def test_attention_fully_masked_except_one_is_delta(dec, enc, time, seed):
    """Masking all but one position forces attention weight 1.0 there."""
    attn = GlobalAttention(dec, enc, np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    d = Tensor(rng.standard_normal((1, dec)))
    h = Tensor(rng.standard_normal((1, time, enc)))
    mask = np.ones((1, time), dtype=bool)
    mask[0, 0] = False
    context, weights = attn(d, h, pad_mask=mask)
    assert np.isclose(weights.data[0, 0], 1.0)
    assert np.allclose(context.data[0], h.data[0, 0])
