"""Tests for Linear, Embedding, Dropout and the initializers."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Linear
from repro.nn import init
from repro.tensor import Tensor, check_gradients


def test_linear_forward_matches_numpy():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng)
    x = np.random.default_rng(1).standard_normal((5, 4))
    out = layer(Tensor(x))
    assert np.allclose(out.data, x @ layer.weight.data.T + layer.bias.data)


def test_linear_without_bias():
    layer = Linear(4, 3, np.random.default_rng(0), bias=False)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


def test_linear_gradcheck():
    rng = np.random.default_rng(2)
    layer = Linear(3, 2, rng)
    x = Tensor(np.random.default_rng(3).standard_normal((4, 3)), requires_grad=True)
    check_gradients(lambda: layer(x).sum(), [x, layer.weight, layer.bias])


def test_embedding_lookup_shape():
    emb = Embedding(10, 4, np.random.default_rng(0))
    out = emb(np.array([[1, 2], [3, 4], [5, 6]]))
    assert out.shape == (3, 2, 4)


def test_embedding_out_of_range_raises():
    emb = Embedding(10, 4, np.random.default_rng(0))
    with pytest.raises(IndexError):
        emb(np.array([10]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_embedding_padding_row_is_zero():
    emb = Embedding(10, 4, np.random.default_rng(0), padding_idx=0)
    assert np.allclose(emb.weight.data[0], 0.0)


def test_embedding_zero_padding_grad():
    emb = Embedding(10, 4, np.random.default_rng(0), padding_idx=0)
    emb(np.array([0, 1])).sum().backward()
    assert not np.allclose(emb.weight.grad[0], 0.0) or True  # grad exists pre-zeroing
    emb.zero_padding_grad()
    assert np.allclose(emb.weight.grad[0], 0.0)
    assert not np.allclose(emb.weight.grad[1], 0.0)


def test_embedding_load_pretrained():
    emb = Embedding(5, 3, np.random.default_rng(0), padding_idx=0)
    matrix = np.arange(15.0).reshape(5, 3)
    emb.load_pretrained(matrix)
    assert np.allclose(emb.weight.data[0], 0.0)  # padding stays zero
    assert np.allclose(emb.weight.data[1:], matrix[1:])


def test_embedding_load_pretrained_shape_mismatch():
    emb = Embedding(5, 3, np.random.default_rng(0))
    with pytest.raises(ValueError):
        emb.load_pretrained(np.zeros((4, 3)))


def test_embedding_gradcheck():
    emb = Embedding(6, 3, np.random.default_rng(1))
    indices = np.array([0, 2, 2, 5])
    check_gradients(lambda: emb(indices).sum(), [emb.weight])


def test_dropout_eval_is_identity():
    layer = Dropout(0.5, seed=0).eval()
    x = Tensor(np.ones((3, 3)))
    out = layer(x)
    # Identity values through a distinct tape node (no object aliasing).
    assert out is not x
    assert out.data is x.data


def test_dropout_train_masks_and_scales():
    layer = Dropout(0.5, seed=0)
    out = layer(Tensor(np.ones(1000))).data
    nonzero = out[out != 0]
    assert np.allclose(nonzero, 2.0)


def test_dropout_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.5)


def test_init_uniform_bounds():
    values = init.uniform((100, 100), np.random.default_rng(0), scale=0.1)
    assert values.max() <= 0.1
    assert values.min() >= -0.1


def test_init_xavier_scale():
    values = init.xavier_uniform((50, 70), np.random.default_rng(0))
    limit = np.sqrt(6.0 / 120)
    assert np.abs(values).max() <= limit


def test_init_xavier_rejects_non_2d():
    with pytest.raises(ValueError):
        init.xavier_uniform((3,), np.random.default_rng(0))


def test_init_zeros():
    assert np.allclose(init.zeros((3, 3)), 0.0)


def test_init_is_deterministic_per_seed():
    a = init.uniform((4, 4), np.random.default_rng(7))
    b = init.uniform((4, 4), np.random.default_rng(7))
    assert np.allclose(a, b)
