"""Shared setup for the data suite.

The shard-store tests reuse the fault-injection helpers from
``tests/training/faults.py`` (``crash_on_nth_publish``, ``truncate_file``,
``corrupt_file``); pytest's rootdir imports resolve per-directory, so the
training directory is added to the path explicitly.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "training"))

from repro.data import QGExample  # noqa: E402


@pytest.fixture
def corpus_examples():
    """A small varied corpus: ASCII, Unicode, shared tokens, empty answers."""
    rows = [
        ("zorvex was born in karlin .", "where was zorvex born ?", "karlin"),
        ("mira designed the velkin tower .", "who designed the velkin tower ?", "mira"),
        ("draxby is the capital of ostavia .", "what is the capital of ostavia ?", "draxby"),
        ("the quen river flows through belcor .", "what river flows through belcor ?", "quen"),
        ("pelor wrote the sunken atlas .", "who wrote the sunken atlas ?", "pelor"),
        ("the omber bridge spans the fjord .", "what spans the fjord ?", "bridge"),
        ("élodie composa la chanson d'août .", "qui composa la chanson ?", "élodie"),
        ("研究者 は 東京 で 発表 した .", "研究者 は どこ で 発表 した ?", "東京"),
        ("the price was 1,250 € exactly .", "what was the price ?", ""),
        ("snæfell rises above the plain .", "what rises above the plain ?", "snæfell"),
    ]
    return [
        QGExample(
            sentence=tuple(s.split()),
            paragraph=tuple((s + " more context follows here .").split()),
            question=tuple(q.split()),
            answer=tuple(a.split()),
        )
        for s, q, a in rows
    ]
