"""Tests for corpus statistics and vocabulary coverage."""

import pytest

from repro.data import (
    QGExample,
    Vocabulary,
    corpus_statistics,
    generate_corpus,
    vocabulary_coverage,
)
from repro.data.synthetic import SyntheticConfig


def _examples():
    return [
        QGExample(
            sentence=("zorvex", "was", "born", "in", "karlin", "."),
            paragraph=("the", "town", ".", "zorvex", "was", "born", "in", "karlin", "."),
            question=("where", "was", "zorvex", "born", "?"),
        ),
        QGExample(
            sentence=("draxby", "is", "the", "capital", "."),
            paragraph=("draxby", "is", "the", "capital", ".", "trade", "grew", "."),
            question=("what", "is", "the", "capital", "?"),
        ),
    ]


def test_statistics_basic_counts():
    stats = corpus_statistics(_examples())
    assert stats.num_examples == 2
    assert stats.mean_sentence_length == pytest.approx((6 + 5) / 2)
    assert stats.mean_question_length == pytest.approx(5.0)
    assert stats.mean_paragraph_length == pytest.approx((9 + 8) / 2)


def test_statistics_overlap():
    stats = corpus_statistics(_examples())
    # ex1: was, zorvex, born in source -> 3/5; ex2: is, the, capital -> ... plus '?'? no.
    expected = ((3 / 5) + (3 / 5)) / 2
    assert stats.question_source_overlap == pytest.approx(expected)


def test_statistics_distinct_tokens():
    stats = corpus_statistics(_examples())
    assert stats.distinct_source_tokens == len(
        {"zorvex", "was", "born", "in", "karlin", ".", "draxby", "is", "the", "capital"}
    )


def test_statistics_empty_raises():
    with pytest.raises(ValueError):
        corpus_statistics([])


def test_statistics_render_contains_numbers():
    text = corpus_statistics(_examples()).render()
    assert "examples" in text
    assert "overlap" in text


def test_vocabulary_coverage_question_side():
    vocab = Vocabulary(["where", "was", "born", "?", "what", "is", "the", "capital"])
    coverage = vocabulary_coverage(_examples(), vocab, side="question")
    # Missing only "zorvex" of 10 question tokens.
    assert coverage == pytest.approx(9 / 10)


def test_vocabulary_coverage_sentence_side():
    vocab = Vocabulary(["was", "born", "in", ".", "is", "the", "capital"])
    coverage = vocabulary_coverage(_examples(), vocab, side="sentence")
    assert 0.0 < coverage < 1.0


def test_vocabulary_coverage_rejects_bad_side():
    with pytest.raises(ValueError):
        vocabulary_coverage(_examples(), Vocabulary(), side="paragraph")


def test_vocabulary_coverage_empty_raises():
    with pytest.raises(ValueError):
        vocabulary_coverage([], Vocabulary())


def test_synthetic_corpus_overlap_is_high():
    """Questions must share a lot with sources (the copy regime)."""
    corpus = generate_corpus(SyntheticConfig(num_train=200, num_dev=20, num_test=20))
    stats = corpus_statistics(list(corpus.train))
    assert stats.question_source_overlap > 0.4
