"""Tests for the regex tokenizer/detokenizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import detokenize, tokenize


def test_basic_sentence():
    assert tokenize("Who designed the Eiffel Tower?") == [
        "who", "designed", "the", "eiffel", "tower", "?",
    ]


def test_lowercases():
    assert tokenize("PARIS") == ["paris"]


def test_numbers_kept_whole():
    assert tokenize("in 1887 it cost 1,000 dollars") == [
        "in", "1887", "it", "cost", "1,000", "dollars",
    ]


def test_decimal_numbers():
    assert tokenize("pi is 3.14") == ["pi", "is", "3.14"]


def test_punctuation_split():
    assert tokenize("yes, really!") == ["yes", ",", "really", "!"]


def test_clitics_stay_attached():
    assert tokenize("it's Mary's book") == ["it's", "mary's", "book"]


def test_empty_string():
    assert tokenize("") == []


def test_whitespace_only():
    assert tokenize("   \t\n ") == []


def test_detokenize_spaces_words():
    assert detokenize(["the", "cat"]) == "the cat"


def test_detokenize_attaches_closing_punctuation():
    assert detokenize(["where", "is", "it", "?"]) == "where is it?"


def test_detokenize_open_brackets():
    assert detokenize(["see", "(", "fig", ".", "1", ")"]) == "see (fig. 1)"


def test_detokenize_empty():
    assert detokenize([]) == ""


@given(st.lists(st.sampled_from(["who", "what", "city", "1887", "tower"]), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_round_trip_on_plain_words(words):
    assert tokenize(detokenize(words)) == words


@given(st.text(max_size=80))
@settings(max_examples=100, deadline=None)
def test_tokenize_never_raises_and_yields_nonempty_tokens(text):
    tokens = tokenize(text)
    assert all(tokens), "no empty tokens"
    assert all(token == token.lower() for token in tokens)


@given(st.text(max_size=80))
@settings(max_examples=50, deadline=None)
def test_tokenize_is_idempotent_through_detokenize(text):
    tokens = tokenize(text)
    assert tokenize(detokenize(tokens)) == tokens


def test_unicode_words_kept_whole():
    # Accented and non-Latin letters are words, not dropped or shattered.
    assert tokenize("Café Münster") == ["café", "münster"]
    assert tokenize("straße in москва") == ["straße", "in", "москва"]


def test_unicode_clitics_stay_attached():
    assert tokenize("müller's straße") == ["müller's", "straße"]


def test_non_string_input_raises_type_error():
    import pytest

    with pytest.raises(TypeError):
        tokenize(None)
    with pytest.raises(TypeError):
        tokenize(1887)


def test_detokenize_drops_empty_tokens():
    assert detokenize(["the", "", "cat", ""]) == "the cat"


@given(st.text(alphabet=st.characters(codec="utf-8"), max_size=80))
@settings(max_examples=100, deadline=None)
def test_tokenize_handles_arbitrary_unicode(text):
    tokens = tokenize(text)
    assert all(tokens), "no empty tokens"
    # Tokens never contain whitespace (stable for downstream .split()-style IO).
    assert all(not any(ch.isspace() for ch in token) for token in tokens)
