"""Tests for the real-SQuAD loaders (JSON and Du-split formats)."""

import json

import pytest

from repro.data import QGExample, load_du_split, load_squad_json, split_sentences


def test_split_sentences_offsets():
    text = "First one. Second here! Third?"
    spans = split_sentences(text)
    assert [s[2] for s in spans] == ["First one.", "Second here!", "Third?"]
    for start, end, chunk in spans:
        assert text[start:end] == chunk


def test_split_sentences_single():
    assert split_sentences("No boundary here") == [(0, 16, "No boundary here")]


def _squad_payload():
    context = (
        "The Eiffel Tower was designed by Gustave Eiffel. "
        "It opened in 1889 in Paris."
    )
    return {
        "data": [
            {
                "title": "Eiffel",
                "paragraphs": [
                    {
                        "context": context,
                        "qas": [
                            {
                                "question": "Who designed the Eiffel Tower?",
                                "answers": [
                                    {"text": "Gustave Eiffel", "answer_start": context.index("Gustave")}
                                ],
                            },
                            {
                                "question": "When did it open?",
                                "answers": [
                                    {"text": "1889", "answer_start": context.index("1889")}
                                ],
                            },
                            {"question": "Unanswerable?", "answers": []},
                        ],
                    }
                ],
            }
        ]
    }


def test_load_squad_json(tmp_path):
    path = tmp_path / "squad.json"
    path.write_text(json.dumps(_squad_payload()))
    examples = load_squad_json(path)
    assert len(examples) == 2  # the answerless question is skipped

    first = examples[0]
    assert isinstance(first, QGExample)
    assert "gustave" in first.sentence
    assert "eiffel" in first.question
    assert first.answer == ("gustave", "eiffel")
    # The second QA's answer is in the second sentence.
    assert "1889" in examples[1].sentence
    assert "designed" not in examples[1].sentence


def test_load_squad_json_paragraph_covers_context(tmp_path):
    path = tmp_path / "squad.json"
    path.write_text(json.dumps(_squad_payload()))
    examples = load_squad_json(path)
    assert "paris" in examples[0].paragraph
    assert "designed" in examples[0].paragraph


def test_load_squad_json_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"rows": []}))
    with pytest.raises(ValueError):
        load_squad_json(path)


def test_load_du_split(tmp_path):
    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("the tower was designed by eiffel .\nthe museum opened in 1889 .\n")
    tgt.write_text("who designed the tower ?\nwhen did the museum open ?\n")
    examples = load_du_split(src, tgt)
    assert len(examples) == 2
    assert examples[0].sentence == tuple("the tower was designed by eiffel .".split())
    assert examples[0].question == tuple("who designed the tower ?".split())
    # Without a paragraph file, paragraph defaults to the sentence.
    assert examples[0].paragraph == examples[0].sentence


def test_load_du_split_with_paragraphs(tmp_path):
    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    para = tmp_path / "para.txt"
    src.write_text("a b c\n")
    tgt.write_text("q ?\n")
    para.write_text("a b c d e f\n")
    examples = load_du_split(src, tgt, para)
    assert examples[0].paragraph == ("a", "b", "c", "d", "e", "f")


def test_load_du_split_mismatched_lines(tmp_path):
    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("one line\n")
    tgt.write_text("line a ?\nline b ?\n")
    with pytest.raises(ValueError):
        load_du_split(src, tgt)


def test_load_du_split_skips_empty_lines(tmp_path):
    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("a b\n\n")
    tgt.write_text("q ?\nr ?\n")
    assert len(load_du_split(src, tgt)) == 1


# ---------------------------------------------------------------------------
# Typed dataset errors and skip-and-count loading
# ---------------------------------------------------------------------------

def test_dataset_error_is_a_value_error_with_context(tmp_path):
    from repro.data import DatasetError

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"rows": []}))
    with pytest.raises(DatasetError) as excinfo:
        load_squad_json(path)
    assert isinstance(excinfo.value, ValueError)
    assert excinfo.value.path == str(path)
    assert str(path) in str(excinfo.value)


def test_invalid_json_reports_line(tmp_path):
    from repro.data import DatasetError

    path = tmp_path / "broken.json"
    path.write_text('{"data": [\n  {"oops"\n')
    with pytest.raises(DatasetError) as excinfo:
        load_squad_json(path)
    assert "invalid JSON" in excinfo.value.detail
    assert "line" in str(excinfo.value.offset)


def test_malformed_article_names_json_path(tmp_path):
    from repro.data import DatasetError

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"data": ["not-an-object"]}))
    with pytest.raises(DatasetError) as excinfo:
        load_squad_json(path)
    assert excinfo.value.offset == "data[0]"


def test_squad_load_report_counts_skips(tmp_path):
    from repro.data import LoadReport

    payload = _squad_payload()
    # One extra QA whose answer offset points outside every sentence.
    payload["data"][0]["paragraphs"][0]["qas"].append(
        {"question": "Broken span?", "answers": [{"text": "x", "answer_start": 10_000}]}
    )
    path = tmp_path / "squad.json"
    path.write_text(json.dumps(payload))
    report = LoadReport()
    examples = load_squad_json(path, report=report)
    assert len(examples) == 2
    assert report.loaded == 2
    assert report.skipped_by_reason == {
        "no_answers": 1,
        "answer_outside_context": 1,
    }
    assert "skipped 2" in report.summary()


def test_du_mismatch_raises_dataset_error(tmp_path):
    from repro.data import DatasetError

    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("one line\n")
    tgt.write_text("line a ?\nline b ?\n")
    with pytest.raises(DatasetError) as excinfo:
        load_du_split(src, tgt)
    assert "mismatch" in excinfo.value.detail


def test_du_split_report_counts_empty_pairs(tmp_path):
    from repro.data import LoadReport

    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("a b\n\nc d\n")
    tgt.write_text("q ?\nr ?\n\n")
    report = LoadReport()
    examples = load_du_split(src, tgt, report=report)
    assert len(examples) == 1
    assert report.loaded == 1
    assert report.skipped == 2
    assert report.skipped_by_reason == {"empty_source": 1, "empty_question": 1}


def test_du_split_strict_mode_raises_with_line_number(tmp_path):
    from repro.data import DatasetError

    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("a b\n\n")
    tgt.write_text("q ?\nr ?\n")
    with pytest.raises(DatasetError) as excinfo:
        load_du_split(src, tgt, strict=True)
    assert excinfo.value.offset == 2
    assert excinfo.value.path == str(src)


def test_squad_skip_budget_raises_when_exceeded(tmp_path):
    from repro.data import LoadReport, SkipBudgetExceeded

    payload = _squad_payload()
    payload["data"][0]["paragraphs"][0]["qas"].append(
        {"question": "Broken span?", "answers": [{"text": "x", "answer_start": 10_000}]}
    )
    path = tmp_path / "squad.json"
    path.write_text(json.dumps(payload))

    # 2 loaded, 2 skipped = 50% loss; a 25% budget must refuse the corpus.
    report = LoadReport(max_skip_fraction=0.25)
    with pytest.raises(SkipBudgetExceeded) as excinfo:
        load_squad_json(path, report=report)
    assert str(path) in str(excinfo.value)
    assert "50.0%" in str(excinfo.value)

    # The same corpus under a 50% budget loads (budget is exclusive).
    report = LoadReport(max_skip_fraction=0.5)
    examples = load_squad_json(path, report=report)
    assert len(examples) == 2


def test_du_split_skip_budget_raises_when_exceeded(tmp_path):
    from repro.data import LoadReport, SkipBudgetExceeded

    src = tmp_path / "src.txt"
    tgt = tmp_path / "tgt.txt"
    src.write_text("a b\n\nc d\n")
    tgt.write_text("q ?\nr ?\n\n")
    report = LoadReport(max_skip_fraction=0.1)
    with pytest.raises(SkipBudgetExceeded):
        load_du_split(src, tgt, report=report)

    report = LoadReport(max_skip_fraction=0.9)
    examples = load_du_split(src, tgt, report=report)
    assert len(examples) == 1
    assert report.skipped == 2


def test_skip_budget_validation_and_clean_corpus():
    from repro.data import LoadReport

    with pytest.raises(ValueError, match=r"max_skip_fraction"):
        LoadReport(max_skip_fraction=1.5)
    with pytest.raises(ValueError, match=r"max_skip_fraction"):
        LoadReport(max_skip_fraction=-0.1)

    # A zero-tolerance budget over a clean corpus never trips.
    report = LoadReport(max_skip_fraction=0.0)
    report.loaded = 10
    report.enforce("clean.json")
