"""Property-based fuzzing of the shard format.

Three layers, matching how the bytes can go wrong:

- **Example layer**: arbitrary Unicode token sequences (any codepoints
  hypothesis produces, including empty tokens and empty fields) survive
  encode → publish → mmap → decode byte-identically.
- **Frame layer**: arbitrary byte payloads — including empty records —
  round-trip through ``build_shard_bytes``/``ShardReader`` exactly.
- **Corruption layer**: a single flipped byte inside any record's payload
  is always caught by that record's CRC32, with the record index in the
  error. The seed-failing case that motivated the sweep is pinned as a
  plain regression test at the bottom.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import QGExample, ShardCorrupted, ShardedCorpus, ingest_examples
from repro.data.shardstore import (
    RecordTooLarge,
    ShardReader,
    ShardWriter,
    build_shard_bytes,
    decode_record,
    encode_record,
)

# Any Unicode except surrogates (not encodable to UTF-8); empty tokens and
# empty sequences included on purpose — the format must not care.
_token = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8
)
_tokens = st.lists(_token, max_size=6).map(tuple)
# sentence/question must be non-empty (QGExample validates); paragraph and
# answer may be empty, and so may individual tokens.
_nonempty_tokens = st.lists(_token, min_size=1, max_size=6).map(tuple)
_example = st.builds(
    QGExample,
    sentence=_nonempty_tokens,
    paragraph=_tokens,
    question=_nonempty_tokens,
    answer=_tokens,
)


@settings(max_examples=40, deadline=None)
@given(example=_example)
def test_record_codec_round_trips_any_unicode(example):
    payload = encode_record(example)
    decoded = decode_record(payload)
    assert decoded == example
    # Re-encoding the decoded example reproduces the exact bytes: shard
    # content is a pure function of the example stream (resume identity
    # depends on this).
    assert encode_record(decoded) == payload


@settings(max_examples=25, deadline=None)
@given(examples=st.lists(_example, min_size=1, max_size=10), shard_records=st.integers(1, 4))
def test_publish_mmap_decode_identity(tmp_path_factory, examples, shard_records):
    directory = tmp_path_factory.mktemp("fuzz_store")
    ingest_examples(examples, directory, shard_records=shard_records)
    corpus = ShardedCorpus.open(directory)
    assert list(corpus) == examples
    corpus.close()


@settings(max_examples=40, deadline=None)
@given(payloads=st.lists(st.binary(max_size=64), min_size=1, max_size=8))
def test_frame_layer_round_trips_any_bytes(tmp_path_factory, payloads):
    path = tmp_path_factory.mktemp("fuzz_frames") / "shard.bin"
    path.write_bytes(build_shard_bytes(payloads))
    reader = ShardReader(path)
    assert reader.record_count == len(payloads)
    assert [reader.payload(i) for i in range(len(payloads))] == payloads
    reader.close()


@settings(max_examples=25, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=5),
    data=st.data(),
)
def test_any_single_payload_bit_flip_is_caught(tmp_path_factory, payloads, data):
    path = tmp_path_factory.mktemp("fuzz_flip") / "shard.bin"
    image = bytearray(build_shard_bytes(payloads))
    victim = data.draw(st.integers(0, len(payloads) - 1), label="victim record")
    path.write_bytes(bytes(image))
    # Locate the victim's payload region from the (trusted) index structure.
    reader = ShardReader(path)
    start = int(reader._offsets[victim]) + 8  # skip the 8-byte frame header
    reader.close()
    flip_at = start + data.draw(
        st.integers(0, len(payloads[victim]) - 1), label="byte within payload"
    )
    image[flip_at] ^= data.draw(st.integers(1, 255), label="xor mask")
    path.write_bytes(bytes(image))

    reader = ShardReader(path)
    with pytest.raises(ShardCorrupted) as excinfo:
        reader.payload(victim)
    assert excinfo.value.offset == victim
    for other in range(len(payloads)):
        if other != victim:
            assert reader.payload(other) == payloads[other]
    reader.close()


def test_empty_payload_record_round_trips(tmp_path):
    path = tmp_path / "shard.bin"
    path.write_bytes(build_shard_bytes([b"", b"x", b""]))
    reader = ShardReader(path)
    assert [reader.payload(i) for i in range(3)] == [b"", b"x", b""]
    reader.close()


def test_oversize_record_is_refused_not_truncated(tmp_path):
    writer = ShardWriter(tmp_path / "store", shard_records=2, max_record_bytes=32)
    small = QGExample(sentence=("ok",), paragraph=(), question=("?",))
    writer.append(small)
    big = QGExample(sentence=tuple("word%d" % i for i in range(50)), paragraph=(), question=("?",))
    with pytest.raises(RecordTooLarge, match="refusing"):
        writer.append(big)
    # The refusal is clean: the writer still finalizes what it had.
    manifest, _ = writer.finalize()
    assert manifest.total_records == 1


def test_regression_bit_flipped_unicode_record_detected(tmp_path):
    """Pinned seed-failing case from the fuzz sweep: a one-byte flip inside
    a multi-byte UTF-8 sequence must be caught by the CRC, not surface as a
    silently different (still-decodable) example."""
    example = QGExample(
        sentence=("étude", "→", "done"),
        paragraph=("研究", "continues"),
        question=("what", "étude", "?"),
        answer=("étude",),
    )
    payload = encode_record(example)
    path = tmp_path / "shard.bin"
    image = bytearray(build_shard_bytes([payload]))
    # Flip the low bit of the second byte of 'é' (a continuation byte):
    # 0xA9 -> 0xA8 still decodes as valid UTF-8 ('è'), so only the CRC
    # stands between this flip and a silently altered token.
    flip_at = bytes(image).index("étude".encode("utf-8")) + 1
    assert bytes(image)[flip_at] == 0xA9
    image[flip_at] ^= 0x01
    path.write_bytes(bytes(image))
    reader = ShardReader(path)
    with pytest.raises(ShardCorrupted, match="CRC32") as excinfo:
        reader.payload(0)
    assert excinfo.value.offset == 0
    assert str(path) in str(excinfo.value)
    reader.close()
