"""Tests for the QGExample record type."""

import pytest

from repro.data import QGExample


def _example(**overrides):
    fields = dict(
        sentence=("zorvex", "was", "born", "."),
        paragraph=("intro", ".", "zorvex", "was", "born", ".", "outro", "."),
        question=("where", "was", "zorvex", "born", "?"),
    )
    fields.update(overrides)
    return QGExample(**fields)


def test_empty_sentence_rejected():
    with pytest.raises(ValueError):
        _example(sentence=())


def test_empty_question_rejected():
    with pytest.raises(ValueError):
        _example(question=())


def test_empty_paragraph_defaults_to_sentence():
    example = _example(paragraph=())
    assert example.paragraph == example.sentence


def test_source_sentence_mode():
    example = _example()
    assert example.source(use_paragraph=False) == example.sentence
    # Truncation is a paragraph-mode concept; ignored for sentences.
    assert example.source(use_paragraph=False, truncate=2) == example.sentence


def test_source_paragraph_mode_truncates():
    example = _example()
    assert example.source(use_paragraph=True, truncate=3) == example.paragraph[:3]
    assert example.source(use_paragraph=True) == example.paragraph


def test_source_truncate_validation():
    with pytest.raises(ValueError):
        _example().source(use_paragraph=True, truncate=0)


def test_examples_are_hashable_and_comparable():
    assert _example() == _example()
    assert hash(_example()) == hash(_example())
    assert _example() != _example(question=("who", "?"))


def test_answer_defaults_empty():
    assert _example().answer == ()
