"""Tests for GloVe loading and the pseudo-GloVe substitute."""

import numpy as np
import pytest

from repro.data import (
    Vocabulary,
    embedding_matrix_for_vocab,
    load_glove_text,
    pseudo_glove,
)


def test_load_glove_text(tmp_path):
    path = tmp_path / "glove.txt"
    path.write_text("hello 0.1 0.2 0.3\nworld -1 0 1\n")
    vectors = load_glove_text(path, dim=3)
    assert np.allclose(vectors["hello"], [0.1, 0.2, 0.3])
    assert np.allclose(vectors["world"], [-1.0, 0.0, 1.0])


def test_load_glove_text_dim_mismatch(tmp_path):
    path = tmp_path / "glove.txt"
    path.write_text("hello 0.1 0.2\n")
    with pytest.raises(ValueError):
        load_glove_text(path, dim=3)


def test_pseudo_glove_is_deterministic():
    a = pseudo_glove(["tower", "river"], dim=16)
    b = pseudo_glove(["tower", "river"], dim=16)
    assert np.allclose(a["tower"], b["tower"])
    assert np.allclose(a["river"], b["river"])


def test_pseudo_glove_vectors_are_unit_norm():
    vectors = pseudo_glove(["alpha", "beta", "x"], dim=32)
    for vector in vectors.values():
        assert np.isclose(np.linalg.norm(vector), 1.0)


def test_pseudo_glove_related_words_more_similar():
    """Tokens sharing trigrams should correlate more than unrelated ones."""
    vectors = pseudo_glove(["karlin", "karlina", "zob"], dim=64)
    related = vectors["karlin"] @ vectors["karlina"]
    unrelated = abs(vectors["karlin"] @ vectors["zob"])
    assert related > unrelated


def test_pseudo_glove_seed_changes_vectors():
    a = pseudo_glove(["word"], dim=16, seed=0)["word"]
    b = pseudo_glove(["word"], dim=16, seed=1)["word"]
    assert not np.allclose(a, b)


def test_pseudo_glove_rejects_bad_dim():
    with pytest.raises(ValueError):
        pseudo_glove(["x"], dim=0)


def test_embedding_matrix_uses_pretrained_and_zeroes_pad():
    vocab = Vocabulary(["tower", "mystery"])
    vectors = {"tower": np.ones(8)}
    rng = np.random.default_rng(0)
    matrix = embedding_matrix_for_vocab(vocab, vectors, dim=8, rng=rng, scale=0.1)
    assert matrix.shape == (len(vocab), 8)
    assert np.allclose(matrix[vocab.token_to_id("tower")], 0.1)
    assert np.allclose(matrix[vocab.pad_id], 0.0)
    # Unknown words keep their random init within the scale bound.
    row = matrix[vocab.token_to_id("mystery")]
    assert np.abs(row).max() <= 0.1


def test_embedding_matrix_rejects_wrong_vector_shape():
    vocab = Vocabulary(["tower"])
    with pytest.raises(ValueError):
        embedding_matrix_for_vocab(
            vocab, {"tower": np.ones(4)}, dim=8, rng=np.random.default_rng(0)
        )
