"""Tests for deterministic corpus splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import QGExample, split_examples


def _examples(n):
    return [
        QGExample(
            sentence=(f"tok{i}", "."),
            paragraph=(f"tok{i}", "."),
            question=("what", "?"),
        )
        for i in range(n)
    ]


def test_split_sizes():
    train, dev, test = split_examples(_examples(100), dev_fraction=0.1, test_fraction=0.2)
    assert len(dev) == 10
    assert len(test) == 20
    assert len(train) == 70


def test_split_is_partition():
    examples = _examples(50)
    train, dev, test = split_examples(examples)
    ids = [id(e) for e in train + dev + test]
    assert len(ids) == 50
    assert set(ids) == {id(e) for e in examples}


def test_split_deterministic_per_seed():
    examples = _examples(40)
    a = split_examples(examples, seed=3)
    b = split_examples(examples, seed=3)
    assert [e.sentence for e in a[0]] == [e.sentence for e in b[0]]


def test_split_seed_changes_assignment():
    examples = _examples(40)
    a = split_examples(examples, seed=1)
    b = split_examples(examples, seed=2)
    assert [e.sentence for e in a[0]] != [e.sentence for e in b[0]]


def test_no_shuffle_keeps_order():
    examples = _examples(10)
    train, dev, test = split_examples(
        examples, dev_fraction=0.2, test_fraction=0.2, shuffle=False
    )
    assert dev == examples[:2]
    assert test == examples[2:4]
    assert train == examples[4:]


def test_zero_fractions():
    train, dev, test = split_examples(_examples(10), dev_fraction=0.0, test_fraction=0.0)
    assert len(train) == 10
    assert dev == []
    assert test == []


def test_validation():
    with pytest.raises(ValueError):
        split_examples([])
    with pytest.raises(ValueError):
        split_examples(_examples(10), dev_fraction=-0.1)
    with pytest.raises(ValueError):
        split_examples(_examples(10), dev_fraction=0.5, test_fraction=0.5)


@given(
    st.integers(5, 60),
    st.floats(0.0, 0.4),
    st.floats(0.0, 0.4),
    st.integers(0, 10),
)
@settings(max_examples=50, deadline=None)
def test_split_partition_property(n, dev_fraction, test_fraction, seed):
    examples = _examples(n)
    train, dev, test = split_examples(
        examples, dev_fraction=dev_fraction, test_fraction=test_fraction, seed=seed
    )
    assert len(train) + len(dev) + len(test) == n
    assert len(train) >= 1
