"""Shard store: format round-trips, manifest commit semantics, lazy reads.

The chaos-side coverage (kills, bit flips, torn manifests, training parity)
lives in ``test_shardstore_chaos.py``; property fuzzing in
``test_shardstore_properties.py``. This file pins the sunny-day contracts
and each validation error's type and provenance.
"""

import json
import os

import pytest

from repro.data import (
    LoadReport,
    QGDataset,
    QGExample,
    ShardCorrupted,
    ShardedCorpus,
    ShardStoreError,
    ShardWriter,
    SkipBudgetExceeded,
    StreamingQGDataset,
    ingest_examples,
    split_corpus,
    split_examples,
)
from repro.data.shardstore import (
    MANIFEST_NAME,
    Manifest,
    RecordTooLarge,
    ShardReader,
    build_shard_bytes,
    decode_record,
    encode_record,
)


def _store(tmp_path, examples, shard_records=4, name="store"):
    directory = tmp_path / name
    result = ingest_examples(examples, directory, shard_records=shard_records)
    return directory, result


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
def test_record_codec_round_trip(corpus_examples):
    for example in corpus_examples:
        assert decode_record(encode_record(example)) == example


def test_record_codec_deterministic(corpus_examples):
    for example in corpus_examples:
        assert encode_record(example) == encode_record(example)


def test_decode_rejects_wrong_shape():
    with pytest.raises(ValueError):
        decode_record(json.dumps(["just", "three", "fields"]).encode())
    with pytest.raises(ValueError):
        decode_record(json.dumps({"not": "a list"}).encode())


# ----------------------------------------------------------------------
# Shard file + reader
# ----------------------------------------------------------------------
def test_shard_round_trip(tmp_path, corpus_examples):
    payloads = [encode_record(ex) for ex in corpus_examples]
    path = tmp_path / "one.bin"
    path.write_bytes(build_shard_bytes(payloads))
    reader = ShardReader(path)
    assert reader.record_count == len(payloads)
    for index, payload in enumerate(payloads):
        assert reader.payload(index) == payload
        assert reader.example(index) == corpus_examples[index]
    reader.close()


def test_reader_index_bounds(tmp_path, corpus_examples):
    path = tmp_path / "one.bin"
    path.write_bytes(build_shard_bytes([encode_record(corpus_examples[0])]))
    reader = ShardReader(path)
    with pytest.raises(IndexError):
        reader.payload(1)
    with pytest.raises(IndexError):
        reader.payload(-1)
    reader.close()


def test_reader_rejects_truncation(tmp_path, corpus_examples):
    path = tmp_path / "one.bin"
    data = build_shard_bytes([encode_record(ex) for ex in corpus_examples])
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ShardCorrupted) as excinfo:
        ShardReader(path)
    assert str(path) in str(excinfo.value)


def test_reader_rejects_foreign_file(tmp_path):
    path = tmp_path / "not_a_shard.bin"
    path.write_bytes(b"\x00" * 100)
    with pytest.raises(ShardCorrupted, match="magic"):
        ShardReader(path)


def test_reader_rejects_record_count_mismatch(tmp_path, corpus_examples):
    path = tmp_path / "one.bin"
    path.write_bytes(build_shard_bytes([encode_record(ex) for ex in corpus_examples]))
    with pytest.raises(ShardCorrupted, match="record count"):
        ShardReader(path, expected_records=3)


def test_access_time_crc_detects_post_open_flip(tmp_path, corpus_examples):
    from faults import corrupt_file

    path = tmp_path / "one.bin"
    payloads = [encode_record(ex) for ex in corpus_examples[:3]]
    path.write_bytes(build_shard_bytes(payloads))
    reader = ShardReader(path)
    assert reader.payload(1) == payloads[1]
    # Flip one byte inside record 1's payload AFTER the reader opened.
    offset = path.read_bytes().index(payloads[1])
    corrupt_file(path, offset=offset + 2)
    reader.close()
    reader = ShardReader(path)
    with pytest.raises(ShardCorrupted) as excinfo:
        reader.payload(1)
    assert excinfo.value.offset == 1
    assert reader.payload(0) == payloads[0]  # neighbours unaffected
    reader.close()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def test_manifest_missing_is_typed(tmp_path):
    with pytest.raises(ShardStoreError, match="acnn ingest"):
        Manifest.load(tmp_path)


def test_manifest_torn_json_is_corruption(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(manifest_path.read_text()[:40])
    with pytest.raises(ShardCorrupted, match="manifest"):
        Manifest.load(directory)
    with pytest.raises(ShardCorrupted):
        ShardedCorpus.open(directory)  # quarantine mode never eats a torn manifest


def test_manifest_bad_schema_is_corruption(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": 1, "shards": 3}))
    with pytest.raises(ShardCorrupted, match="malformed"):
        Manifest.load(tmp_path)


# ----------------------------------------------------------------------
# Writer / ingest
# ----------------------------------------------------------------------
def test_ingest_shard_layout(tmp_path, corpus_examples):
    directory, result = _store(tmp_path, corpus_examples, shard_records=4)
    manifest = result.manifest
    assert manifest.complete
    assert [info.records for info in manifest.shards] == [4, 4, 2]
    assert manifest.total_records == len(corpus_examples)
    for info in manifest.shards:
        assert os.path.getsize(directory / info.name) == info.bytes


def test_ingest_complete_store_is_noop(tmp_path, corpus_examples):
    directory, first = _store(tmp_path, corpus_examples)
    again = ingest_examples(corpus_examples, directory, shard_records=4)
    assert again.ingested == 0
    assert again.digest == first.digest


def test_ingest_complete_store_rejects_other_shard_size(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples, shard_records=4)
    with pytest.raises(ShardStoreError, match="shard_records"):
        ingest_examples(corpus_examples, directory, shard_records=8)


def test_resume_rejects_shard_records_drift(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    writer = ShardWriter(directory, shard_records=4)
    for example in corpus_examples[:5]:
        writer.append(example)  # one full shard committed, one buffered
    with pytest.raises(ShardStoreError, match="drift"):
        ShardWriter(directory, shard_records=8)


def test_writer_rejects_oversize_record(tmp_path):
    writer = ShardWriter(tmp_path / "store", shard_records=4, max_record_bytes=64)
    huge = QGExample(
        sentence=tuple("tok%d" % i for i in range(200)),
        paragraph=(),
        question=("why", "?"),
    )
    with pytest.raises(RecordTooLarge):
        writer.append(huge)


def test_no_resume_rebuilds_from_scratch(tmp_path, corpus_examples):
    directory, first = _store(tmp_path, corpus_examples)
    rebuilt = ingest_examples(
        corpus_examples[:6], directory, shard_records=4, resume=False
    )
    assert rebuilt.manifest.total_records == 6
    corpus = ShardedCorpus.open(directory)
    assert list(corpus) == corpus_examples[:6]
    # No stale shard files from the first, larger generation survive.
    shard_files = sorted(p.name for p in directory.glob("shard-*.bin"))
    assert shard_files == [info.name for info in rebuilt.manifest.shards]


def test_writer_sweeps_orphans_on_resume(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    writer = ShardWriter(directory, shard_records=4)
    for example in corpus_examples[:4]:
        writer.append(example)  # shard-000000 committed via manifest
    # Simulate a kill that left an unpublished temp and an uncommitted shard.
    (directory / "shard-000007.bin.tmp.xyz").write_bytes(b"partial")
    (directory / "shard-000001.bin").write_bytes(b"never entered the manifest")
    resumed = ShardWriter(directory, shard_records=4)
    assert resumed.records_committed == 4
    names = {os.path.basename(path) for path in resumed.swept}
    assert names == {"shard-000007.bin.tmp.xyz", "shard-000001.bin"}
    assert not (directory / "shard-000001.bin").exists()


# ----------------------------------------------------------------------
# ShardedCorpus reads
# ----------------------------------------------------------------------
def test_corpus_round_trip_and_digest(tmp_path, corpus_examples):
    directory, result = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    assert len(corpus) == len(corpus_examples)
    assert list(corpus) == corpus_examples
    assert corpus[-1] == corpus_examples[-1]
    assert corpus.corpus_digest == result.digest
    assert corpus.quarantined == 0
    corpus.close()


def test_corpus_slice_is_lazy_view(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    view = corpus[2:7]
    assert list(view) == corpus_examples[2:7]
    assert view[1] == corpus_examples[3]
    assert list(view[1:3]) == corpus_examples[3:5]
    assert view.corpus_digest == corpus.corpus_digest


def test_split_corpus_matches_split_examples(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    lazy = split_corpus(corpus, dev_fraction=0.2, test_fraction=0.1, seed=11)
    eager = split_examples(
        corpus_examples, dev_fraction=0.2, test_fraction=0.1, seed=11
    )
    for lazy_split, eager_split in zip(lazy, eager):
        assert list(lazy_split) == eager_split


def test_split_corpus_validates_fractions(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    with pytest.raises(ValueError):
        split_corpus(corpus, dev_fraction=0.6, test_fraction=0.5)
    with pytest.raises(ValueError):
        split_corpus(corpus, dev_fraction=-0.1)


def test_open_verify_false_skips_digest_but_keeps_structure(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory, verify=False)
    assert list(corpus) == corpus_examples


def test_skip_budget_enforced_on_open(tmp_path, corpus_examples):
    from faults import truncate_file

    directory, result = _store(tmp_path, corpus_examples, shard_records=4)
    truncate_file(directory / result.manifest.shards[0].name, keep_fraction=0.3)
    report = LoadReport(max_skip_fraction=0.1)
    with pytest.raises(SkipBudgetExceeded, match="budget"):
        ShardedCorpus.open(directory, report=report)
    # A permissive budget admits the survivors and counts the loss.
    relaxed = LoadReport(max_skip_fraction=0.5)
    corpus = ShardedCorpus.open(directory, report=relaxed)
    assert len(corpus) == 6
    assert relaxed.skipped_by_reason == {"shard_unreadable": 4}


# ----------------------------------------------------------------------
# StreamingQGDataset
# ----------------------------------------------------------------------
def test_streaming_dataset_matches_eager(tmp_path, corpus_examples):
    directory, result = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    encoder, decoder = QGDataset.build_vocabs(corpus_examples, 200, 100)
    eager = QGDataset(corpus_examples, encoder, decoder)
    lazy = StreamingQGDataset(corpus, encoder, decoder)
    assert len(lazy) == len(eager)
    assert list(lazy) == eager.encoded
    assert [lazy[i] for i in range(len(lazy))] == eager.encoded
    assert lazy.source_lengths == [len(ex.src_ids) for ex in eager.encoded]
    assert lazy.corpus_digest == result.digest
    assert lazy.copyable_oov_rate() == eager.copyable_oov_rate()


def test_streaming_dataset_paragraph_mode_matches(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    encoder, decoder = QGDataset.build_vocabs(
        corpus_examples, 200, 100, source_mode="paragraph", paragraph_length=6
    )
    eager = QGDataset(
        corpus_examples, encoder, decoder, source_mode="paragraph", paragraph_length=6
    )
    lazy = StreamingQGDataset(
        corpus, encoder, decoder, source_mode="paragraph", paragraph_length=6
    )
    assert list(lazy) == eager.encoded
    assert lazy.source_lengths == [len(ex.src_ids) for ex in eager.encoded]


def test_streaming_dataset_validates_mode(tmp_path, corpus_examples):
    directory, _ = _store(tmp_path, corpus_examples)
    corpus = ShardedCorpus.open(directory)
    encoder, decoder = QGDataset.build_vocabs(corpus_examples, 200, 100)
    with pytest.raises(ValueError, match="source mode"):
        StreamingQGDataset(corpus, encoder, decoder, source_mode="document")
