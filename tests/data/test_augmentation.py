"""Tests for entity-renaming data augmentation."""

import numpy as np
import pytest

from repro.data import QGExample, augment_examples, rename_entities


def _example():
    return QGExample(
        sentence=tuple("zorvex was born in karlin in 1887 .".split()),
        paragraph=tuple("the town . zorvex was born in karlin in 1887 .".split()),
        question=tuple("where was zorvex born ?".split()),
        answer=("karlin",),
    )


def test_shared_content_tokens_renamed():
    renamed = rename_entities(_example(), np.random.default_rng(0))
    assert "zorvex" not in renamed.sentence
    assert "zorvex" not in renamed.question


def test_renaming_is_consistent_across_fields():
    renamed = rename_entities(_example(), np.random.default_rng(0))
    new_name = renamed.question[2]  # "where was <X> born ?"
    assert renamed.sentence[0] == new_name
    assert new_name in renamed.paragraph


def test_function_words_untouched():
    renamed = rename_entities(_example(), np.random.default_rng(0))
    assert renamed.question[0] == "where"
    assert renamed.question[-1] == "?"
    assert "was" in renamed.sentence
    assert "born" in renamed.sentence


def test_unshared_tokens_untouched():
    """'karlin' is in the sentence but not the question: left alone."""
    renamed = rename_entities(_example(), np.random.default_rng(0))
    assert "karlin" in renamed.sentence


def test_no_shared_content_returns_same_object():
    example = QGExample(
        sentence=("it", "is", "red", "."),
        paragraph=("it", "is", "red", "."),
        question=("what", "?"),
    )
    assert rename_entities(example, np.random.default_rng(0)) is example


def test_renaming_preserves_structure():
    original = _example()
    renamed = rename_entities(original, np.random.default_rng(0))
    assert len(renamed.sentence) == len(original.sentence)
    assert len(renamed.question) == len(original.question)
    assert len(renamed.paragraph) == len(original.paragraph)


def test_digits_remapped_to_digits():
    example = QGExample(
        sentence=("opened", "in", "1887", "."),
        paragraph=("opened", "in", "1887", "."),
        question=("when", "did", "it", "open", "in", "1887", "?"),
    )
    renamed = rename_entities(example, np.random.default_rng(0))
    new_year = renamed.sentence[2]
    assert new_year.isdigit()
    assert new_year != "1887"
    assert renamed.question[5] == new_year


def test_augment_examples_factor():
    examples = [_example()]
    doubled = augment_examples(examples, factor=1, seed=0)
    tripled = augment_examples(examples, factor=2, seed=0)
    assert len(doubled) == 2
    assert len(tripled) == 3
    assert doubled[0] is examples[0]


def test_augment_deterministic():
    examples = [_example()]
    a = augment_examples(examples, factor=1, seed=4)
    b = augment_examples(examples, factor=1, seed=4)
    assert a[1] == b[1]


def test_augment_factor_zero_is_identity():
    examples = [_example()]
    assert augment_examples(examples, factor=0) == examples


def test_augment_negative_factor_rejected():
    with pytest.raises(ValueError):
        augment_examples([_example()], factor=-1)


def test_augmented_examples_still_copyable():
    """The renamed entity must still be copyable from the new source."""
    renamed = rename_entities(_example(), np.random.default_rng(1))
    entity = renamed.question[2]
    assert entity in renamed.sentence
