"""Tests for the synthetic SQuAD-style corpus generator."""

import numpy as np
import pytest

from repro.data import QGDataset, SyntheticConfig, generate_corpus
from repro.data.vocabulary import Vocabulary


def _small_config(**overrides):
    defaults = dict(num_train=200, num_dev=30, num_test=30, seed=7)
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


def test_split_sizes_match_config():
    corpus = generate_corpus(_small_config())
    assert len(corpus.train) == 200
    assert len(corpus.dev) == 30
    assert len(corpus.test) == 30


def test_generation_is_deterministic():
    a = generate_corpus(_small_config())
    b = generate_corpus(_small_config())
    assert a.train == b.train
    assert a.test == b.test


def test_different_seeds_differ():
    a = generate_corpus(_small_config(seed=1))
    b = generate_corpus(_small_config(seed=2))
    assert a.train != b.train


def test_sentence_is_prefix_window_of_paragraph():
    corpus = generate_corpus(_small_config())
    for ex in corpus.train[:50]:
        joined_para = " ".join(ex.paragraph)
        joined_sent = " ".join(ex.sentence)
        assert joined_sent in joined_para


def test_paragraphs_exceed_largest_truncation_length():
    """Table 2 sweeps truncation at 100/120/150; paragraphs must be longer."""
    corpus = generate_corpus(_small_config())
    lengths = [len(ex.paragraph) for ex in corpus.train]
    assert min(lengths) >= 150


def test_fact_sentence_inside_smallest_truncation_window():
    """The answer-bearing sentence must survive truncation to 100 tokens."""
    corpus = generate_corpus(_small_config())
    for ex in corpus.train[:50]:
        window = " ".join(ex.paragraph[:100])
        assert " ".join(ex.sentence) in window


def test_questions_copy_source_tokens():
    """Every question shares at least one content token with its sentence."""
    corpus = generate_corpus(_small_config())
    for ex in corpus.train[:100]:
        overlap = set(ex.question) & set(ex.sentence)
        content_overlap = {t for t in overlap if len(t) > 3 or t.isdigit()}
        assert content_overlap, f"no copied content in {ex.question}"


def test_answers_come_from_sentence():
    corpus = generate_corpus(_small_config())
    for ex in corpus.train[:100]:
        for token in ex.answer:
            assert token in ex.sentence


def test_questions_end_with_question_mark():
    corpus = generate_corpus(_small_config())
    assert all(ex.question[-1] == "?" for ex in corpus.train)


def test_entity_distribution_has_long_tail():
    """Most entities should be rare — the regime where copying matters."""
    corpus = generate_corpus(_small_config(num_train=500))
    counts = {}
    for ex in corpus.train:
        for token in ex.answer:
            counts[token] = counts.get(token, 0) + 1
    rare = sum(1 for c in counts.values() if c <= 3)
    assert rare / len(counts) > 0.5


def test_decoder_oov_copyable_rate_is_substantial():
    """With a truncated decoder vocab, many gold tokens are copy-only."""
    corpus = generate_corpus(_small_config(num_train=500))
    enc_vocab, dec_vocab = QGDataset.build_vocabs(
        corpus.train, encoder_vocab_size=800, decoder_vocab_size=120
    )
    dataset = QGDataset(corpus.test, enc_vocab, dec_vocab)
    assert dataset.copyable_oov_rate() > 0.05


def test_split_accessor():
    corpus = generate_corpus(_small_config())
    assert corpus.split("train") is corpus.train
    with pytest.raises(KeyError):
        corpus.split("validation")


def test_total_property():
    config = _small_config()
    assert config.total == 260
