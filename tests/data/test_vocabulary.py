"""Tests for Vocabulary construction, lookup, and persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BOS, EOS, PAD, UNK, Vocabulary


def test_special_tokens_have_fixed_ids():
    vocab = Vocabulary()
    assert vocab.pad_id == 0
    assert vocab.unk_id == 1
    assert vocab.bos_id == 2
    assert vocab.eos_id == 3
    assert len(vocab) == 4


def test_build_orders_by_frequency():
    vocab = Vocabulary.build([["b", "a", "a"], ["a", "b", "c"]])
    # a(3) > b(2) > c(1)
    assert vocab.token_to_id("a") == 4
    assert vocab.token_to_id("b") == 5
    assert vocab.token_to_id("c") == 6


def test_build_breaks_frequency_ties_alphabetically():
    vocab = Vocabulary.build([["z", "a"]])
    assert vocab.token_to_id("a") < vocab.token_to_id("z")


def test_build_max_size_keeps_most_frequent():
    vocab = Vocabulary.build([["a"] * 5 + ["b"] * 3 + ["c"]], max_size=2)
    assert "a" in vocab
    assert "b" in vocab
    assert "c" not in vocab


def test_build_min_freq_filters():
    vocab = Vocabulary.build([["a", "a", "b"]], min_freq=2)
    assert "a" in vocab
    assert "b" not in vocab


def test_build_ignores_special_tokens_in_data():
    vocab = Vocabulary.build([[PAD, UNK, "word"]])
    assert len(vocab) == 5  # specials + "word"


def test_unknown_maps_to_unk():
    vocab = Vocabulary.build([["known"]])
    assert vocab.token_to_id("unknown") == vocab.unk_id


def test_encode_decode_round_trip():
    vocab = Vocabulary.build([["who", "wrote", "it", "?"]])
    tokens = ["who", "wrote", "it", "?"]
    assert vocab.decode(vocab.encode(tokens)) == tokens


def test_decode_strips_specials_by_default():
    vocab = Vocabulary.build([["hi"]])
    ids = [vocab.bos_id, vocab.token_to_id("hi"), vocab.eos_id]
    assert vocab.decode(ids) == ["hi"]
    assert vocab.decode(ids, strip_special=False) == [BOS, "hi", EOS]


def test_id_to_token_out_of_range_raises():
    with pytest.raises(IndexError):
        Vocabulary().id_to_token(99)


def test_contains():
    vocab = Vocabulary.build([["word"]])
    assert "word" in vocab
    assert "missing" not in vocab
    assert PAD in vocab


def test_save_load_round_trip(tmp_path):
    vocab = Vocabulary.build([["alpha", "beta", "beta"]])
    path = tmp_path / "vocab.json"
    vocab.save(path)
    loaded = Vocabulary.load(path)
    assert loaded.tokens == vocab.tokens


def test_load_rejects_non_vocab_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('["not", "a", "vocab"]')
    with pytest.raises(ValueError):
        Vocabulary.load(path)


def test_build_is_deterministic_across_input_order():
    a = Vocabulary.build([["x", "y"], ["y", "z"]])
    b = Vocabulary.build([["y", "z"], ["x", "y"]])
    assert a.tokens == b.tokens


@given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_encode_ids_always_in_range(tokens):
    vocab = Vocabulary.build([tokens], max_size=10)
    ids = vocab.encode(tokens + ["definitely-not-here"])
    assert all(0 <= i < len(vocab) for i in ids)


@given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_in_vocab_tokens_round_trip(tokens):
    vocab = Vocabulary.build([tokens])
    for token in tokens:
        assert vocab.id_to_token(vocab.token_to_id(token)) == token
