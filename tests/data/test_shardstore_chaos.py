"""Shard-store chaos suite: every injected data fault is either quarantined
and counted, or raised with shard + record-offset provenance — and a kill at
ANY persistence point leaves a store a re-run completes bit-identically.

Mirrors the checkpoint/elastic chaos style (``tests/training/faults.py``):
``crash_on_nth_publish`` dies mid-``atomic_write`` (the shard store
publishes through the same ``repro.tensor.serialization._publish`` seam as
checkpoints), ``truncate_file``/``corrupt_file`` damage surviving bytes.
The training-parity tests close the loop on the PR's headline claim:
training from the mmap-backed store is byte-identical to in-memory lists at
several worker counts.
"""

import os

import numpy as np
import pytest

from faults import SimulatedCrash, corrupt_file, crash_on_nth_publish, truncate_file

from repro.data import (
    BatchIterator,
    CorpusChangedError,
    LoadReport,
    QGDataset,
    ShardCorrupted,
    ShardedCorpus,
    StreamingQGDataset,
    ingest_examples,
    split_corpus,
)
from repro.data.shardstore import MANIFEST_NAME
from repro.models import ModelConfig, build_model
from repro.training import (
    ElasticConfig,
    ElasticTrainer,
    ResilienceConfig,
    TrainerConfig,
)

RUN_SEED = 7


def _dir_bytes(directory) -> dict[str, bytes]:
    return {
        name: (directory / name).read_bytes()
        for name in sorted(os.listdir(directory))
    }


def _ingest(examples, directory, **kwargs):
    return ingest_examples(examples, directory, shard_records=4, **kwargs)


# ----------------------------------------------------------------------
# Kill-mid-ingest: resume is bit-identical at EVERY publish point
# ----------------------------------------------------------------------
def test_resume_after_kill_at_every_publish_point(tmp_path, corpus_examples):
    reference_dir = tmp_path / "reference"
    _ingest(corpus_examples, reference_dir)
    reference = _dir_bytes(reference_dir)

    # 10 records at 4/shard = 3 shard publishes + 3 manifest publishes + the
    # completing manifest = 7 publish points. Kill at each one.
    total_publishes = 7
    for kill_at in range(1, total_publishes + 1):
        directory = tmp_path / f"killed_{kill_at}"
        with crash_on_nth_publish(kill_at):
            with pytest.raises(SimulatedCrash):
                _ingest(corpus_examples, directory)
        resumed = _ingest(corpus_examples, directory)
        assert resumed.manifest.complete
        assert _dir_bytes(directory) == reference, (
            f"kill at publish #{kill_at}: resumed store is not bit-identical"
        )


def test_kill_survivor_is_readable_before_resume(tmp_path, corpus_examples):
    """The post-kill store (pre-resume) is a valid, smaller corpus."""
    directory = tmp_path / "store"
    with crash_on_nth_publish(5):  # dies publishing shard 3 of 3
        with pytest.raises(SimulatedCrash):
            _ingest(corpus_examples, directory)
    corpus = ShardedCorpus.open(directory)
    assert list(corpus) == corpus_examples[:8]  # 2 committed shards of 4


# ----------------------------------------------------------------------
# Damage taxonomy: quarantined-and-counted or raised with provenance
# ----------------------------------------------------------------------
def test_truncated_shard_quarantined_or_raised(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    result = _ingest(corpus_examples, directory)
    victim = directory / result.manifest.shards[1].name
    truncate_file(victim, keep_fraction=0.5)

    with pytest.raises(ShardCorrupted) as excinfo:
        ShardedCorpus.open(directory, strict=True)
    assert str(victim) in str(excinfo.value)

    report = LoadReport()
    corpus = ShardedCorpus.open(directory, report=report)
    assert list(corpus) == corpus_examples[:4] + corpus_examples[8:]
    assert report.skipped_by_reason == {"shard_unreadable": 4}


def test_missing_shard_quarantined_or_raised(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    result = _ingest(corpus_examples, directory)
    os.unlink(directory / result.manifest.shards[0].name)
    with pytest.raises(ShardCorrupted, match="missing"):
        ShardedCorpus.open(directory, strict=True)
    report = LoadReport()
    corpus = ShardedCorpus.open(directory, report=report)
    assert list(corpus) == corpus_examples[4:]
    assert report.skipped == 4


def test_bit_flip_in_record_quarantines_just_that_record(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    result = _ingest(corpus_examples, directory)
    shard_path = directory / result.manifest.shards[0].name
    # Flip a byte inside record 2's payload (found by content).
    from repro.data.shardstore import encode_record

    payload = encode_record(corpus_examples[2])
    corrupt_file(shard_path, offset=shard_path.read_bytes().index(payload) + 1)

    with pytest.raises(ShardCorrupted):
        ShardedCorpus.open(directory, strict=True)

    report = LoadReport()
    corpus = ShardedCorpus.open(directory, report=report)
    expected = [ex for i, ex in enumerate(corpus_examples) if i != 2]
    assert list(corpus) == expected
    assert report.skipped_by_reason == {"record_crc_mismatch": 1}


def test_bit_flip_sweep_never_silently_wrong(tmp_path, corpus_examples):
    """Flip every 13th byte of one shard, one at a time: each outcome is a
    raise-with-provenance or a skip-and-count — never altered examples."""
    directory = tmp_path / "store"
    result = _ingest(corpus_examples, directory)
    shard_path = directory / result.manifest.shards[1].name
    pristine = shard_path.read_bytes()
    original = set(corpus_examples)
    for offset in range(0, len(pristine), 13):
        corrupt_file(shard_path, offset=offset)
        report = LoadReport()
        try:
            corpus = ShardedCorpus.open(directory, report=report)
        except ShardCorrupted as err:
            assert err.path  # provenance always present
        else:
            survivors = list(corpus)
            assert all(example in original for example in survivors)
            assert len(survivors) + report.skipped == len(corpus_examples)
            corpus.close()
        shard_path.write_bytes(pristine)


def test_stale_manifest_checksum(tmp_path, corpus_examples):
    """Manifest digest no longer matches healthy shard bytes: the shard is
    too suspicious to serve (whole-shard quarantine) or a strict raise."""
    import json

    directory = tmp_path / "store"
    result = _ingest(corpus_examples, directory)
    manifest_path = directory / MANIFEST_NAME
    payload = json.loads(manifest_path.read_text())
    payload["shards"][2]["sha256"] = "0" * 64
    manifest_path.write_text(json.dumps(payload))

    with pytest.raises(ShardCorrupted, match="SHA-256"):
        ShardedCorpus.open(directory, strict=True)

    report = LoadReport()
    corpus = ShardedCorpus.open(directory, report=report)
    assert list(corpus) == corpus_examples[:8]
    assert report.skipped_by_reason == {"shard_digest_mismatch": 2}


def test_torn_manifest_always_raises(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    _ingest(corpus_examples, directory)
    truncate_file(directory / MANIFEST_NAME, keep_fraction=0.4)
    for strict in (False, True):
        with pytest.raises(ShardCorrupted, match="manifest"):
            ShardedCorpus.open(directory, strict=strict)


# ----------------------------------------------------------------------
# Training parity: mmap-backed store vs in-memory lists
# ----------------------------------------------------------------------
def _train(examples_container, workers, epochs=2):
    encoder, decoder = QGDataset.build_vocabs(list(examples_container), 200, 100)
    dataset = (
        StreamingQGDataset(examples_container, encoder, decoder)
        if not isinstance(examples_container, list)
        else QGDataset(examples_container, encoder, decoder)
    )
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.3, seed=0)
    model = build_model("acnn", config, len(encoder), len(decoder))
    dev = BatchIterator(dataset, batch_size=2, shuffle=False)
    trainer = ElasticTrainer(
        model,
        dataset,
        batch_size=2,
        dev_iterator=dev,
        config=TrainerConfig(epochs=epochs, learning_rate=0.5),
        elastic=ElasticConfig(
            workers=workers,
            microbatches_per_step=2,
            worker_timeout=5.0,
            heartbeat_interval=0.1,
            restart_backoff=0.05,
        ),
        run_seed=RUN_SEED,
    )
    history = trainer.train()
    losses = [(r.train_loss, r.dev_loss) for r in history.records]
    return trainer, trainer.model.state_dict(), losses


@pytest.mark.parametrize("workers", [0, 2])
def test_training_from_store_matches_in_memory(tmp_path, corpus_examples, workers):
    directory = tmp_path / "store"
    _ingest(corpus_examples, directory)
    corpus = ShardedCorpus.open(directory)

    _, memory_params, memory_losses = _train(list(corpus_examples), workers=0)
    trainer, shard_params, shard_losses = _train(corpus, workers=workers)

    assert shard_losses == memory_losses
    assert memory_params.keys() == shard_params.keys()
    for name in memory_params:
        assert np.array_equal(memory_params[name], shard_params[name]), name
    assert trainer.corpus_digest == corpus.manifest_digest


def test_snapshot_stamps_digest_and_rejects_changed_corpus(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    _ingest(corpus_examples, directory)
    corpus = ShardedCorpus.open(directory)
    encoder, decoder = QGDataset.build_vocabs(corpus_examples, 200, 100)
    dataset = StreamingQGDataset(corpus, encoder, decoder)
    config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.3, seed=0)
    snap_dir = tmp_path / "snaps"

    def trainer_for(container):
        model = build_model("acnn", config, len(encoder), len(decoder))
        return ElasticTrainer(
            model,
            container,
            batch_size=2,
            config=TrainerConfig(epochs=1, learning_rate=0.5),
            elastic=ElasticConfig(workers=0, microbatches_per_step=2),
            resilience=ResilienceConfig(directory=snap_dir),
            run_seed=RUN_SEED,
        )

    trainer_for(dataset).train()

    # Re-ingest a DIFFERENT corpus into the same directory: new digest.
    corpus.close()
    _ingest(corpus_examples[:6], directory, resume=False)
    changed = ShardedCorpus.open(directory)
    changed_dataset = StreamingQGDataset(changed, encoder, decoder)
    with pytest.raises(CorpusChangedError, match="corpus"):
        trainer_for(changed_dataset).train(resume_from=snap_dir)

    # Same digest resumes fine (already-finished run just returns).
    _ingest(corpus_examples, directory, resume=False)
    # Rebuilding the identical corpus reproduces the identical manifest
    # bytes, hence the identical digest — resume is accepted.
    same = ShardedCorpus.open(directory)
    same_dataset = StreamingQGDataset(same, encoder, decoder)
    trainer_for(same_dataset).train(resume_from=snap_dir)


def test_split_corpus_training_stays_lazy_and_deterministic(tmp_path, corpus_examples):
    """End-to-end shape of the CLI path: split views over one open store."""
    directory = tmp_path / "store"
    _ingest(corpus_examples, directory)
    corpus = ShardedCorpus.open(directory)
    train_view, dev_view, _ = split_corpus(corpus, dev_fraction=0.2, seed=3)
    encoder, decoder = QGDataset.build_vocabs(train_view, 200, 100)
    train_set = StreamingQGDataset(train_view, encoder, decoder)
    dev_set = StreamingQGDataset(dev_view, encoder, decoder)
    iterator = BatchIterator(train_set, batch_size=2, seed=5)
    first = [batch.src.tobytes() for batch in iterator]
    eager_train = QGDataset(list(train_view), encoder, decoder)
    second = [b.src.tobytes() for b in BatchIterator(eager_train, batch_size=2, seed=5)]
    assert first == second
    assert len(dev_set) == 2
