"""Tests for template filtering (the domain-transfer substrate)."""

import pytest

from repro.data import TEMPLATE_NAMES, generate_corpus
from repro.data.synthetic import SyntheticConfig


def test_template_names_exposed():
    assert "birth" in TEMPLATE_NAMES
    assert "acquisition" in TEMPLATE_NAMES
    assert len(TEMPLATE_NAMES) >= 10


def test_restricting_templates_limits_question_forms():
    config = SyntheticConfig(
        num_train=100, num_dev=10, num_test=10, template_names=("capital",)
    )
    corpus = generate_corpus(config)
    for example in corpus.train:
        assert "capital" in example.sentence


def test_disjoint_domains_have_disjoint_patterns():
    geo = generate_corpus(
        SyntheticConfig(num_train=50, num_dev=5, num_test=5, template_names=("river",))
    )
    org = generate_corpus(
        SyntheticConfig(num_train=50, num_dev=5, num_test=5, template_names=("acquisition",))
    )
    geo_words = {t for ex in geo.train for t in ex.sentence}
    org_words = {t for ex in org.train for t in ex.sentence}
    assert "river" in geo_words and "river" not in org_words
    assert "acquired" in org_words and "acquired" not in geo_words


def test_unknown_template_name_raises():
    with pytest.raises(KeyError):
        generate_corpus(
            SyntheticConfig(num_train=10, num_dev=2, num_test=2, template_names=("nonexistent",))
        )


def test_none_template_names_uses_all():
    corpus = generate_corpus(SyntheticConfig(num_train=300, num_dev=10, num_test=10))
    first_words = {ex.question[0] for ex in corpus.train}
    # All templates together produce many distinct wh-openers.
    assert len(first_words) >= 4
