"""Vocabularies recorded at ingest time: streaming build, reuse, staleness.

Satellite contract: ``build_vocabs`` consumes any iterable in one pass
(so a memory-mapped :class:`ShardedCorpus` never has to be materialised),
and the ``VOCABS.json`` record lets train/serve skip the re-scan — but
only when it provably belongs to this corpus generation and these
construction parameters.
"""

import json
import os

import pytest

from repro.data import (
    QGDataset,
    ShardCorrupted,
    ShardedCorpus,
    Vocabulary,
    VocabsMismatchError,
    ingest_examples,
    load_vocabs,
    save_vocabs,
    vocab_params,
)
from repro.data.shardstore import VOCABS_NAME


PARAMS = vocab_params(100, 100, "sentence", 100)


def _store_with_vocabs(tmp_path, examples, params=PARAMS):
    directory = tmp_path / "store"
    result = ingest_examples(examples, directory, shard_records=4)
    corpus = ShardedCorpus.open(directory)
    try:
        encoder, decoder = QGDataset.build_vocabs(iter(corpus), 100, 100)
    finally:
        corpus.close()
    save_vocabs(directory, encoder, decoder, result.digest, params)
    return directory, result.digest, encoder, decoder


# ----------------------------------------------------------------------
# Streaming construction
# ----------------------------------------------------------------------
def test_build_vocabs_accepts_one_shot_iterable(corpus_examples):
    from_list = QGDataset.build_vocabs(corpus_examples, 100, 100)
    from_generator = QGDataset.build_vocabs(
        (example for example in corpus_examples), 100, 100
    )
    assert from_generator[0].tokens == from_list[0].tokens
    assert from_generator[1].tokens == from_list[1].tokens


def test_build_vocabs_streams_a_sharded_corpus(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    ingest_examples(corpus_examples, directory, shard_records=4)
    corpus = ShardedCorpus.open(directory)
    try:
        streamed = QGDataset.build_vocabs(iter(corpus), 100, 100)
    finally:
        corpus.close()
    materialised = QGDataset.build_vocabs(corpus_examples, 100, 100)
    assert streamed[0].tokens == materialised[0].tokens
    assert streamed[1].tokens == materialised[1].tokens


def test_from_counts_matches_build(corpus_examples):
    tokens = [token for example in corpus_examples for token in example.question]
    from collections import Counter

    built = Vocabulary.build([tokens], max_size=8, min_freq=1)
    from_counts = Vocabulary.from_counts(Counter(tokens), max_size=8, min_freq=1)
    assert from_counts.tokens == built.tokens


# ----------------------------------------------------------------------
# The VOCABS.json record
# ----------------------------------------------------------------------
def test_save_load_round_trip(tmp_path, corpus_examples):
    directory, digest, encoder, decoder = _store_with_vocabs(tmp_path, corpus_examples)
    loaded = load_vocabs(directory, digest, PARAMS)
    assert loaded is not None
    assert loaded[0].tokens == encoder.tokens
    assert loaded[1].tokens == decoder.tokens
    # Token → id maps agree too (ids drive everything downstream).
    for token in encoder.tokens:
        assert loaded[0].token_to_id(token) == encoder.token_to_id(token)


def test_load_returns_none_when_absent(tmp_path, corpus_examples):
    directory = tmp_path / "store"
    result = ingest_examples(corpus_examples, directory, shard_records=4)
    assert load_vocabs(directory, result.digest, PARAMS) is None


def test_digest_drift_is_a_typed_mismatch(tmp_path, corpus_examples):
    directory, _, _, _ = _store_with_vocabs(tmp_path, corpus_examples)
    with pytest.raises(VocabsMismatchError, match="acnn ingest"):
        load_vocabs(directory, "0" * 64, PARAMS)


def test_params_drift_is_a_typed_mismatch(tmp_path, corpus_examples):
    directory, digest, _, _ = _store_with_vocabs(tmp_path, corpus_examples)
    other = vocab_params(50, 100, "sentence", 100)
    with pytest.raises(VocabsMismatchError):
        load_vocabs(directory, digest, other)
    with pytest.raises(VocabsMismatchError):
        load_vocabs(directory, digest, vocab_params(100, 100, "paragraph", 100))


def test_torn_record_is_corruption(tmp_path, corpus_examples):
    directory, digest, _, _ = _store_with_vocabs(tmp_path, corpus_examples)
    location = os.path.join(directory, VOCABS_NAME)
    with open(location, encoding="utf-8") as handle:
        text = handle.read()
    with open(location, "w", encoding="utf-8") as handle:
        handle.write(text[: len(text) // 2])
    with pytest.raises(ShardCorrupted):
        load_vocabs(directory, digest, PARAMS)


def test_record_missing_specials_is_corruption(tmp_path, corpus_examples):
    directory, digest, _, _ = _store_with_vocabs(tmp_path, corpus_examples)
    location = os.path.join(directory, VOCABS_NAME)
    with open(location, encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["encoder_tokens"] = payload["encoder_tokens"][2:]  # drop specials
    with open(location, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(ShardCorrupted):
        load_vocabs(directory, digest, PARAMS)
