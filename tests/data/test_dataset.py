"""Tests for QGDataset encoding (copy supervision, extended vocab, modes)."""

import pytest

from repro.data import QGDataset, QGExample, SourceMode, Vocabulary


def _example():
    return QGExample(
        sentence=tuple("zorvex was born in karlin in 1887 .".split()),
        paragraph=tuple(
            "the town is old . zorvex was born in karlin in 1887 . trade grew fast .".split()
        ),
        question=tuple("where was zorvex born ?".split()),
    )


def _vocabs(decoder_tokens=("where", "was", "born", "?", "in", "the")):
    encoder = Vocabulary.build([_example().paragraph])
    decoder = Vocabulary(list(decoder_tokens))
    return encoder, decoder


def _dataset(**kwargs):
    encoder, decoder = _vocabs()
    return QGDataset([_example()], encoder, decoder, **kwargs)


def test_sentence_mode_uses_sentence():
    dataset = _dataset(source_mode=SourceMode.SENTENCE)
    assert dataset[0].src_tokens == _example().sentence


def test_paragraph_mode_truncates():
    dataset = _dataset(source_mode=SourceMode.PARAGRAPH, paragraph_length=5)
    assert dataset[0].src_tokens == _example().paragraph[:5]


def test_invalid_source_mode_raises():
    encoder, decoder = _vocabs()
    with pytest.raises(ValueError):
        QGDataset([_example()], encoder, decoder, source_mode="document")


def test_target_shifted_by_bos_eos():
    dataset = _dataset()
    encoded = dataset[0]
    decoder = dataset.decoder_vocab
    assert encoded.tgt_input_ids[0] == decoder.bos_id
    assert encoded.tgt_output_ids[-1] == decoder.eos_id
    assert len(encoded.tgt_input_ids) == len(encoded.tgt_output_ids)


def test_oov_question_token_becomes_unk_in_ids():
    dataset = _dataset()
    encoded = dataset[0]
    decoder = dataset.decoder_vocab
    # "zorvex" is not in the decoder vocab.
    step = _example().question.index("zorvex")
    assert encoded.tgt_output_ids[step] == decoder.unk_id


def test_copy_positions_point_at_gold_token():
    dataset = _dataset()
    encoded = dataset[0]
    step = _example().question.index("zorvex")
    positions = encoded.copy_positions[step]
    assert positions
    assert all(encoded.src_tokens[p] == "zorvex" for p in positions)


def test_copy_positions_include_repeats():
    dataset = _dataset()
    encoded = dataset[0]
    # "was" appears once in the sentence; "in" twice.
    in_steps = [i for i, t in enumerate(_example().question) if t == "was"]
    assert len(encoded.copy_positions[in_steps[0]]) == 1


def test_att_allowed_false_only_for_copyable_oov():
    dataset = _dataset()
    encoded = dataset[0]
    question = _example().question
    for step, token in enumerate(question):
        allowed = encoded.att_allowed[step]
        in_vocab = token in dataset.decoder_vocab
        copyable = bool(encoded.copy_positions[step])
        if in_vocab:
            assert allowed
        elif copyable:
            assert not allowed
        else:
            assert allowed  # trained as literal <unk>


def test_eos_step_is_att_allowed_with_no_copy():
    encoded = _dataset()[0]
    assert encoded.att_allowed[-1]
    assert encoded.copy_positions[-1] == ()


def test_extended_ids_use_vocab_id_when_known():
    dataset = _dataset()
    encoded = dataset[0]
    decoder = dataset.decoder_vocab
    for token, ext_id in zip(encoded.src_tokens, encoded.src_ext_ids):
        if token in decoder:
            assert ext_id == decoder.token_to_id(token)
        else:
            assert ext_id >= len(decoder)


def test_extended_ids_reuse_oov_slots():
    dataset = _dataset()
    encoded = dataset[0]
    # "in" ... both occurrences of an OOV token share one extended id.
    token_to_ext = {}
    for token, ext_id in zip(encoded.src_tokens, encoded.src_ext_ids):
        if token in token_to_ext:
            assert token_to_ext[token] == ext_id
        token_to_ext[token] = ext_id


def test_oov_tokens_in_first_occurrence_order():
    dataset = _dataset()
    encoded = dataset[0]
    seen = []
    for token in encoded.src_tokens:
        if token not in dataset.decoder_vocab and token not in seen:
            seen.append(token)
    assert list(encoded.oov_tokens) == seen


def test_max_question_length_clips():
    encoder, decoder = _vocabs()
    dataset = QGDataset([_example()], encoder, decoder, max_question_length=2)
    encoded = dataset[0]
    assert len(encoded.tgt_output_ids) == 3  # 2 tokens + EOS


def test_build_vocabs_sizes():
    examples = [_example()]
    encoder, decoder = QGDataset.build_vocabs(examples, encoder_vocab_size=3, decoder_vocab_size=2)
    assert len(encoder) == 4 + 3
    assert len(decoder) == 4 + 2


def test_build_vocabs_paragraph_mode_uses_paragraph_tokens():
    examples = [_example()]
    enc_sent, _ = QGDataset.build_vocabs(examples, source_mode=SourceMode.SENTENCE)
    enc_para, _ = QGDataset.build_vocabs(examples, source_mode=SourceMode.PARAGRAPH)
    assert "trade" not in enc_sent
    assert "trade" in enc_para


def test_len_and_iter():
    dataset = _dataset()
    assert len(dataset) == 1
    assert list(dataset)[0] is dataset[0]
