"""Tests for batch collation and the bucketing iterator."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary, collate


def _make_dataset(num=6):
    examples = []
    for i in range(num):
        length = 3 + (i % 3) * 2
        sentence = tuple(f"tok{j}" for j in range(length)) + ("entity%d" % i, ".")
        question = ("what", "is", f"entity{i}", "?")
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([ex.sentence for ex in examples])
    decoder = Vocabulary(["what", "is", "?"])
    return QGDataset(examples, encoder, decoder)


def test_collate_empty_raises():
    with pytest.raises(ValueError):
        collate([], pad_id=0)


def test_collate_shapes_are_consistent():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:3], pad_id=0)
    assert batch.size == 3
    B, S = batch.src.shape
    _, T = batch.tgt_input.shape
    assert batch.src_pad_mask.shape == (B, S)
    assert batch.src_ext.shape == (B, S)
    assert batch.tgt_output.shape == (B, T)
    assert batch.tgt_pad_mask.shape == (B, T)
    assert batch.att_allowed.shape == (B, T)
    assert batch.copy_match.shape == (B, T, S)


def test_collate_pads_with_pad_id():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:3], pad_id=0)
    for row, ex in enumerate(batch.examples):
        length = len(ex.src_ids)
        assert np.all(batch.src[row, length:] == 0)
        assert np.all(batch.src_pad_mask[row, length:])
        assert not np.any(batch.src_pad_mask[row, :length])


def test_collate_copy_match_marks_gold_positions():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:2], pad_id=0)
    for row, ex in enumerate(batch.examples):
        for step, positions in enumerate(ex.copy_positions):
            expected = np.zeros(batch.src.shape[1])
            for p in positions:
                expected[p] = 1.0
            assert np.allclose(batch.copy_match[row, step], expected)


def test_num_target_tokens_counts_non_padding():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:2], pad_id=0)
    expected = sum(len(ex.tgt_output_ids) for ex in batch.examples)
    assert batch.num_target_tokens == expected


def test_iterator_covers_every_example_once():
    dataset = _make_dataset(10)
    iterator = BatchIterator(dataset, batch_size=3, seed=0)
    seen = []
    for batch in iterator:
        seen.extend(id(ex) for ex in batch.examples)
    assert len(seen) == 10
    assert len(set(seen)) == 10


def test_iterator_len():
    dataset = _make_dataset(10)
    assert len(BatchIterator(dataset, batch_size=3)) == 4


def test_iterator_deterministic_with_seed():
    dataset = _make_dataset(10)
    def collect(seed):
        return [
            tuple(tuple(ex.src_ids) for ex in batch.examples)
            for batch in BatchIterator(dataset, batch_size=3, seed=seed)
        ]
    assert collect(5) == collect(5)


def test_iterator_shuffles_across_epochs():
    dataset = _make_dataset(30)
    iterator = BatchIterator(dataset, batch_size=5, seed=0)
    first = [tuple(id(ex) for ex in b.examples) for b in iterator]
    second = [tuple(id(ex) for ex in b.examples) for b in iterator]
    assert first != second


def test_iterator_no_shuffle_is_stable():
    dataset = _make_dataset(10)
    iterator = BatchIterator(dataset, batch_size=3, shuffle=False)
    first = [tuple(id(ex) for ex in b.examples) for b in iterator]
    second = [tuple(id(ex) for ex in b.examples) for b in iterator]
    assert first == second


def test_iterator_buckets_by_length():
    """Within a bucket pool, batches should be length-homogeneous."""
    dataset = _make_dataset(64)
    iterator = BatchIterator(dataset, batch_size=8, shuffle=False, bucket_multiplier=8)
    for batch in iterator:
        lengths = [len(ex.src_ids) for ex in batch.examples]
        assert max(lengths) - min(lengths) <= 4


def test_iterator_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        BatchIterator(_make_dataset(), batch_size=0)
