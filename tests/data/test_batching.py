"""Tests for batch collation and the bucketing iterator."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary, collate, plan_batches


def _make_dataset(num=6):
    examples = []
    for i in range(num):
        length = 3 + (i % 3) * 2
        sentence = tuple(f"tok{j}" for j in range(length)) + ("entity%d" % i, ".")
        question = ("what", "is", f"entity{i}", "?")
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([ex.sentence for ex in examples])
    decoder = Vocabulary(["what", "is", "?"])
    return QGDataset(examples, encoder, decoder)


def test_collate_empty_raises():
    with pytest.raises(ValueError):
        collate([], pad_id=0)


def test_collate_shapes_are_consistent():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:3], pad_id=0)
    assert batch.size == 3
    B, S = batch.src.shape
    _, T = batch.tgt_input.shape
    assert batch.src_pad_mask.shape == (B, S)
    assert batch.src_ext.shape == (B, S)
    assert batch.tgt_output.shape == (B, T)
    assert batch.tgt_pad_mask.shape == (B, T)
    assert batch.att_allowed.shape == (B, T)
    assert batch.copy_match.shape == (B, T, S)


def test_collate_pads_with_pad_id():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:3], pad_id=0)
    for row, ex in enumerate(batch.examples):
        length = len(ex.src_ids)
        assert np.all(batch.src[row, length:] == 0)
        assert np.all(batch.src_pad_mask[row, length:])
        assert not np.any(batch.src_pad_mask[row, :length])


def test_collate_copy_match_marks_gold_positions():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:2], pad_id=0)
    for row, ex in enumerate(batch.examples):
        for step, positions in enumerate(ex.copy_positions):
            expected = np.zeros(batch.src.shape[1])
            for p in positions:
                expected[p] = 1.0
            assert np.allclose(batch.copy_match[row, step], expected)


def test_num_target_tokens_counts_non_padding():
    dataset = _make_dataset()
    batch = collate(dataset.encoded[:2], pad_id=0)
    expected = sum(len(ex.tgt_output_ids) for ex in batch.examples)
    assert batch.num_target_tokens == expected


def test_iterator_covers_every_example_once():
    dataset = _make_dataset(10)
    iterator = BatchIterator(dataset, batch_size=3, seed=0)
    seen = []
    for batch in iterator:
        seen.extend(id(ex) for ex in batch.examples)
    assert len(seen) == 10
    assert len(set(seen)) == 10


def test_iterator_len():
    dataset = _make_dataset(10)
    assert len(BatchIterator(dataset, batch_size=3)) == 4


def test_iterator_deterministic_with_seed():
    dataset = _make_dataset(10)
    def collect(seed):
        return [
            tuple(tuple(ex.src_ids) for ex in batch.examples)
            for batch in BatchIterator(dataset, batch_size=3, seed=seed)
        ]
    assert collect(5) == collect(5)


def test_iterator_shuffles_across_epochs():
    dataset = _make_dataset(30)
    iterator = BatchIterator(dataset, batch_size=5, seed=0)
    first = [tuple(id(ex) for ex in b.examples) for b in iterator]
    second = [tuple(id(ex) for ex in b.examples) for b in iterator]
    assert first != second


def test_iterator_no_shuffle_is_stable():
    dataset = _make_dataset(10)
    iterator = BatchIterator(dataset, batch_size=3, shuffle=False)
    first = [tuple(id(ex) for ex in b.examples) for b in iterator]
    second = [tuple(id(ex) for ex in b.examples) for b in iterator]
    assert first == second


def test_iterator_buckets_by_length():
    """Within a bucket pool, batches should be length-homogeneous."""
    dataset = _make_dataset(64)
    iterator = BatchIterator(dataset, batch_size=8, shuffle=False, bucket_multiplier=8)
    for batch in iterator:
        lengths = [len(ex.src_ids) for ex in batch.examples]
        assert max(lengths) - min(lengths) <= 4


def test_iterator_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        BatchIterator(_make_dataset(), batch_size=0)


# ----------------------------------------------------------------------
# Generator injection and order pinning
# ----------------------------------------------------------------------
def _golden_dataset():
    examples = []
    for i in range(37):
        length = 3 + (i % 5) * 2
        sentence = tuple(f"tok{j}" for j in range(length)) + (f"entity{i}", ".")
        question = ("what", "is", f"entity{i}", "?")
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([ex.sentence for ex in examples])
    decoder = Vocabulary(["what", "is", "?"])
    return QGDataset(examples, encoder, decoder)


def _epoch_orders(dataset, seed, epochs=2):
    ident = {id(e): i for i, e in enumerate(dataset.encoded)}
    iterator = BatchIterator(dataset, batch_size=4, seed=seed, bucket_multiplier=2)
    return tuple(
        tuple(
            tuple(ident[id(ex)] for ex in batch.examples) for batch in iterator
        )
        for _ in range(epochs)
    )


# Captured from the pre-Generator-injection BatchIterator (int seed path).
# This order is LOAD-BEARING: elastic resume and world-size parity both
# assume the global batch sequence for a given seed never changes between
# releases. Do not regenerate casually.
GOLDEN_ORDER_SEED_11 = (
    (
        (25, 31, 2, 17), (0, 15, 11, 36), (32, 23, 13, 29), (30, 10, 16, 19),
        (14,), (33, 4, 34, 24), (5, 1, 6, 26), (7, 27, 18, 9),
        (12, 8, 28, 3), (20, 35, 21, 22),
    ),
    (
        (20, 15, 30, 36), (5, 1, 7, 2), (0, 16, 21, 6), (19,),
        (35, 25, 3, 14), (10, 31, 26, 22), (17, 28, 13, 23), (11, 27, 8, 9),
        (12, 33, 24, 34), (32, 18, 4, 29),
    ),
)


def test_int_seed_order_is_pinned_to_golden():
    assert _epoch_orders(_golden_dataset(), 11) == GOLDEN_ORDER_SEED_11


def test_injected_generator_matches_equivalent_int_seed():
    dataset = _golden_dataset()
    assert _epoch_orders(dataset, np.random.default_rng(11)) == GOLDEN_ORDER_SEED_11


def test_injected_generator_stream_is_consumed_in_place():
    """An injected generator advances: two iterators sharing it interleave
    draws from ONE stream rather than replaying the same epoch."""
    dataset = _golden_dataset()
    shared = np.random.default_rng(11)
    first = BatchIterator(dataset, batch_size=4, seed=shared, bucket_multiplier=2)
    second = BatchIterator(dataset, batch_size=4, seed=shared, bucket_multiplier=2)
    assert first.plan_epoch() != second.plan_epoch()


def test_plan_batches_partitions_and_is_pure():
    lengths = [3 + (i % 5) * 2 for i in range(37)]
    plan = plan_batches(lengths, 4, np.random.default_rng(3))
    flat = sorted(i for batch in plan for i in batch)
    assert flat == list(range(37))
    again = plan_batches(lengths, 4, np.random.default_rng(3))
    assert plan == again


def test_plan_batches_no_shuffle_ignores_rng():
    lengths = [5, 3, 9, 3, 7]
    a = plan_batches(lengths, 2, np.random.default_rng(0), shuffle=False)
    b = plan_batches(lengths, 2, np.random.default_rng(99), shuffle=False)
    assert a == b


def test_plan_epoch_matches_iteration_order():
    dataset = _golden_dataset()
    planner = BatchIterator(dataset, batch_size=4, seed=11, bucket_multiplier=2)
    consumer = BatchIterator(dataset, batch_size=4, seed=11, bucket_multiplier=2)
    plan = planner.plan_epoch()
    ident = {id(e): i for i, e in enumerate(dataset.encoded)}
    iterated = [
        [ident[id(ex)] for ex in batch.examples] for batch in consumer
    ]
    assert plan == iterated
