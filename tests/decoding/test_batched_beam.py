"""Batch-parallel beam engine: equivalence, tape hygiene, and the two
decode-path regression fixes (premature early-stop pruning, beam death when
the candidate window holds no viable continuation)."""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding import (
    batched_beam_decode,
    batched_beam_search,
    beam_decode,
    beam_decode_example,
)
from repro.models import ModelConfig, build_model
from repro.models.base import DecoderStepState, EncoderContext, QuestionGenerator
from repro.tensor import Tensor, no_grad
from repro.tensor.profiler import TapeProfile

_WORDS = ["zorvex", "karlin", "tower", "river", "1887", "ostavia", "velkin"]
_QWORDS = ["where", "what", "who", "is", "was", "the", "?"]


def _synthetic_batch(seed: int, num_examples: int = 5):
    rng = np.random.default_rng(seed)
    examples = []
    for _ in range(num_examples):
        sentence = tuple(rng.choice(_WORDS, size=rng.integers(3, 7)))
        question = tuple(rng.choice(_QWORDS, size=rng.integers(2, 5)))
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(_QWORDS)
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    return encoder, decoder, batch


# ---------------------------------------------------------------------------
# Equivalence: the engine must reproduce the per-example beam exactly
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", ["seq2seq", "du-attention", "acnn"])
@pytest.mark.parametrize("beam_size", [1, 3, 5])
def test_batched_matches_per_example(family, beam_size):
    encoder, decoder, batch = _synthetic_batch(seed=11)
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=2, dropout=0.0, seed=3)
    model = build_model(family, config, len(encoder), len(decoder))

    batched = batched_beam_decode(model, batch, beam_size=beam_size, max_length=10)
    model.eval()
    with no_grad():
        context = model.encode(batch)
        per_example = [
            beam_decode_example(model, context, i, beam_size=beam_size, max_length=10)
            for i in range(context.batch_size)
        ]
    assert len(batched) == batch.size
    for b, p in zip(batched, per_example):
        assert b.token_ids == p.token_ids
        assert b.log_prob == p.log_prob  # byte-identical, not approximate
        assert b.finished == p.finished


def test_batched_matches_per_example_with_coverage():
    """Coverage state rides the frontier through select() like LSTM state."""
    encoder, decoder, batch = _synthetic_batch(seed=23)
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=7)
    model = build_model("acnn", config, len(encoder), len(decoder), use_coverage=True)

    batched = batched_beam_decode(model, batch, beam_size=3, max_length=8)
    model.eval()
    with no_grad():
        context = model.encode(batch)
        per_example = [
            beam_decode_example(model, context, i, beam_size=3, max_length=8)
            for i in range(context.batch_size)
        ]
    for b, p in zip(batched, per_example):
        assert b.token_ids == p.token_ids
        assert b.log_prob == p.log_prob


def test_beam_decode_delegates_to_engine():
    encoder, decoder, batch = _synthetic_batch(seed=5)
    config = ModelConfig(embedding_dim=6, hidden_size=8, num_layers=1, dropout=0.0, seed=1)
    model = build_model("acnn", config, len(encoder), len(decoder))
    via_facade = beam_decode(model, batch, beam_size=3, max_length=8)
    via_engine = batched_beam_decode(model, batch, beam_size=3, max_length=8)
    assert [h.token_ids for h in via_facade] == [h.token_ids for h in via_engine]
    assert [h.log_prob for h in via_facade] == [h.log_prob for h in via_engine]


def test_batched_search_pools_ranked():
    encoder, decoder, batch = _synthetic_batch(seed=9)
    config = ModelConfig(embedding_dim=6, hidden_size=8, num_layers=1, dropout=0.0, seed=2)
    model = build_model("acnn", config, len(encoder), len(decoder))
    pools = batched_beam_search(model, batch, beam_size=3, max_length=8)
    assert len(pools) == batch.size
    for pool in pools:
        assert pool
        scores = [h.score(1.0) for h in pool]
        assert scores == sorted(scores, reverse=True)


def test_batched_decode_creates_no_tape_nodes():
    """Decoding is inference-only: the autograd tape must stay empty."""
    encoder, decoder, batch = _synthetic_batch(seed=3)
    config = ModelConfig(embedding_dim=6, hidden_size=8, num_layers=1, dropout=0.0, seed=4)
    model = build_model("acnn", config, len(encoder), len(decoder))
    with TapeProfile() as profile:
        batched_beam_decode(model, batch, beam_size=3, max_length=8)
    assert profile.nodes == 0


def test_batched_rejects_bad_width():
    encoder, decoder, batch = _synthetic_batch(seed=3)
    config = ModelConfig(embedding_dim=6, hidden_size=8, num_layers=1, dropout=0.0, seed=4)
    model = build_model("acnn", config, len(encoder), len(decoder))
    with pytest.raises(ValueError):
        batched_beam_decode(model, batch, beam_size=0)


# ---------------------------------------------------------------------------
# Regression: scripted models exercising the two decode-path bugs
# ---------------------------------------------------------------------------
_A, _B = 4, 5  # content token ids in the scripted 6-token vocabulary


class _ScriptedModel(QuestionGenerator):
    """Decoder whose step distribution depends only on the previous token.

    ``script`` maps prev-token id -> {token id: log-prob}; everything not
    listed is -inf. State is a dummy single row so beam bookkeeping works.
    """

    def __init__(self, script, vocab_size=6):
        super().__init__(decoder_vocab_size=vocab_size)
        self.script = script

    def encode(self, batch: Batch) -> EncoderContext:
        size = batch.size
        return EncoderContext(
            encoder_states=Tensor(np.zeros((size, 1, 1))),
            src_pad_mask=np.zeros((size, 1), dtype=bool),
            src_ext=np.zeros((size, 1), dtype=np.int64),
            max_oov=0,
            initial_states=[(Tensor(np.zeros((size, 1))), Tensor(np.zeros((size, 1))))],
        )

    def step_log_probs(self, prev_tokens, state, context, row_indices=None):
        rows = []
        for prev in np.asarray(prev_tokens):
            row = np.full(self.decoder_vocab_size, -np.inf)
            for token, lp in self.script.get(int(prev), {}).items():
                row[token] = lp
            rows.append(row)
        return np.stack(rows), state


def _one_example_batch():
    word = ("w",)
    example = QGExample(sentence=word, paragraph=word, question=word)
    encoder = Vocabulary.build([word])
    decoder = Vocabulary(["w", "x"])
    dataset = QGDataset([example], encoder, decoder)
    return collate(list(dataset), pad_id=0)


def test_early_stop_uses_optimistic_bound():
    """Length normalization can raise a live score; the old current-score
    stop rule pruned the eventual winner.

    From BOS: EOS at -1.0 (finished '()' scores -1.0), token A at -1.2
    (current normalized score -1.2, so the old rule stops). Continuing costs
    ~nothing: A -> B -> EOS ends at log-prob ~-1.2 over 2 tokens = -0.6,
    which beats the finished -1.0.
    """
    model = _ScriptedModel(
        {
            BOS_ID: {EOS_ID: -1.0, _A: -1.2},
            _A: {_B: -1e-4},
            _B: {EOS_ID: -1e-4},
        }
    )
    batch = _one_example_batch()
    with no_grad():
        context = model.encode(batch)
        best = beam_decode_example(
            model, context, 0, beam_size=1, max_length=10, length_penalty=1.0
        )
    assert best.token_ids == (_A, _B)
    assert best.finished
    assert best.score(1.0) == pytest.approx(-0.6001, abs=1e-3)
    # The batched engine applies the same rule.
    batched = batched_beam_decode(model, batch, beam_size=1, max_length=10)
    assert batched[0].token_ids == (_A, _B)


def test_beam_survives_window_of_finishes_and_junk():
    """If every entry in the top-2*beam window finishes or is non-viable,
    the beam must widen its scan and keep expanding, not die.

    From BOS the window fills with junk (+inf corrupt slots, skipped as
    non-viable) and nothing else, so the old fixed-width scan returned an
    empty, unfinished hypothesis even though viable continuations ranked
    just below the window.
    """
    script = {
        BOS_ID: {EOS_ID: -2.0, _A: -1.0, 6: np.inf, 7: np.inf, 8: np.inf, 9: np.inf},
        _A: {_B: -1e-4},
        _B: {EOS_ID: -1e-4},
    }
    model = _ScriptedModel(script, vocab_size=10)
    batch = _one_example_batch()
    with no_grad():
        context = model.encode(batch)
        best = beam_decode_example(
            model, context, 0, beam_size=1, max_length=10, length_penalty=1.0
        )
    assert best.finished
    assert best.token_ids == (_A, _B)
    batched = batched_beam_decode(model, batch, beam_size=1, max_length=10)
    assert batched[0].token_ids == (_A, _B)
    assert batched[0].finished


def test_unreachable_oov_slots_never_selected():
    """Non-copy models stamp OOV columns with a log floor; the beam must
    treat those as unreachable rather than as astronomically bad candidates
    occupying live slots."""
    rng = np.random.default_rng(0)
    sentence = tuple(rng.choice(_WORDS, size=5))
    examples = [QGExample(sentence=sentence, paragraph=sentence, question=("where", "?"))]
    encoder = Vocabulary.build([sentence])
    decoder = Vocabulary(["where", "?"])  # tiny: junk slots crowd wide beams
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    config = ModelConfig(embedding_dim=6, hidden_size=8, num_layers=1, dropout=0.0, seed=0)
    model = build_model("du-attention", config, len(encoder), len(decoder))
    for hyp in batched_beam_search(model, batch, beam_size=4, max_length=6)[0]:
        assert all(t < len(decoder) for t in hyp.token_ids)
        assert hyp.log_prob > -1e17


def test_nan_logits_raise_typed_error():
    """NaN log-probs are a typed NonFiniteLogits, not a silent empty beam.

    Before the serving work, NaN rows were swallowed by the viability
    filter and surfaced as empty hypotheses; now both engines raise a
    retryable error naming the step.
    """
    from repro.decoding import greedy_decode
    from repro.models.base import NonFiniteLogits

    class _NaNModel(_ScriptedModel):
        def step_log_probs(self, prev_tokens, state, context, row_indices=None):
            log_probs, state = super().step_log_probs(
                prev_tokens, state, context, row_indices
            )
            log_probs[:, :] = np.nan
            return log_probs, state

    model = _NaNModel({BOS_ID: {EOS_ID: -1.0}})
    batch = _one_example_batch()
    with pytest.raises(NonFiniteLogits) as excinfo:
        batched_beam_decode(model, batch, beam_size=2, max_length=5)
    assert excinfo.value.step == 0
    assert excinfo.value.rows >= 1
    with pytest.raises(NonFiniteLogits):
        greedy_decode(model, batch, max_length=5)
