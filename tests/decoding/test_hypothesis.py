"""Tests for hypothesis scoring and extended-id detokenization."""

import pytest

from repro.data import Vocabulary
from repro.decoding import Hypothesis, extended_ids_to_tokens


def test_score_length_normalization():
    hyp = Hypothesis((1, 2, 3, 4), -4.0)
    assert hyp.score(0.0) == -4.0
    assert hyp.score(1.0) == -1.0


def test_score_of_empty_hypothesis_is_safe():
    assert Hypothesis((), -1.0).score(1.0) == -1.0


def test_extended_appends_and_accumulates():
    hyp = Hypothesis((5,), -1.0)
    new = hyp.extended(7, -0.5, finished=False)
    assert new.token_ids == (5, 7)
    assert new.log_prob == -1.5
    assert not new.finished
    # Original is immutable.
    assert hyp.token_ids == (5,)


def test_extended_ids_resolve_vocab_and_oov():
    vocab = Vocabulary(["who", "designed", "?"])
    vocab_size = len(vocab)
    ids = [
        vocab.token_to_id("who"),
        vocab.token_to_id("designed"),
        vocab_size + 0,
        vocab.token_to_id("?"),
    ]
    tokens = extended_ids_to_tokens(ids, vocab, oov_tokens=("zorvex",))
    assert tokens == ["who", "designed", "zorvex", "?"]


def test_extended_ids_out_of_range_raises():
    vocab = Vocabulary(["a"])
    with pytest.raises(IndexError):
        extended_ids_to_tokens([len(vocab) + 5], vocab, oov_tokens=("only-one",))
