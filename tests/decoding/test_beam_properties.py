"""Beam-search properties on randomly initialized (untrained) models.

These hold regardless of training state, so they run on cheap random
models: wider beams never select worse normalized scores, hypotheses never
contain control tokens, and the search is deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding import beam_decode
from repro.models import ModelConfig, build_model

_WORDS = ["zorvex", "karlin", "tower", "river", "1887", "ostavia"]
_QWORDS = ["where", "what", "who", "is", "was", "the", "?"]


def _problem(seed):
    rng = np.random.default_rng(seed)
    examples = []
    for _ in range(2):
        sentence = tuple(rng.choice(_WORDS, size=rng.integers(3, 6)))
        question = tuple(rng.choice(_QWORDS, size=rng.integers(2, 5)))
        examples.append(QGExample(sentence=sentence, paragraph=sentence, question=question))
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(_QWORDS)
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    config = ModelConfig(
        embedding_dim=int(rng.integers(3, 8)),
        hidden_size=int(rng.integers(3, 8)),
        num_layers=1,
        dropout=0.0,
        seed=seed,
    )
    model = build_model("acnn", config, len(encoder), len(decoder))
    return model, batch


@given(st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_wider_beam_never_scores_worse(seed):
    model, batch = _problem(seed)
    narrow = beam_decode(model, batch, beam_size=1, max_length=8)
    wide = beam_decode(model, batch, beam_size=4, max_length=8)
    for n, w in zip(narrow, wide):
        if n.finished and w.finished:
            assert w.score(1.0) >= n.score(1.0) - 1e-9


@given(st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_no_control_tokens_in_output(seed):
    model, batch = _problem(seed)
    for hyp in beam_decode(model, batch, beam_size=3, max_length=8):
        assert PAD_ID not in hyp.token_ids
        assert BOS_ID not in hyp.token_ids
        assert EOS_ID not in hyp.token_ids


@given(st.integers(0, 50))
@settings(max_examples=10, deadline=None)
def test_beam_log_probs_are_nonpositive(seed):
    model, batch = _problem(seed)
    for hyp in beam_decode(model, batch, beam_size=2, max_length=8):
        assert hyp.log_prob <= 1e-9


@given(st.integers(0, 50))
@settings(max_examples=10, deadline=None)
def test_beam_respects_max_length(seed):
    model, batch = _problem(seed)
    for hyp in beam_decode(model, batch, beam_size=2, max_length=5):
        assert len(hyp.token_ids) <= 5
