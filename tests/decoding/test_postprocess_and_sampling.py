"""Tests for UNK replacement and sampling decoders."""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.data.vocabulary import UNK
from repro.decoding import (
    greedy_decode,
    greedy_decode_with_attention,
    replace_unknowns,
    sample_decode,
)
from repro.models import ModelConfig, build_model


@pytest.fixture(scope="module")
def du_setup():
    examples = [
        QGExample(
            sentence=tuple("zorvex was born in karlin .".split()),
            paragraph=tuple("zorvex was born in karlin .".split()),
            question=tuple("where was zorvex born ?".split()),
        ),
        QGExample(
            sentence=tuple("draxby is the capital of ostavia .".split()),
            paragraph=tuple("draxby is the capital of ostavia .".split()),
            question=tuple("what is the capital of ostavia ?".split()),
        ),
    ]
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(["where", "was", "born", "?", "what", "is", "the", "capital", "of"])
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    config = ModelConfig(embedding_dim=8, hidden_size=10, num_layers=1, dropout=0.0, seed=0)
    model = build_model("du-attention", config, len(encoder), len(decoder))
    # A few training steps break the near-ties of a random init, making
    # low-temperature sampling deterministic enough to compare with greedy.
    from repro.optim import SGD

    optimizer = SGD(model.parameters(), lr=0.5)
    for _ in range(30):
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        model.zero_grad()
    return model, batch, decoder


def test_greedy_with_attention_shapes(du_setup):
    model, batch, _ = du_setup
    hypotheses, attentions = greedy_decode_with_attention(model, batch, max_length=6)
    assert len(hypotheses) == batch.size
    for hyp, attns in zip(hypotheses, attentions):
        assert len(hyp.token_ids) == len(attns)
        for vector in attns:
            assert vector.shape == (batch.src.shape[1],)
            assert np.isclose(vector.sum(), 1.0)


def test_greedy_with_attention_matches_plain_greedy(du_setup):
    model, batch, _ = du_setup
    plain = greedy_decode(model, batch, max_length=6)
    with_attn, _ = greedy_decode_with_attention(model, batch, max_length=6)
    assert [h.token_ids for h in plain] == [h.token_ids for h in with_attn]


def test_replace_unknowns_substitutes_best_attended():
    source = ("zorvex", "was", "born")
    attention = [np.array([0.8, 0.1, 0.1]), np.array([0.1, 0.8, 0.1])]
    tokens = [UNK, "was"]
    assert replace_unknowns(tokens, attention, source) == ["zorvex", "was"]


def test_replace_unknowns_ignores_known_tokens():
    source = ("a", "b")
    attention = [np.array([0.0, 1.0])]
    assert replace_unknowns(["hello"], attention, source) == ["hello"]


def test_replace_unknowns_length_mismatch_raises():
    with pytest.raises(ValueError):
        replace_unknowns([UNK], [], ("a",))


def test_replace_unknowns_attention_truncated_to_source():
    source = ("only",)
    attention = [np.array([0.2, 0.8, 0.9])]  # padding columns beyond source
    assert replace_unknowns([UNK], attention, source) == ["only"]


def test_sample_decode_returns_per_example(du_setup):
    model, batch, _ = du_setup
    hyps = sample_decode(model, batch, np.random.default_rng(0), max_length=6)
    assert len(hyps) == batch.size
    for hyp in hyps:
        assert len(hyp.token_ids) <= 6


def test_sample_decode_seeded_reproducible(du_setup):
    model, batch, _ = du_setup
    a = sample_decode(model, batch, np.random.default_rng(7), max_length=6)
    b = sample_decode(model, batch, np.random.default_rng(7), max_length=6)
    assert [h.token_ids for h in a] == [h.token_ids for h in b]


def test_sample_decode_temperature_zero_like_behaviour(du_setup):
    """Very low temperature should reproduce greedy choices."""
    model, batch, _ = du_setup
    greedy = greedy_decode(model, batch, max_length=6)
    cold = sample_decode(
        model, batch, np.random.default_rng(0), temperature=1e-4, max_length=6
    )
    assert [h.token_ids for h in greedy] == [h.token_ids for h in cold]


def test_sample_decode_diversity_at_high_temperature(du_setup):
    model, batch, _ = du_setup
    rng = np.random.default_rng(0)
    outputs = {
        tuple(h.token_ids)
        for _ in range(5)
        for h in sample_decode(model, batch, rng, temperature=3.0, max_length=6)
    }
    assert len(outputs) > 2


def test_sample_decode_top_k_limits_support(du_setup):
    model, batch, _ = du_setup
    hyps = sample_decode(model, batch, np.random.default_rng(1), top_k=1, max_length=6)
    greedy = greedy_decode(model, batch, max_length=6)
    assert [h.token_ids for h in hyps] == [h.token_ids for h in greedy]


def test_sample_decode_validation(du_setup):
    model, batch, _ = du_setup
    with pytest.raises(ValueError):
        sample_decode(model, batch, np.random.default_rng(0), temperature=0.0)
    with pytest.raises(ValueError):
        sample_decode(model, batch, np.random.default_rng(0), top_k=0)
