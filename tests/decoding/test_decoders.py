"""Tests for greedy and beam decoding against real (small) models."""

import numpy as np
import pytest

from repro.data import QGDataset, QGExample, Vocabulary, collate
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding import beam_decode, beam_decode_example, greedy_decode
from repro.models import ModelConfig, build_model
from repro.optim import SGD, clip_grad_norm
from repro.tensor import no_grad


@pytest.fixture(scope="module")
def setup():
    sentences = [
        "zorvex was born in karlin .",
        "the velkin tower was designed by mirosta .",
        "draxby is the capital of ostavia .",
    ]
    questions = [
        "where was zorvex born ?",
        "who designed the velkin tower ?",
        "what is the capital of ostavia ?",
    ]
    examples = [
        QGExample(sentence=tuple(s.split()), paragraph=tuple(s.split()), question=tuple(q.split()))
        for s, q in zip(sentences, questions)
    ]
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(
        ["where", "was", "born", "?", "who", "designed", "the", "what", "is", "capital", "of", "tower"]
    )
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    config = ModelConfig(embedding_dim=16, hidden_size=20, num_layers=1, dropout=0.0, seed=5)
    model = build_model("acnn", config, len(encoder), len(decoder))
    optimizer = SGD(model.parameters(), lr=0.8)
    for _ in range(150):
        model.train()
        loss = model.loss(batch)
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()
    return model, batch, decoder


def test_greedy_returns_one_hypothesis_per_example(setup):
    model, batch, _ = setup
    hyps = greedy_decode(model, batch, max_length=12)
    assert len(hyps) == batch.size


def test_greedy_never_emits_pad_or_bos(setup):
    model, batch, _ = setup
    for hyp in greedy_decode(model, batch, max_length=12):
        assert PAD_ID not in hyp.token_ids
        assert BOS_ID not in hyp.token_ids
        assert EOS_ID not in hyp.token_ids  # EOS terminates, never appears


def test_greedy_respects_max_length(setup):
    model, batch, _ = setup
    for hyp in greedy_decode(model, batch, max_length=4):
        assert len(hyp.token_ids) <= 4


def test_greedy_overfit_model_reproduces_gold(setup):
    """An overfit model should greedily regenerate its training questions."""
    model, batch, decoder = setup
    from repro.decoding import extended_ids_to_tokens

    matches = 0
    for hyp, encoded in zip(greedy_decode(model, batch, max_length=12), batch.examples):
        tokens = extended_ids_to_tokens(hyp.token_ids, decoder, encoded.oov_tokens)
        if tuple(tokens) == encoded.example.question:
            matches += 1
    assert matches >= 2, f"only {matches}/3 training questions reproduced"


def test_beam_size_one_matches_greedy_tokens(setup):
    model, batch, _ = setup
    greedy = greedy_decode(model, batch, max_length=12)
    beam = beam_decode(model, batch, beam_size=1, max_length=12, length_penalty=0.0)
    for g, b in zip(greedy, beam):
        if g.finished and b.finished:
            assert g.token_ids == b.token_ids


def test_beam_returns_finished_hypotheses_on_easy_fit(setup):
    model, batch, _ = setup
    for hyp in beam_decode(model, batch, beam_size=3, max_length=15):
        assert hyp.finished


def test_beam_score_at_least_greedy(setup):
    """Beam-3's selected average log-prob must be >= greedy's."""
    model, batch, _ = setup
    greedy = greedy_decode(model, batch, max_length=12)
    beam = beam_decode(model, batch, beam_size=3, max_length=12)
    for g, b in zip(greedy, beam):
        if g.finished and b.finished:
            assert b.score(1.0) >= g.score(1.0) - 1e-9


def test_beam_rejects_bad_width(setup):
    model, batch, _ = setup
    with no_grad():
        context = model.encode(batch)
    with pytest.raises(ValueError):
        beam_decode_example(model, context, 0, beam_size=0)


def test_beam_deterministic(setup):
    model, batch, _ = setup
    a = beam_decode(model, batch, beam_size=3, max_length=12)
    b = beam_decode(model, batch, beam_size=3, max_length=12)
    assert [h.token_ids for h in a] == [h.token_ids for h in b]


def test_decoding_works_for_all_families(setup):
    _, batch, decoder = setup
    for family in ("seq2seq", "du-attention"):
        config = ModelConfig(embedding_dim=8, hidden_size=8, num_layers=1, dropout=0.0, seed=1)
        model = build_model(family, config, 50, len(decoder))
        # Encoder vocab size must cover batch ids; rebuild with actual size.
        model = build_model(family, config, int(batch.src.max()) + 1, len(decoder))
        hyps = beam_decode(model, batch, beam_size=2, max_length=6)
        assert len(hyps) == batch.size
