"""Tests for n-best beam decoding."""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, QGExample, Vocabulary, collate
from repro.decoding import beam_decode, beam_decode_nbest
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained():
    examples = [
        QGExample(
            sentence=tuple("zorvex was born in karlin .".split()),
            paragraph=tuple("zorvex was born in karlin .".split()),
            question=tuple("where was zorvex born ?".split()),
        ),
        QGExample(
            sentence=tuple("draxby is the capital of ostavia .".split()),
            paragraph=tuple("draxby is the capital of ostavia .".split()),
            question=tuple("what is the capital of ostavia ?".split()),
        ),
    ]
    encoder = Vocabulary.build([e.sentence for e in examples])
    decoder = Vocabulary(["where", "was", "born", "?", "what", "is", "the", "capital", "of"])
    dataset = QGDataset(examples, encoder, decoder)
    batch = collate(list(dataset), pad_id=0)
    config = ModelConfig(embedding_dim=12, hidden_size=16, num_layers=1, dropout=0.0, seed=3)
    model = build_model("acnn", config, len(encoder), len(decoder))
    Trainer(
        model,
        BatchIterator(dataset, batch_size=2, seed=0),
        None,
        TrainerConfig(epochs=60, learning_rate=0.8, halve_at_epoch=50),
    ).train()
    return model, batch


def test_nbest_returns_lists_per_example(trained):
    model, batch = trained
    lists = beam_decode_nbest(model, batch, n_best=3, beam_size=4, max_length=10)
    assert len(lists) == batch.size
    for candidates in lists:
        assert 1 <= len(candidates) <= 3


def test_nbest_sorted_by_score(trained):
    model, batch = trained
    for candidates in beam_decode_nbest(model, batch, n_best=3, beam_size=4, max_length=10):
        scores = [h.score(1.0) for h in candidates]
        assert scores == sorted(scores, reverse=True)


def test_nbest_has_no_duplicate_surfaces(trained):
    model, batch = trained
    for candidates in beam_decode_nbest(model, batch, n_best=4, beam_size=5, max_length=10):
        surfaces = [h.token_ids for h in candidates]
        assert len(surfaces) == len(set(surfaces))


def test_nbest_top1_matches_beam_search(trained):
    model, batch = trained
    best = beam_decode(model, batch, beam_size=3, max_length=10)
    nbest = beam_decode_nbest(model, batch, n_best=1, beam_size=3, max_length=10)
    for single, candidates in zip(best, nbest):
        if single.finished and candidates[0].finished:
            assert single.token_ids == candidates[0].token_ids


def test_nbest_validation(trained):
    model, batch = trained
    with pytest.raises(ValueError):
        beam_decode_nbest(model, batch, n_best=0)


def test_nbest_deterministic(trained):
    model, batch = trained
    a = beam_decode_nbest(model, batch, n_best=3, beam_size=4, max_length=10)
    b = beam_decode_nbest(model, batch, n_best=3, beam_size=4, max_length=10)
    assert [[h.token_ids for h in lst] for lst in a] == [[h.token_ids for h in lst] for lst in b]
