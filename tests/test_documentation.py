"""Documentation hygiene: every public module, class, and function in the
library carries a docstring (deliverable (e): doc comments on every public
item)."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro", "repro.tensor", "repro.nn", "repro.optim", "repro.data",
    "repro.models", "repro.decoding", "repro.metrics", "repro.training",
    "repro.evaluation", "repro.experiments",
]


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_docstring():
    missing = []
    for module in _iter_modules():
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__module__.startswith("repro") and not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {sorted(set(missing))}"


def test_public_methods_of_core_classes_documented():
    from repro.models.base import QuestionGenerator
    from repro.nn.module import Module
    from repro.tensor.core import Tensor

    missing = []
    for cls in (Tensor, Module, QuestionGenerator):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            if not (getattr(member, "__doc__", "") or "").strip():
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, missing
