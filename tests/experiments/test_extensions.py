"""Smoke-scale integration tests for the extension experiments."""

import pytest

from repro.experiments.ablations import run_coverage_ablation
from repro.experiments.configs import SMOKE
from repro.experiments.domain_transfer import (
    SOURCE_DOMAIN,
    TARGET_DOMAIN,
    run_domain_transfer,
)
from repro.experiments.learning_curve import run_learning_curve
from repro.experiments.registry import EXPERIMENTS


def test_domains_are_disjoint():
    assert not set(SOURCE_DOMAIN) & set(TARGET_DOMAIN)


def test_domain_transfer_smoke():
    result = run_domain_transfer(SMOKE)
    assert set(result.in_domain) == {"Du-attention", "ACNN"}
    assert set(result.out_of_domain) == {"Du-attention", "ACNN"}
    for recalls in result.oov_recall.values():
        assert set(recalls) == {"in", "out"}
    text = result.render()
    assert "In-domain" in text
    assert "Out-of-domain" in text
    # copy_transfers() is a boolean either way at smoke scale.
    assert result.copy_transfers() in (True, False)


def test_learning_curve_smoke():
    result = run_learning_curve(SMOKE, sizes=(16, 32))
    assert result.sizes == (16, 32)
    assert len(result.runs) == 4
    assert len(result.series("ACNN")) == 2
    assert len(result.gaps()) == 2
    text = result.render()
    assert "BLEU-4" in text
    assert "gap" in text


def test_learning_curve_sizes_sorted():
    result = run_learning_curve(SMOKE, sizes=(32, 16))
    assert result.sizes == (16, 32)


def test_coverage_ablation_smoke():
    result = run_coverage_ablation(SMOKE)
    assert set(result.scores) == {"ACNN", "ACNN + coverage"}
    assert set(result.repetition_rates) == {"ACNN", "ACNN + coverage"}
    assert "repeated-bigram" in result.render()


def test_registry_includes_extensions():
    for key in ("ablation-coverage", "ablation-answer", "learning-curve", "domain-transfer"):
        assert key in EXPERIMENTS


def test_all_registry_runners_accept_scale():
    """Every registered runner must at least be callable at smoke scale for
    the cheap ones; the expensive ones are covered by dedicated tests."""
    cheap = EXPERIMENTS["figure1"]
    result = cheap.runner(SMOKE)
    assert hasattr(result, "render")


def test_variance_study_smoke():
    from repro.experiments.variance import run_variance_study

    result = run_variance_study(SMOKE, seeds=(0, 1))
    assert len(result.runs) == 2
    spread = result.spread("BLEU-1")
    assert spread["max"] >= spread["min"]
    assert "std" in spread
    text = result.render()
    assert "Seed-variance" in text
    assert "BLEU-4" in text


def test_variance_study_requires_seeds():
    import pytest
    from repro.experiments.variance import run_variance_study

    with pytest.raises(ValueError):
        run_variance_study(SMOKE, seeds=())
