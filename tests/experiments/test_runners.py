"""Integration tests: the experiment runners at smoke scale.

These exercise the full pipeline (corpus → vocabs → model → training →
beam decoding → metrics → table rendering) end to end; score *values* are
meaningless at this scale and are not asserted beyond type/structure.
"""

import numpy as np
import pytest

from repro.evaluation import METRIC_NAMES
from repro.experiments.configs import SMOKE
from repro.experiments.figure1 import EXPECTED_COMPONENTS, run_figure1
from repro.experiments.runner import TABLE1_SYSTEMS, run_system
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import PAPER_TABLE2, run_table2


@pytest.fixture(scope="module")
def table1_smoke():
    # Two systems keep this test fast while covering both model families
    # and both source modes.
    systems = (TABLE1_SYSTEMS[1], TABLE1_SYSTEMS[4])  # Du-sent, ACNN-para
    return run_table1(SMOKE, systems=systems)


def test_table1_produces_scores_for_each_system(table1_smoke):
    assert set(table1_smoke.scores) == {"Du-sent", "ACNN-para"}
    for scores in table1_smoke.scores.values():
        assert set(scores) == set(METRIC_NAMES)
        for value in scores.values():
            assert 0.0 <= value <= 100.0


def test_table1_render_shows_measured_and_paper(table1_smoke):
    text = table1_smoke.render()
    assert "measured" in text
    assert "paper" in text
    assert "44.78" in text  # paper's ACNN-sent BLEU-1


def test_table1_histories_recorded(table1_smoke):
    for run in table1_smoke.runs.values():
        assert len(run.history) >= 1
        assert run.train_seconds > 0


def test_paper_table1_matches_publication():
    assert PAPER_TABLE1["ACNN-sent"]["BLEU-4"] == 13.97
    assert PAPER_TABLE1["Seq2Seq"]["ROUGE-L"] == 29.75
    assert len(PAPER_TABLE1) == 5


def test_paper_table2_matches_publication():
    assert PAPER_TABLE2["ACNN-para-100"]["BLEU-4"] == 13.49
    assert PAPER_TABLE2["ACNN-para-150"]["ROUGE-L"] == 39.95
    assert len(PAPER_TABLE2) == 3


def test_table2_runs_each_length():
    result = run_table2(SMOKE, lengths=(100, 150))
    assert set(result.scores) == {"ACNN-para-100", "ACNN-para-150"}
    text = result.render()
    assert "ACNN-para-100" in text


def test_run_system_deterministic_given_seeds():
    spec = TABLE1_SYSTEMS[3]  # ACNN-sent
    a = run_system(spec, SMOKE)
    b = run_system(spec, SMOKE)
    assert a.scores == b.scores
    assert a.result.predictions == b.result.predictions


def test_figure1_component_inventory():
    result = run_figure1(SMOKE)
    for component in EXPECTED_COMPONENTS:
        assert component in result.component_names, component
    assert result.num_parameters > 0
    assert "Eq. 2" in result.description


def test_figure1_render_mentions_architecture_pieces():
    text = run_figure1(SMOKE).render()
    for keyword in ("bidirectional", "attention", "copy", "switch"):
        assert keyword in text
