"""Tests for experiment scales, the registry, and the CLI."""

import pytest

from repro.experiments.configs import DEFAULT, PAPER, SCALES, SMOKE
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.__main__ import main


def test_paper_scale_documents_original_constants():
    assert PAPER.num_train == 70484
    assert PAPER.num_dev == 10570
    assert PAPER.num_test == 11877
    assert PAPER.encoder_vocab_size == 45000
    assert PAPER.decoder_vocab_size == 28000
    assert PAPER.hidden_size == 600
    assert PAPER.num_layers == 2
    assert PAPER.dropout == 0.3
    assert PAPER.embedding_dim == 300
    assert PAPER.batch_size == 64
    assert PAPER.learning_rate == 1.0
    assert PAPER.halve_at_epoch == 8
    assert PAPER.beam_size == 3
    assert PAPER.paragraph_length == 100


def test_scales_registry():
    assert set(SCALES) == {"smoke", "default", "paper"}
    assert SCALES["default"] is DEFAULT


def test_scale_helpers_produce_valid_configs():
    for scale in (SMOKE, DEFAULT):
        model_config = scale.model_config()
        assert model_config.hidden_size == scale.hidden_size
        trainer_config = scale.trainer_config()
        assert trainer_config.epochs == scale.epochs
        synth = scale.synthetic_config()
        assert synth.num_train == scale.num_train


def test_scaled_override():
    modified = DEFAULT.scaled(epochs=3)
    assert modified.epochs == 3
    assert modified.num_train == DEFAULT.num_train


def test_registry_covers_every_paper_artifact():
    artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
    assert "Table 1" in artifacts
    assert "Table 2" in artifacts
    assert "Figure 1" in artifacts


def test_registry_bench_targets_exist():
    import os

    root = os.path.join(os.path.dirname(__file__), "..", "..")
    for experiment in EXPERIMENTS.values():
        assert os.path.exists(os.path.join(root, experiment.bench_target)), experiment.bench_target


def test_cli_list():
    assert main(["list"]) == 0


def test_cli_unknown_experiment():
    assert main(["not-an-experiment"]) == 2


def test_cli_rejects_paper_scale():
    assert main(["table1", "--scale", "paper"]) == 2


def test_cli_figure1_runs(capsys):
    assert main(["figure1", "--scale", "smoke", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "copy" in out
