"""Pure-unit tests of the experiment result logic (no training involved)."""

from repro.experiments.configs import SMOKE
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import Table2Result
from repro.experiments.learning_curve import LearningCurveResult
from repro.experiments.runner import SystemSpec, SystemRun
from repro.evaluation.evaluator import EvaluationResult
from repro.training.history import TrainingHistory


def _fake_run(label, scores):
    spec = SystemSpec(key=label, label=label, family="acnn", source_mode="sentence")
    result = EvaluationResult(scores=scores, predictions=(), references=())
    return SystemRun(
        spec=spec,
        model=None,
        result=result,
        history=TrainingHistory(),
        train_seconds=0.0,
        eval_seconds=0.0,
    )


def _scores(b1, b2, b3, b4, rouge):
    return {"BLEU-1": b1, "BLEU-2": b2, "BLEU-3": b3, "BLEU-4": b4, "ROUGE-L": rouge}


def _table1(**rows):
    result = Table1Result(scale=SMOKE)
    for label, scores in rows.items():
        result.runs[label.replace("_", "-")] = _fake_run(label, scores)
    return result


def test_table1_orderings_all_true_when_paper_shape():
    result = Table1Result(scale=SMOKE)
    for label, b4, rouge in [
        ("Seq2Seq", 4.0, 30.0),
        ("Du-sent", 12.0, 40.0),
        ("Du-para", 11.0, 39.0),
        ("ACNN-sent", 14.0, 41.0),
        ("ACNN-para", 13.0, 40.5),
    ]:
        result.runs[label] = _fake_run(label, _scores(40, 25, 17, b4, rouge))
    orderings = result.ordering_holds()
    assert all(orderings.values())


def test_table1_detects_baseline_win():
    result = Table1Result(scale=SMOKE)
    for label, b4, rouge in [
        ("Seq2Seq", 4.0, 30.0),
        ("Du-sent", 20.0, 45.0),  # baseline beats ACNN
        ("Du-para", 11.0, 39.0),
        ("ACNN-sent", 14.0, 41.0),
        ("ACNN-para", 13.0, 40.5),
    ]:
        result.runs[label] = _fake_run(label, _scores(40, 25, 17, b4, rouge))
    orderings = result.ordering_holds()
    assert not orderings["acnn_sent_beats_du_sent"]
    assert not orderings["acnn_beats_all_baselines"]


def test_table2_ordering_logic():
    result = Table2Result(scale=SMOKE)
    result.runs["ACNN-para-150"] = _fake_run("ACNN-para-150", _scores(43, 25, 17, 12.0, 39.0))
    result.runs["ACNN-para-120"] = _fake_run("ACNN-para-120", _scores(44, 25, 17, 13.0, 40.0))
    result.runs["ACNN-para-100"] = _fake_run("ACNN-para-100", _scores(44, 26, 18, 13.5, 40.5))
    orderings = result.ordering_holds()
    assert orderings["len100_beats_len150"]
    assert orderings["len100_best_rouge"]


def test_table2_detects_reversed_shape():
    result = Table2Result(scale=SMOKE)
    result.runs["ACNN-para-150"] = _fake_run("ACNN-para-150", _scores(44, 26, 18, 14.0, 41.0))
    result.runs["ACNN-para-120"] = _fake_run("ACNN-para-120", _scores(44, 25, 17, 13.0, 40.0))
    result.runs["ACNN-para-100"] = _fake_run("ACNN-para-100", _scores(43, 25, 17, 12.0, 39.0))
    orderings = result.ordering_holds()
    assert not orderings["len100_beats_len150"]
    assert not orderings["len100_best_rouge"]


def test_learning_curve_series_and_gaps():
    result = LearningCurveResult(scale=SMOKE, sizes=(100, 200))
    for size, du, acnn in [(100, 5.0, 9.0), (200, 8.0, 11.0)]:
        result.runs[("Du-attention", size)] = _fake_run("Du", _scores(0, 0, 0, du, du))
        result.runs[("ACNN", size)] = _fake_run("ACNN", _scores(0, 0, 0, acnn, acnn))
    assert result.series("ACNN") == [9.0, 11.0]
    assert result.gaps() == [4.0, 3.0]
    assert result.acnn_always_ahead("BLEU-4")


def test_learning_curve_render_contains_gap_row():
    result = LearningCurveResult(scale=SMOKE, sizes=(100,))
    result.runs[("Du-attention", 100)] = _fake_run("Du", _scores(1, 1, 1, 1.0, 1.0))
    result.runs[("ACNN", 100)] = _fake_run("ACNN", _scores(2, 2, 2, 2.0, 2.0))
    text = result.render()
    assert "gap (ACNN-Du)" in text
    assert "+1.00" in text


def test_variance_spread_logic():
    from repro.experiments.variance import VarianceResult

    result = VarianceResult(scale=SMOKE, label="acnn-sent")
    for seed, b4 in [(0, 10.0), (1, 14.0), (2, 12.0)]:
        result.runs[seed] = _fake_run("acnn-sent", _scores(20, 18, 15, b4, 30))
    assert result.values("BLEU-4") == [10.0, 14.0, 12.0]
    spread = result.spread("BLEU-4")
    assert spread["mean"] == 12.0
    assert spread["min"] == 10.0
    assert spread["max"] == 14.0
    assert spread["std"] == 2.0
    assert "range" in result.render()


def test_variance_single_seed_std_zero():
    from repro.experiments.variance import VarianceResult

    result = VarianceResult(scale=SMOKE, label="acnn-sent")
    result.runs[0] = _fake_run("acnn-sent", _scores(1, 1, 1, 1.0, 1.0))
    assert result.spread("BLEU-4")["std"] == 0.0


def test_domain_transfer_copy_transfers_logic():
    from repro.experiments.domain_transfer import DomainTransferResult

    result = DomainTransferResult(scale=SMOKE)
    result.oov_recall = {
        "ACNN": {"in": 0.6, "out": 0.2},
        "Du-attention": {"in": 0.0, "out": 0.0},
    }
    assert result.copy_transfers()
    result.oov_recall["ACNN"]["out"] = 0.0
    assert not result.copy_transfers()
