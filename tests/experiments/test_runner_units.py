"""Unit tests for runner helpers (no training)."""

import numpy as np

from repro.data.dataset import SourceMode
from repro.data.synthetic import generate_corpus
from repro.experiments.configs import SMOKE
from repro.experiments.runner import (
    TABLE1_SYSTEMS,
    _apply_pretrained_embeddings,
    prepare_datasets,
)
from repro.models import build_model


def _corpus():
    return generate_corpus(SMOKE.synthetic_config())


def test_prepare_datasets_sentence_mode():
    train, dev, test = prepare_datasets(_corpus(), SMOKE, SourceMode.SENTENCE)
    assert len(train) == SMOKE.num_train
    assert len(dev) == SMOKE.num_dev
    assert len(test) == SMOKE.num_test
    assert train.encoder_vocab is dev.encoder_vocab is test.encoder_vocab


def test_prepare_datasets_paragraph_truncation_override():
    short, _, _ = prepare_datasets(_corpus(), SMOKE, SourceMode.PARAGRAPH, paragraph_length=20)
    long, _, _ = prepare_datasets(_corpus(), SMOKE, SourceMode.PARAGRAPH, paragraph_length=150)
    assert max(len(e.src_tokens) for e in short) <= 20
    assert max(len(e.src_tokens) for e in long) > 20
    # Different truncation exposes different vocabulary.
    assert len(long.encoder_vocab) >= len(short.encoder_vocab)


def test_table1_systems_cover_paper_rows():
    labels = [spec.label for spec in TABLE1_SYSTEMS]
    assert labels == ["Seq2Seq", "Du-sent", "Du-para", "ACNN-sent", "ACNN-para"]
    modes = {spec.label: spec.source_mode for spec in TABLE1_SYSTEMS}
    assert modes["Du-para"] == SourceMode.PARAGRAPH
    assert modes["ACNN-sent"] == SourceMode.SENTENCE


def test_seed_offsets_distinct():
    offsets = [spec.seed_offset for spec in TABLE1_SYSTEMS]
    assert len(set(offsets)) == len(offsets)


def test_apply_pretrained_embeddings_changes_tables():
    train, _, _ = prepare_datasets(_corpus(), SMOKE, SourceMode.SENTENCE)
    model = build_model(
        "acnn", SMOKE.model_config(), len(train.encoder_vocab), len(train.decoder_vocab)
    )
    before = model.encoder_embedding.weight.data.copy()
    _apply_pretrained_embeddings(model, train, SMOKE)
    after = model.encoder_embedding.weight.data
    assert not np.allclose(before, after)
    assert np.allclose(after[0], 0.0)  # PAD row stays zero


def test_apply_pretrained_embeddings_deterministic():
    train, _, _ = prepare_datasets(_corpus(), SMOKE, SourceMode.SENTENCE)
    models = []
    for _ in range(2):
        model = build_model(
            "acnn", SMOKE.model_config(), len(train.encoder_vocab), len(train.decoder_vocab)
        )
        _apply_pretrained_embeddings(model, train, SMOKE)
        models.append(model)
    assert np.allclose(
        models[0].encoder_embedding.weight.data, models[1].encoder_embedding.weight.data
    )
