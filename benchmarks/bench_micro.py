"""Microbenchmarks for the performance-critical kernels.

These give pytest-benchmark stable per-operation timings: the fused LSTM
step (forward and forward+backward), the attention layer, a full ACNN
training step, beam-search decode throughput (batched engine vs the
per-example baseline, at batch sizes 1/8/32), and the corpus metrics.
The decode-throughput comparison is also written to
``results/decode_throughput.txt`` so regressions are visible in the
committed artifacts.
"""

import time

import numpy as np
import pytest

from conftest import write_result

from repro.data import BatchIterator, QGDataset, collate, generate_corpus
from repro.data.synthetic import SyntheticConfig
from repro.decoding import batched_beam_decode, beam_decode, beam_decode_example
from repro.metrics import corpus_bleu, corpus_rouge_l
from repro.models import ModelConfig, build_model
from repro.nn import GlobalAttention, LSTMCell
from repro.nn.functional import lstm_cell_step
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def micro_setup():
    corpus = generate_corpus(SyntheticConfig(num_train=64, num_dev=8, num_test=8, seed=3))
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(corpus.train, 500, 120)
    dataset = QGDataset(corpus.train, encoder_vocab, decoder_vocab)
    batch = collate(dataset.encoded[:32], pad_id=0)
    config = ModelConfig(embedding_dim=32, hidden_size=48, num_layers=2, dropout=0.0, seed=0)
    model = build_model("acnn", config, len(encoder_vocab), len(decoder_vocab))
    return model, dataset, batch


def test_fused_lstm_step_forward(benchmark):
    cell = LSTMCell(48, 48, np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).standard_normal((64, 48)))
    h, c = cell.initial_state(64)
    benchmark(lambda: lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias))


def test_fused_lstm_step_with_backward(benchmark):
    cell = LSTMCell(48, 48, np.random.default_rng(0))
    x_data = np.random.default_rng(1).standard_normal((64, 48))

    def step():
        x = Tensor(x_data, requires_grad=True)
        h, c = cell.initial_state(64)
        h_new, c_new = lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
        (h_new.sum() + c_new.sum()).backward()
        cell.zero_grad()

    benchmark(step)


def test_global_attention_forward(benchmark):
    attention = GlobalAttention(48, 96, np.random.default_rng(0))
    d = Tensor(np.random.default_rng(1).standard_normal((32, 48)))
    h = Tensor(np.random.default_rng(2).standard_normal((32, 100, 96)))
    benchmark(lambda: attention(d, h))


def test_acnn_training_step(benchmark, micro_setup):
    model, _, batch = micro_setup
    from repro.optim import SGD, clip_grad_norm

    optimizer = SGD(model.parameters(), lr=0.1)

    def step():
        model.train()
        loss = model.loss(batch)
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()

    benchmark(step)


def test_acnn_loss_forward_only(benchmark, micro_setup):
    model, _, batch = micro_setup
    model.eval()
    from repro.tensor import no_grad

    def forward():
        with no_grad():
            return model.loss(batch).item()

    benchmark(forward)


def test_beam_decode_batch(benchmark, micro_setup):
    model, dataset, _ = micro_setup
    small = collate(dataset.encoded[:8], pad_id=0)
    benchmark(lambda: beam_decode(model, small, beam_size=3, max_length=12))


def _per_example_beam(model, batch, beam_size, max_length):
    """The pre-engine decode strategy: one independent beam per example."""
    model.eval()
    with no_grad():
        context = model.encode(batch)
        return [
            beam_decode_example(
                model, context, index, beam_size=beam_size, max_length=max_length
            )
            for index in range(context.batch_size)
        ]


@pytest.mark.parametrize("batch_size", [1, 8, 32])
def test_batched_beam_decode_throughput(benchmark, micro_setup, batch_size):
    model, dataset, _ = micro_setup
    batch = collate(dataset.encoded[:batch_size], pad_id=0)
    benchmark(lambda: batched_beam_decode(model, batch, beam_size=3, max_length=12))


def test_decode_throughput_report(micro_setup, results_dir):
    """Batched engine vs per-example baseline, written to results/.

    The acceptance bar for the engine: >= 2x throughput over the
    per-example baseline at batch 32, beam 3.
    """
    model, dataset, _ = micro_setup
    beam_size, max_length, repeats = 3, 12, 3

    lines = [
        "decode throughput: batched beam engine vs per-example baseline",
        f"beam_size={beam_size} max_length={max_length} best-of-{repeats}",
        "",
        f"{'batch':>5} {'per-example (s)':>16} {'batched (s)':>12} {'speedup':>8}",
    ]
    speedups = {}
    for batch_size in (1, 8, 32):
        batch = collate(dataset.encoded[:batch_size], pad_id=0)

        def best_of(fn):
            timings = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                timings.append(time.perf_counter() - start)
            return min(timings)

        baseline = best_of(
            lambda: _per_example_beam(model, batch, beam_size, max_length)
        )
        batched = best_of(
            lambda: batched_beam_decode(
                model, batch, beam_size=beam_size, max_length=max_length
            )
        )
        speedups[batch_size] = baseline / batched
        lines.append(
            f"{batch_size:>5} {baseline:>16.4f} {batched:>12.4f} "
            f"{speedups[batch_size]:>7.2f}x"
        )

    # Both paths must still agree on what they decode.
    batch = collate(dataset.encoded[:8], pad_id=0)
    per_example = _per_example_beam(model, batch, beam_size, max_length)
    batched = batched_beam_decode(model, batch, beam_size=beam_size, max_length=max_length)
    assert [h.token_ids for h in per_example] == [h.token_ids for h in batched]

    write_result(results_dir, "decode_throughput.txt", "\n".join(lines) + "\n")
    assert speedups[32] >= 2.0


def test_telemetry_disabled_overhead_report(micro_setup, results_dir):
    """Instrumentation cost with telemetry off, written to results/.

    Every report site goes through the ambient hub unconditionally; with no
    hub installed that is a :class:`NullTelemetry` whose emitters are
    no-ops. The acceptance bar: the instrumentation of one training step
    (the exact call pattern of ``Trainer.train_batch``) must cost < 3% of
    the bare step's wall-clock when telemetry is disabled.

    The two quantities are measured separately — the no-op call pattern in
    a tight loop, the bare step best-of-N — rather than by differencing two
    step timings, which would put the microsecond-scale quantity of
    interest under millisecond-scale run-to-run noise.
    """
    from repro.observability import NullTelemetry, nonfinite_sentinel
    from repro.optim import SGD, clip_grad_norm

    model, _, batch = micro_setup
    optimizer = SGD(model.parameters(), lr=0.1)
    telemetry = NullTelemetry()
    num_tokens = batch.num_target_tokens

    def step():
        model.train()
        loss = model.loss(batch)
        loss_value = loss.item()
        loss.backward()
        norm = clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()
        return loss_value, norm

    def per_step_instrumentation():
        with telemetry.span("forward"):
            pass
        nonfinite_sentinel(telemetry, "loss", 1.0)
        with telemetry.span("backward"):
            pass
        nonfinite_sentinel(telemetry, "grad_norm", 1.0)
        with telemetry.span("optimizer_step"):
            pass
        telemetry.gauge("train.loss", 1.0)
        telemetry.gauge("train.grad_norm", 1.0)
        telemetry.counter("train.tokens", num_tokens)
        telemetry.observe("train.batch_seconds", 0.0)

    step()  # warm up before timing
    per_step_instrumentation()

    timings = []
    for _ in range(5):
        start = time.perf_counter()
        step()
        timings.append(time.perf_counter() - start)
    step_seconds = min(timings)

    calls = 2000
    start = time.perf_counter()
    for _ in range(calls):
        per_step_instrumentation()
    instrumentation_seconds = (time.perf_counter() - start) / calls

    overhead = instrumentation_seconds / step_seconds
    write_result(
        results_dir,
        "telemetry_overhead.txt",
        "telemetry-disabled overhead on the ACNN training step\n"
        f"bare step:       {1e3 * step_seconds:.3f} ms (best of 5)\n"
        f"instrumentation: {1e6 * instrumentation_seconds:.2f} us per step "
        "(NullTelemetry call pattern)\n"
        f"overhead:        {100 * overhead:.3f}%\n",
    )
    assert overhead < 0.03, f"disabled telemetry costs {100 * overhead:.2f}% (> 3%)"


def test_corpus_bleu_speed(benchmark):
    rng = np.random.default_rng(0)
    vocabulary = [f"w{i}" for i in range(200)]
    hyps = [[vocabulary[i] for i in rng.integers(0, 200, size=10)] for _ in range(500)]
    refs = [[[vocabulary[i] for i in rng.integers(0, 200, size=10)]] for _ in range(500)]
    benchmark(lambda: corpus_bleu(hyps, refs))


def test_corpus_rouge_speed(benchmark):
    rng = np.random.default_rng(1)
    vocabulary = [f"w{i}" for i in range(200)]
    hyps = [[vocabulary[i] for i in rng.integers(0, 200, size=10)] for _ in range(500)]
    refs = [[[vocabulary[i] for i in rng.integers(0, 200, size=10)]] for _ in range(500)]
    benchmark(lambda: corpus_rouge_l(hyps, refs))


def test_acnn_loss_tape_node_count(benchmark, micro_setup):
    """Track the tape-node budget of a full ACNN loss (regression guard)."""
    from repro.tensor.profiler import TapeProfile

    model, _, batch = micro_setup
    model.train()

    def profiled():
        with TapeProfile() as profile:
            model.loss(batch)
        return profile

    profile = benchmark(profiled)
    # Sentence-scale batch: the graph must stay well under ~10k nodes; the
    # pre-fusion implementation was several times larger.
    assert profile.nodes < 10000


def test_fusion_throughput_report(micro_setup, results_dir):
    """Staged execution (lazy trace + fused kernels + arena replay) vs eager.

    Micro configs replay the attention kernel and a chained LSTM cell step
    under ``lazy() + no_grad`` against the elementary eager chain; decode
    configs run greedy and batched-beam decode with ``fusion`` on vs off.
    Results go to ``results/fusion_throughput.txt`` and the repo-root
    ``BENCH_tensor_fusion.json``. Acceptance bar (ISSUE 6): >= 2x on at
    least one configuration, with byte-identical decode outputs.
    """
    import json
    import os

    from repro.decoding import greedy_decode
    from repro.tensor import lazy

    model, dataset, _ = micro_setup
    rng = np.random.default_rng(0)

    def best_of(fn, repeats=5):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    configs = []

    # --- micro: fused attention replay vs elementary eager chain --------
    attention = GlobalAttention(48, 96, rng)
    d = Tensor(rng.standard_normal((32, 48)))
    h = Tensor(rng.standard_normal((32, 100, 96)))
    mask = rng.random((32, 100)) < 0.2
    mask[:, 0] = False
    steps = 100

    def attention_eager():
        with no_grad():
            for _ in range(steps):
                attention(d, h, pad_mask=mask)

    def attention_fused():
        with lazy(), no_grad():
            for _ in range(steps):
                attention(d, h, pad_mask=mask)

    attention_fused()  # warm the arena before timing
    configs.append(
        {
            "name": "attention_kernel_replay",
            "detail": f"batch=32 time=100 enc=96, {steps} replayed steps",
            "eager_seconds": best_of(attention_eager),
            "fused_seconds": best_of(attention_fused),
        }
    )

    # --- micro: fused single-node attention, forward + backward ---------
    # This is what TrainerConfig.fusion toggles: the whole score→mask→
    # softmax→context chain as one tape node with a hand-written BLAS
    # backward, vs ~12 elementary nodes each materializing (B, T, E)
    # temporaries in both directions.
    grad_attention = GlobalAttention(64, 128, rng)
    gd = Tensor(rng.standard_normal((16, 64)), requires_grad=True)
    gh = Tensor(rng.standard_normal((16, 200, 128)), requires_grad=True)
    gmask = rng.random((16, 200)) < 0.2
    gmask[:, 0] = False

    def attention_grad(fused):
        from repro.tensor import lazy as lazy_ctx

        for _ in range(20):
            if fused:
                with lazy_ctx():
                    context, weights = grad_attention(gd, gh, pad_mask=gmask)
            else:
                context, weights = grad_attention(gd, gh, pad_mask=gmask)
            (context.sum() + weights.sum()).backward()
            gd.zero_grad()
            gh.zero_grad()
            grad_attention.weight.zero_grad()

    attention_grad(True)  # warm up both the kernel path and the allocator
    attention_grad(False)
    configs.append(
        {
            "name": "attention_grad_fused_node",
            "detail": "batch=16 time=200 enc=128, 20 forward+backward steps",
            "eager_seconds": best_of(lambda: attention_grad(False)),
            "fused_seconds": best_of(lambda: attention_grad(True)),
        }
    )

    # --- micro: LSTM cell step chain ------------------------------------
    cell = LSTMCell(48, 48, rng)
    xs = [Tensor(rng.standard_normal((64, 48))) for _ in range(50)]

    def lstm_chain():
        state = cell.initial_state(64)
        for x in xs:
            state = cell(x, state)

    def lstm_eager():
        with no_grad():
            lstm_chain()

    def lstm_fused():
        with lazy(), no_grad():
            lstm_chain()

    lstm_fused()
    configs.append(
        {
            "name": "lstm_cell_chain_replay",
            "detail": "batch=64 hidden=48, 50 chained steps",
            "eager_seconds": best_of(lstm_eager),
            "fused_seconds": best_of(lstm_fused),
        }
    )

    # --- decode: greedy and batched beam, fusion flag on vs off ---------
    batch = collate(dataset.encoded[:16], pad_id=0)
    greedy_off = greedy_decode(model, batch, max_length=16, fusion=False)
    greedy_on = greedy_decode(model, batch, max_length=16, fusion=True)
    assert [h.token_ids for h in greedy_off] == [h.token_ids for h in greedy_on]
    configs.append(
        {
            "name": "greedy_decode",
            "detail": "acnn batch=16 max_length=16",
            "eager_seconds": best_of(
                lambda: greedy_decode(model, batch, max_length=16, fusion=False)
            ),
            "fused_seconds": best_of(
                lambda: greedy_decode(model, batch, max_length=16, fusion=True)
            ),
        }
    )

    beam_off = batched_beam_decode(model, batch, beam_size=3, max_length=12, fusion=False)
    beam_on = batched_beam_decode(model, batch, beam_size=3, max_length=12, fusion=True)
    assert [h.token_ids for h in beam_off] == [h.token_ids for h in beam_on]
    configs.append(
        {
            "name": "batched_beam_decode",
            "detail": "acnn batch=16 beam=3 max_length=12",
            "eager_seconds": best_of(
                lambda: batched_beam_decode(
                    model, batch, beam_size=3, max_length=12, fusion=False
                )
            ),
            "fused_seconds": best_of(
                lambda: batched_beam_decode(
                    model, batch, beam_size=3, max_length=12, fusion=True
                )
            ),
        }
    )

    for config in configs:
        config["speedup"] = round(config["eager_seconds"] / config["fused_seconds"], 2)

    lines = [
        "staged execution throughput: lazy + fused kernels + arena replay vs eager",
        "best-of-5 wall clock per configuration",
        "",
        f"{'config':<26} {'eager (s)':>10} {'fused (s)':>10} {'speedup':>8}",
    ]
    for config in configs:
        lines.append(
            f"{config['name']:<26} {config['eager_seconds']:>10.4f} "
            f"{config['fused_seconds']:>10.4f} {config['speedup']:>7.2f}x"
        )
    write_result(results_dir, "fusion_throughput.txt", "\n".join(lines) + "\n")

    report = {
        "benchmark": "tensor_fusion",
        "description": (
            "lazy()/compile_graph staged execution with fused LSTM/attention/"
            "pointer kernels and arena replay, vs per-op eager dispatch"
        ),
        "command": "PYTHONPATH=src python -m pytest benchmarks/bench_micro.py -k fusion_throughput",
        "timing": "best of 5",
        "equivalence": "decode outputs byte-identical fusion on vs off",
        "configs": configs,
        "max_speedup": max(config["speedup"] for config in configs),
    }
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(repo_root, "BENCH_tensor_fusion.json"), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    assert report["max_speedup"] >= 2.0, (
        f"fusion must hit >= 2x on at least one config, best was "
        f"{report['max_speedup']:.2f}x"
    )
