"""Microbenchmarks for the performance-critical kernels.

These give pytest-benchmark stable per-operation timings: the fused LSTM
step (forward and forward+backward), the attention layer, a full ACNN
training step, one beam-search decode, and the corpus metrics.
"""

import numpy as np
import pytest

from repro.data import BatchIterator, QGDataset, collate, generate_corpus
from repro.data.synthetic import SyntheticConfig
from repro.decoding import beam_decode
from repro.metrics import corpus_bleu, corpus_rouge_l
from repro.models import ModelConfig, build_model
from repro.nn import GlobalAttention, LSTMCell
from repro.nn.functional import lstm_cell_step
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def micro_setup():
    corpus = generate_corpus(SyntheticConfig(num_train=64, num_dev=8, num_test=8, seed=3))
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(corpus.train, 500, 120)
    dataset = QGDataset(corpus.train, encoder_vocab, decoder_vocab)
    batch = collate(dataset.encoded[:32], pad_id=0)
    config = ModelConfig(embedding_dim=32, hidden_size=48, num_layers=2, dropout=0.0, seed=0)
    model = build_model("acnn", config, len(encoder_vocab), len(decoder_vocab))
    return model, dataset, batch


def test_fused_lstm_step_forward(benchmark):
    cell = LSTMCell(48, 48, np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).standard_normal((64, 48)))
    h, c = cell.initial_state(64)
    benchmark(lambda: lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias))


def test_fused_lstm_step_with_backward(benchmark):
    cell = LSTMCell(48, 48, np.random.default_rng(0))
    x_data = np.random.default_rng(1).standard_normal((64, 48))

    def step():
        x = Tensor(x_data, requires_grad=True)
        h, c = cell.initial_state(64)
        h_new, c_new = lstm_cell_step(x, h, c, cell.weight_ih, cell.weight_hh, cell.bias)
        (h_new.sum() + c_new.sum()).backward()
        cell.zero_grad()

    benchmark(step)


def test_global_attention_forward(benchmark):
    attention = GlobalAttention(48, 96, np.random.default_rng(0))
    d = Tensor(np.random.default_rng(1).standard_normal((32, 48)))
    h = Tensor(np.random.default_rng(2).standard_normal((32, 100, 96)))
    benchmark(lambda: attention(d, h))


def test_acnn_training_step(benchmark, micro_setup):
    model, _, batch = micro_setup
    from repro.optim import SGD, clip_grad_norm

    optimizer = SGD(model.parameters(), lr=0.1)

    def step():
        model.train()
        loss = model.loss(batch)
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        model.zero_grad()

    benchmark(step)


def test_acnn_loss_forward_only(benchmark, micro_setup):
    model, _, batch = micro_setup
    model.eval()
    from repro.tensor import no_grad

    def forward():
        with no_grad():
            return model.loss(batch).item()

    benchmark(forward)


def test_beam_decode_batch(benchmark, micro_setup):
    model, dataset, _ = micro_setup
    small = collate(dataset.encoded[:8], pad_id=0)
    benchmark(lambda: beam_decode(model, small, beam_size=3, max_length=12))


def test_corpus_bleu_speed(benchmark):
    rng = np.random.default_rng(0)
    vocabulary = [f"w{i}" for i in range(200)]
    hyps = [[vocabulary[i] for i in rng.integers(0, 200, size=10)] for _ in range(500)]
    refs = [[[vocabulary[i] for i in rng.integers(0, 200, size=10)]] for _ in range(500)]
    benchmark(lambda: corpus_bleu(hyps, refs))


def test_corpus_rouge_speed(benchmark):
    rng = np.random.default_rng(1)
    vocabulary = [f"w{i}" for i in range(200)]
    hyps = [[vocabulary[i] for i in rng.integers(0, 200, size=10)] for _ in range(500)]
    refs = [[[vocabulary[i] for i in rng.integers(0, 200, size=10)]] for _ in range(500)]
    benchmark(lambda: corpus_rouge_l(hyps, refs))


def test_acnn_loss_tape_node_count(benchmark, micro_setup):
    """Track the tape-node budget of a full ACNN loss (regression guard)."""
    from repro.tensor.profiler import TapeProfile

    model, _, batch = micro_setup
    model.train()

    def profiled():
        with TapeProfile() as profile:
            model.loss(batch)
        return profile

    profile = benchmark(profiled)
    # Sentence-scale batch: the graph must stay well under ~10k nodes; the
    # pre-fusion implementation was several times larger.
    assert profile.nodes < 10000
