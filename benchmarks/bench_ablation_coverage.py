"""Ablation benchmark: the coverage extension (See et al. 2017) on the ACNN.

Coverage adds an attention-history term to the attention scores and a
min(attention, coverage) loss, targeting the repeated-phrase stutter an
attentional decoder exhibits at small scale. This bench trains ACNN-sent
with and without coverage and reports BLEU/ROUGE plus the repeated-bigram
rate.
"""

from conftest import write_result

from repro.experiments.ablations import run_coverage_ablation


def test_coverage_ablation(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_coverage_ablation(bench_scale), rounds=1, iterations=1
    )

    assert set(result.scores) == {"ACNN", "ACNN + coverage"}
    rendered = result.render()
    rendered += f"\n\ncoverage_reduces_repetition: {result.coverage_reduces_repetition()}"
    write_result(results_dir, f"ablation_coverage_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)
