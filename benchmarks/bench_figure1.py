"""Benchmark reproducing Figure 1 (the ACNN architecture schematic).

Figure 1 is a diagram, not a measurement; the reproduction instantiates the
model and asserts it contains exactly the components the diagram shows —
bidirectional encoder, attentional decoder, generation softmax, copy
distribution, and the adaptive switch — and benchmarks model construction.
"""

from conftest import write_result

from repro.experiments.figure1 import EXPECTED_COMPONENTS, run_figure1


def test_figure1(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(lambda: run_figure1(bench_scale), rounds=3, iterations=1)

    for component in EXPECTED_COMPONENTS:
        assert component in result.component_names, f"missing component: {component}"
    for equation in ("Eq. 2", "z_k", "P_cop", "P_att"):
        assert equation in result.description

    rendered = result.render()
    write_result(results_dir, f"figure1_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)
