"""Shared benchmark configuration.

By default benchmarks run at the ``smoke`` scale so that
``pytest benchmarks/ --benchmark-only`` completes in minutes and exercises
every experiment end to end. Set ``ACNN_BENCH_SCALE=default`` to regenerate
the full recorded tables (tens of minutes on one CPU core); that is how the
numbers in EXPERIMENTS.md were produced.

Every table benchmark writes its rendered output under ``results/`` so the
regenerated artifacts are inspectable after the run.
"""

import os

import pytest

from repro.experiments.configs import SCALES

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def bench_scale():
    name = os.environ.get("ACNN_BENCH_SCALE", "smoke")
    if name not in SCALES or name == "paper":
        raise ValueError(f"ACNN_BENCH_SCALE must be 'smoke' or 'default', got {name!r}")
    return SCALES[name]


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    with open(os.path.join(results_dir, name), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
