"""Ablation benchmark: answer-position features (Zhou et al. 2017).

The paper's related work cites Zhou et al.'s answer-position conditioning;
this bench measures what those features buy on top of the ACNN: the encoder
receives an inside/outside-answer tag embedding per token, which
disambiguates *which* question to ask about a sentence with several facts.
"""

from conftest import write_result

from repro.experiments.ablations import run_answer_feature_ablation


def test_answer_feature_ablation(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_answer_feature_ablation(bench_scale), rounds=1, iterations=1
    )

    assert set(result.scores) == {"ACNN", "ACNN + answer tags"}
    rendered = result.render()
    write_result(results_dir, f"ablation_answer_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)
