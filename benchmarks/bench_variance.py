"""Benchmark for the seed-variance study (reproduction methodology).

Trains the same ACNN-sent at several seeds and reports the per-metric
spread. At the default scale the study must produce a usable noise floor
(non-degenerate runs; finite spread) — the yardstick EXPERIMENTS.md applies
to the paper's sub-point Table 2 deltas.
"""

from conftest import write_result

from repro.experiments.variance import run_variance_study


def test_variance_study(benchmark, bench_scale, results_dir):
    seeds = (0, 1) if bench_scale.name == "smoke" else (0, 1, 2)
    result = benchmark.pedantic(
        lambda: run_variance_study(bench_scale, seeds=seeds), rounds=1, iterations=1
    )

    assert len(result.runs) == len(seeds)
    spread = result.spread("BLEU-4")
    assert spread["max"] >= spread["min"]
    rendered = result.render()
    write_result(results_dir, f"variance_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)

    if bench_scale.name == "default":
        # Every seed must train to a non-collapsed model.
        assert spread["min"] > 10.0
