"""Ablation benchmark: beam width at decode time.

The paper fixes beam=3; this bench trains one ACNN-sent and decodes the
test split at widths 1/3/5, rendering the sweep.
"""

from conftest import write_result

from repro.experiments.ablations import run_beam_ablation


def test_beam_ablation(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_beam_ablation(bench_scale), rounds=1, iterations=1
    )

    assert set(result.scores) == {"beam=1", "beam=3", "beam=5"}
    rendered = result.render()
    write_result(results_dir, f"ablation_beam_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)
