"""Benchmark regenerating the paper's Table 2 (paragraph-length ablation).

Trains ACNN-para at truncation lengths 150/120/100 and renders the measured
table next to the paper's. The paper's deltas between adjacent lengths are
below one BLEU point; at CPU scale single-seed variance exceeds that (see
EXPERIMENTS.md), so the default-scale assertion is a *noise-band* check —
the three lengths must land within a few BLEU-4 points of each other — and
the ordering booleans are reported rather than asserted.
"""

from conftest import write_result

from repro.evaluation import METRIC_NAMES
from repro.experiments.table2 import run_table2


def test_table2(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_table2(bench_scale), rounds=1, iterations=1
    )

    assert set(result.scores) == {"ACNN-para-150", "ACNN-para-120", "ACNN-para-100"}
    for scores in result.scores.values():
        assert set(scores) == set(METRIC_NAMES)

    rendered = result.render()
    orderings = result.ordering_holds()
    rendered += "\n\norderings: " + ", ".join(f"{k}={v}" for k, v in orderings.items())
    write_result(results_dir, f"table2_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)

    if bench_scale.name == "default":
        bleu4 = [scores["BLEU-4"] for scores in result.scores.values()]
        assert max(bleu4) - min(bleu4) < 8.0, "truncation lengths diverged beyond noise"
        assert min(bleu4) > 5.0, "a truncation-length run collapsed"
