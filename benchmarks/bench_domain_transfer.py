"""Benchmark for the domain-transfer experiment (paper §5 future work).

Trains the attention baseline and the ACNN on geography-flavoured templates
and evaluates both on a disjoint people/organisation domain. At the default
scale the future-work hypothesis — the copy skill transfers, so the ACNN
keeps higher out-of-domain OOV-entity recall — is asserted.
"""

from conftest import write_result

from repro.experiments.domain_transfer import run_domain_transfer


def test_domain_transfer(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_domain_transfer(bench_scale), rounds=1, iterations=1
    )

    assert set(result.in_domain) == {"Du-attention", "ACNN"}
    assert set(result.out_of_domain) == {"Du-attention", "ACNN"}
    rendered = result.render()
    rendered += f"\n\ncopy_transfers: {result.copy_transfers()}"
    write_result(results_dir, f"domain_transfer_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)

    if bench_scale.name == "default":
        assert result.copy_transfers()
