"""Benchmark for the learning-curve experiment (intro's limited-data claim).

Trains Du-attention and ACNN-sent at several training-set sizes. At the
default scale, the ACNN must stay ahead on ROUGE-L at every size — the
paper's motivating claim that copying compensates for limited supervision.
At smoke scale only two small sizes are run.
"""

from conftest import write_result

from repro.experiments.learning_curve import run_learning_curve


def test_learning_curve(benchmark, bench_scale, results_dir):
    if bench_scale.name == "smoke":
        sizes = (24, 48)
    else:
        sizes = (250, 500, 1000, 2000)

    result = benchmark.pedantic(
        lambda: run_learning_curve(bench_scale, sizes=sizes), rounds=1, iterations=1
    )

    assert len(result.runs) == 2 * len(sizes)
    rendered = result.render()
    rendered += f"\n\nacnn_always_ahead (ROUGE-L): {result.acnn_always_ahead()}"
    write_result(results_dir, f"learning_curve_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)

    if bench_scale.name == "default":
        assert result.acnn_always_ahead("ROUGE-L")
