"""Benchmark regenerating the paper's Table 1.

Trains and evaluates all five systems (Seq2Seq, Du-sent, Du-para,
ACNN-sent, ACNN-para) on the shared synthetic corpus and renders the
measured table next to the paper's. At ``ACNN_BENCH_SCALE=default`` this is
the run recorded in EXPERIMENTS.md and the qualitative orderings are
asserted; at smoke scale only the plumbing and table structure are checked.
"""

from conftest import write_result

from repro.evaluation import METRIC_NAMES
from repro.experiments.table1 import run_table1


def test_table1(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_table1(bench_scale), rounds=1, iterations=1
    )

    assert set(result.scores) == {"Seq2Seq", "Du-sent", "Du-para", "ACNN-sent", "ACNN-para"}
    for scores in result.scores.values():
        assert set(scores) == set(METRIC_NAMES)

    rendered = result.render()
    orderings = result.ordering_holds()
    rendered += "\n\norderings: " + ", ".join(f"{k}={v}" for k, v in orderings.items())
    write_result(results_dir, f"table1_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)

    if bench_scale.name == "default":
        # The paper's qualitative claims must hold at the recorded scale.
        assert orderings["acnn_sent_beats_du_sent"]
        assert orderings["acnn_para_beats_du_para"]
        assert orderings["attention_beats_seq2seq"]
