"""Ablation benchmark: the adaptive switch gate vs frozen mixtures.

DESIGN.md calls out the data-adaptive gate (Eq. 4) as the paper's central
design choice; this bench trains ACNN-sent with the learned gate and with z
frozen to 0 / 0.5 / 1 and renders the comparison. At the default scale the
adaptive gate must match or beat every frozen variant on BLEU-4.
"""

from conftest import write_result

from repro.experiments.ablations import SWITCH_VARIANTS, run_switch_ablation


def test_switch_ablation(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_switch_ablation(bench_scale), rounds=1, iterations=1
    )

    assert set(result.scores) == {label for label, _ in SWITCH_VARIANTS}
    rendered = result.render()
    rendered += f"\n\nadaptive_wins: {result.adaptive_wins()}"
    write_result(results_dir, f"ablation_switch_{bench_scale.name}.txt", rendered)
    print("\n" + rendered)

    if bench_scale.name == "default":
        assert result.adaptive_wins()
