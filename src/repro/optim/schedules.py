"""Learning-rate schedules.

The paper: "We used stochastic gradient descent (SGD) ... with initial
learning rate α = 1.0 and halve it when at epoch 8."
:class:`HalveAtEpoch` implements exactly that rule; :class:`DecayAfterEpoch`
generalizes it to OpenNMT's decay-every-epoch-after-a-threshold behaviour.
"""

from __future__ import annotations

from repro.optim.optimizers import Optimizer

__all__ = ["Schedule", "ConstantSchedule", "HalveAtEpoch", "DecayAfterEpoch"]


class Schedule:
    """Base schedule: maps an epoch number onto the optimizer's lr."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def lr_for_epoch(self, epoch: int) -> float:
        raise NotImplementedError

    def apply(self, epoch: int) -> float:
        """Set and return the learning rate for ``epoch`` (1-based)."""
        if epoch < 1:
            raise ValueError(f"epochs are 1-based, got {epoch}")
        lr = self.lr_for_epoch(epoch)
        self.optimizer.lr = lr
        return lr

    # ------------------------------------------------------------------
    # Persistence (consumed by the fault-tolerant training runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able state; ``base_lr`` is mutated by divergence recovery."""
        return {"base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        self.base_lr = float(state["base_lr"])


class ConstantSchedule(Schedule):
    """No decay."""

    def lr_for_epoch(self, epoch: int) -> float:
        return self.base_lr


class HalveAtEpoch(Schedule):
    """The paper's rule: lr is halved once, starting at ``halve_epoch``."""

    def __init__(self, optimizer: Optimizer, halve_epoch: int = 8) -> None:
        super().__init__(optimizer)
        if halve_epoch < 1:
            raise ValueError(f"halve_epoch must be >= 1, got {halve_epoch}")
        self.halve_epoch = halve_epoch

    def lr_for_epoch(self, epoch: int) -> float:
        return self.base_lr * (0.5 if epoch >= self.halve_epoch else 1.0)


class DecayAfterEpoch(Schedule):
    """Multiply lr by ``decay`` on every epoch from ``start_epoch`` onward.

    ``DecayAfterEpoch(opt, decay=0.5, start_epoch=8)`` reproduces OpenNMT's
    classic ``-learning_rate_decay 0.5 -start_decay_at 8``.
    """

    def __init__(self, optimizer: Optimizer, decay: float = 0.5, start_epoch: int = 8) -> None:
        super().__init__(optimizer)
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if start_epoch < 1:
            raise ValueError(f"start_epoch must be >= 1, got {start_epoch}")
        self.decay = decay
        self.start_epoch = start_epoch

    def lr_for_epoch(self, epoch: int) -> float:
        exponent = max(0, epoch - self.start_epoch + 1)
        return self.base_lr * (self.decay ** exponent)
