"""Gradient clipping.

Recurrent models trained with SGD at lr=1.0 (the paper's setting) explode
without clipping; OpenNMT's default global-norm clip is reproduced here.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["clip_grad_norm", "grad_norm", "NonFiniteGradError"]


class NonFiniteGradError(ArithmeticError):
    """The global gradient norm is NaN/inf, so clipping cannot rescale.

    A non-finite norm means at least one gradient element overflowed or
    went NaN upstream. Silently returning the NaN norm (the historical
    behavior) let the comparison ``norm > max_norm`` evaluate False, so
    the poisoned gradients were applied to the parameters *unclipped* —
    one bad batch corrupted the weights. Callers choose a policy via
    ``on_nonfinite``; the trainer maps its overflow policy onto it.
    """

    def __init__(self, norm: float, parameter_names: list[str] | None = None):
        names = f" (first offenders: {', '.join(parameter_names)})" if parameter_names else ""
        super().__init__(f"gradient norm is {norm}{names}")
        self.norm = norm
        self.parameter_names = parameter_names or []


def grad_norm(parameters: Sequence[Parameter]) -> float:
    """Global L2 norm over all parameter gradients (missing grads count 0)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad * param.grad).sum())
    return float(np.sqrt(total))  # numerics: ok — sum of squares is >= 0


def _nonfinite_parameter_names(parameters: Sequence[Parameter], limit: int = 3) -> list[str]:
    names = []
    for index, param in enumerate(parameters):
        if param.grad is not None and not np.isfinite(param.grad).all():
            names.append(getattr(param, "name", None) or f"parameter[{index}]")
            if len(names) >= limit:
                break
    return names


def clip_grad_norm(
    parameters: Sequence[Parameter],
    max_norm: float,
    on_nonfinite: str = "raise",
) -> float:
    """Rescale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clipping norm, which the trainer logs.

    Parameters
    ----------
    on_nonfinite:
        What to do when the global norm is NaN/inf:

        - ``"raise"`` (default): raise :class:`NonFiniteGradError` naming the
          first offending parameters. The gradients are left untouched so the
          caller can inspect or quarantine them.
        - ``"zero"``: zero every gradient in place and return ``inf`` —
          the subsequent optimizer step becomes a no-op.
        - ``"propagate"``: legacy behavior — return the non-finite norm and
          leave the gradients unclipped. Only for callers that check the
          returned norm themselves.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    if on_nonfinite not in ("raise", "zero", "propagate"):
        raise ValueError(
            f"on_nonfinite must be 'raise', 'zero', or 'propagate', got {on_nonfinite!r}"
        )
    norm = grad_norm(parameters)
    if not math.isfinite(norm):
        if on_nonfinite == "raise":
            raise NonFiniteGradError(norm, _nonfinite_parameter_names(parameters))
        if on_nonfinite == "zero":
            for param in parameters:
                if param.grad is not None:
                    param.grad[...] = 0.0
            return float("inf")
        return norm
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm
