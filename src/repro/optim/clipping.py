"""Gradient clipping.

Recurrent models trained with SGD at lr=1.0 (the paper's setting) explode
without clipping; OpenNMT's default global-norm clip is reproduced here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["clip_grad_norm", "grad_norm"]


def grad_norm(parameters: Sequence[Parameter]) -> float:
    """Global L2 norm over all parameter gradients (missing grads count 0)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad * param.grad).sum())
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clipping norm, which the trainer logs.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = grad_norm(parameters)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm
