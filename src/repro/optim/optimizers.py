"""Optimizers.

The paper trains with plain SGD at initial learning rate 1.0; Adam is
provided as an extension for the ablation harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence (consumed by the fault-tolerant training runtime)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Resumable state: ``scalars`` (JSON-able) and ``arrays`` (by name)."""
        return {"scalars": {"lr": self.lr}, "arrays": {}}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        Raises :class:`ValueError` if the stored arrays do not match this
        optimizer's parameters (count or shape), so resuming with the wrong
        model/optimizer pairing fails loudly.
        """
        self.lr = float(state["scalars"]["lr"])
        self._load_state_arrays(state.get("arrays", {}))

    def _load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        if arrays:
            raise ValueError(
                f"{type(self).__name__} carries no array state but the "
                f"snapshot holds {sorted(arrays)}"
            )

    @staticmethod
    def _restore_slot(
        slot: list[np.ndarray], arrays: dict[str, np.ndarray], prefix: str
    ) -> None:
        """Fill ``slot`` in place from ``arrays['<prefix>.<i>']`` entries."""
        expected = {f"{prefix}.{i}" for i in range(len(slot))}
        present = {name for name in arrays if name.startswith(prefix + ".")}
        if expected != present:
            raise ValueError(
                f"optimizer state mismatch for {prefix!r}: expected "
                f"{len(expected)} arrays, snapshot holds {len(present)}"
            )
        for index in range(len(slot)):
            value = np.asarray(arrays[f"{prefix}.{index}"])
            if value.shape != slot[index].shape:
                raise ValueError(
                    f"optimizer state shape mismatch for {prefix}.{index}: "
                    f"snapshot {value.shape} vs current {slot[index].shape}"
                )
            slot[index] = value.copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum.

    The paper's configuration is ``SGD(lr=1.0)`` with the rate halved at
    epoch 8 (see :mod:`repro.optim.schedules`).
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters] if momentum else None

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            update = param.grad
            if self._velocity is not None:
                self._velocity[index] = self.momentum * self._velocity[index] + update
                update = self._velocity[index]
            param.data -= self.lr * update

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["scalars"]["momentum"] = self.momentum
        if self._velocity is not None:
            state["arrays"] = {
                f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)
            }
        return state

    def _load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        if self._velocity is None:
            super()._load_state_arrays(arrays)
            return
        self._restore_slot(self._velocity, arrays, "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015); extension beyond the paper's SGD setup."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[index] / bias1  # numerics: ok — bias1 = 1 - beta1**t > 0
            v_hat = self._v[index] / bias2  # numerics: ok — bias2 = 1 - beta2**t > 0
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)  # numerics: ok — Adam denominator carries +eps; sqrt of v >= 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["scalars"]["step_count"] = self._step_count
        state["arrays"] = {
            **{f"m.{i}": m.copy() for i, m in enumerate(self._m)},
            **{f"v.{i}": v.copy() for i, v in enumerate(self._v)},
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["scalars"].get("step_count", 0))

    def _load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        self._restore_slot(self._m, {k: v for k, v in arrays.items() if k.startswith("m.")}, "m")
        self._restore_slot(self._v, {k: v for k, v in arrays.items() if k.startswith("v.")}, "v")
