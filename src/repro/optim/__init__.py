"""Optimization: SGD/Adam, gradient clipping, learning-rate schedules."""

from repro.optim.clipping import NonFiniteGradError, clip_grad_norm, grad_norm
from repro.optim.optimizers import SGD, Adam, Optimizer
from repro.optim.schedules import ConstantSchedule, DecayAfterEpoch, HalveAtEpoch, Schedule

__all__ = [
    "NonFiniteGradError",
    "clip_grad_norm",
    "grad_norm",
    "SGD",
    "Adam",
    "Optimizer",
    "ConstantSchedule",
    "DecayAfterEpoch",
    "HalveAtEpoch",
    "Schedule",
]
