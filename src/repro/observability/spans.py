"""Tracing spans: nested wall-clock timing with a recoverable span tree.

A span is one timed phase (``encode``, ``backward``, ``optimizer_step``,
``evaluate`` …). Spans nest: the tracker keeps an explicit stack, so a span
opened while another is active becomes its child. Each completed span is
reported to a callback (the telemetry hub turns it into a ``span`` event)
carrying its own ``span_id``, its ``parent_id``, and its depth — enough to
rebuild the full tree from the flat JSONL stream with
:func:`build_span_tree`.

Timing uses ``time.perf_counter`` throughout: monotonic, sub-microsecond,
immune to NTP steps — the only clock the repo uses for durations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

__all__ = ["SpanRecord", "SpanTracker", "SpanNode", "build_span_tree", "aggregate_spans"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as reported to the hub."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float
    duration: float
    extra: Mapping | None = None

    def to_payload(self) -> dict:
        payload: dict = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "duration": round(self.duration, 6),
        }
        if self.extra:
            payload.update(self.extra)
        return payload


class SpanTracker:
    """Stack of open spans; assigns ids and reports completions.

    ``span_id`` is assigned at *open* time, so a parent always has a lower
    id than its children even though it completes (and is emitted) after
    them — the tree builder relies on this to sort chronologically.
    """

    def __init__(
        self,
        on_complete: Callable[[SpanRecord], None],
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._on_complete = on_complete
        self._clock = clock
        self._stack: list[tuple[str, int, float, dict]] = []
        self._next_id = 0

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current_name(self) -> str | None:
        return self._stack[-1][0] if self._stack else None

    @contextmanager
    def span(self, name: str, extra: Mapping | None = None):
        """Open a child span of whatever is currently on the stack.

        Yields a mutable dict merged into the span payload on close, so the
        body can attach results measured inside (profile counts, token
        totals) without pre-computing them.
        """
        span_id = self._next_id
        self._next_id += 1
        attachments: dict = dict(extra) if extra else {}
        self._stack.append((name, span_id, self._clock(), attachments))
        try:
            yield attachments
        finally:
            opened_name, opened_id, start, attachments = self._stack.pop()
            parent_id = self._stack[-1][1] if self._stack else None
            self._on_complete(
                SpanRecord(
                    name=opened_name,
                    span_id=opened_id,
                    parent_id=parent_id,
                    depth=len(self._stack),
                    start=start,
                    duration=max(0.0, self._clock() - start),
                    extra=attachments or None,
                )
            )


# ----------------------------------------------------------------------
# Tree reconstruction and aggregation (from flat span events)
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One node of a rebuilt span tree."""

    name: str
    span_id: int
    duration: float
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def child_time(self) -> float:
        return sum(child.duration for child in self.children)

    @property
    def self_time(self) -> float:
        """Time spent in this span outside any child span."""
        return max(0.0, self.duration - self.child_time)

    def render(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.name}  {self.duration * 1000:.1f}ms"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def build_span_tree(spans: Sequence[Mapping]) -> list[SpanNode]:
    """Rebuild the span forest from flat payloads (dicts or events).

    Accepts either raw span payloads (``{span_id, parent_id, name,
    duration}``) or full trace events (``{kind: "span", name, data: {...}}``).
    Returns the root spans in id (chronological-open) order, children
    likewise.
    """
    nodes: dict[int, SpanNode] = {}
    parents: dict[int, int | None] = {}
    for span in spans:
        if "data" in span and isinstance(span["data"], Mapping):
            payload = dict(span["data"])
            payload.setdefault("name", span.get("name", "?"))
        else:
            payload = dict(span)
        span_id = int(payload["span_id"])
        nodes[span_id] = SpanNode(
            name=str(payload.get("name", "?")),
            span_id=span_id,
            duration=float(payload["duration"]),
        )
        parents[span_id] = payload.get("parent_id")
    roots: list[SpanNode] = []
    for span_id in sorted(nodes):
        parent_id = parents[span_id]
        if parent_id is None or parent_id not in nodes:
            roots.append(nodes[span_id])
        else:
            nodes[parent_id].children.append(nodes[span_id])
    for node in nodes.values():
        node.children.sort(key=lambda child: child.span_id)
    return roots


def aggregate_spans(spans: Sequence[Mapping]) -> dict[str, dict[str, float]]:
    """Per-name totals over a flat span stream: count, total and self time.

    ``self`` excludes time attributed to child spans, so summing the
    ``self`` column over every name reproduces (up to clock resolution) the
    root spans' total wall-clock — the property the observability tests pin.
    """
    roots = build_span_tree(spans)
    totals: dict[str, dict[str, float]] = {}

    def visit(node: SpanNode) -> None:
        row = totals.setdefault(node.name, {"count": 0.0, "total": 0.0, "self": 0.0})
        row["count"] += 1
        row["total"] += node.duration
        row["self"] += node.self_time
        for child in node.children:
            visit(child)

    for root in roots:
        visit(root)
    return totals
