"""The telemetry hub: one object every layer reports through.

A :class:`Telemetry` instance owns the event sequence counter, the span
stack, the per-name streaming histograms, and a list of sinks. Emitters
call ``counter`` / ``gauge`` / ``observe`` / ``span`` / ``log``; the hub
stamps each event with a gap-free ``seq``, the perf-counter offset, and the
current training step, and fans it out to every sink.

Instrumented code never checks "is telemetry on?": it reports
unconditionally, and when a run has no telemetry configured the ambient hub
is a :class:`NullTelemetry` whose methods are no-ops — the disabled cost is
a method call per report site (measured < 3% wall-clock on the training
microbenchmark; see ``benchmarks/bench_micro.py``).

The ambient hub is managed with :func:`use_telemetry` (a context manager
pushing onto a stack) and read with :func:`get_telemetry`, so deep call
sites (the batched beam engine, the evaluator) pick up whatever hub the
run installed without threading a parameter through every signature.

Crash-safe resume: the trainer records :meth:`Telemetry.cursor` inside each
run snapshot; on restore it calls :meth:`Telemetry.resume_at`, which
rewinds the JSONL sinks to that cursor (dropping events the replayed
batches will re-emit) and continues the sequence — one continuous stream,
no gaps, no duplicates.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterable, Mapping

from repro.observability.events import (
    TelemetryEvent,
    counter_event,
    gauge_event,
    histogram_event,
    log_event,
    run_event,
    span_event,
)
from repro.observability.histogram import StreamingHistogram
from repro.observability.sinks import JsonlSink, Sink
from repro.observability.spans import SpanRecord, SpanTracker

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "use_telemetry",
]


class Telemetry:
    """Event hub: assigns sequence numbers, fans out to sinks."""

    def __init__(
        self,
        sinks: Iterable[Sink],
        clock: Callable[[], float] = time.perf_counter,
        profile_spans: bool = False,
    ) -> None:
        self.sinks = list(sinks)
        self.enabled = True
        self.profile_spans = profile_spans
        """When true, every span also runs a
        :class:`~repro.tensor.profiler.TapeProfile` and attaches the tape
        node/element counts to its payload (per-span op-level attribution);
        individual spans can override via ``span(..., profile=...)``."""
        self._clock = clock
        self._epoch = clock()
        # Continue an existing stream: JSONL sinks know their last seq.
        self._seq = 1 + max(
            (sink.last_seq for sink in self.sinks if isinstance(sink, JsonlSink)),
            default=-1,
        )
        self.step: int | None = None
        """The ambient training-step clock; events default to it."""
        self._tracker = SpanTracker(self._emit_span, clock=clock)
        # Span ids must stay unique across crash/resume within one trace.
        # Every emitted span has id < its emit seq's upper bound, so seeding
        # the id counter from the continued seq counter guarantees a resumed
        # process never reuses an id that survives in the file.
        self._tracker._next_id = self._seq
        self._histograms: dict[str, StreamingHistogram] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return max(0.0, self._clock() - self._epoch)

    def _emit(self, event: TelemetryEvent) -> None:
        record = event.to_record()
        for sink in self.sinks:
            sink.emit(record)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _resolve_step(self, step: int | None) -> int | None:
        return self.step if step is None else step

    def cursor(self) -> int:
        """The seq the *next* event will carry — the snapshot resume point."""
        return self._seq

    def resume_at(self, cursor: int) -> None:
        """Rewind the stream to ``cursor`` (see module docstring)."""
        cursor = int(cursor)
        for sink in self.sinks:
            if isinstance(sink, JsonlSink):
                sink.truncate_from(cursor)
        self._seq = cursor
        self._tracker._next_id = max(self._tracker._next_id, cursor)

    def state(self) -> dict:
        """Snapshot payload: the cursor plus any open histogram windows.

        The windows are volatile hub state; without them a resume that
        rolls back mid-window would report partial histogram counts, and
        the continuity tests' 'indistinguishable from an uninterrupted
        run' guarantee would not hold.
        """
        return {
            "cursor": self.cursor(),
            "histograms": {
                name: histogram.to_state()
                for name, histogram in sorted(self._histograms.items())
                if histogram.count
            },
        }

    def restore(self, state: Mapping) -> None:
        """Inverse of :meth:`state`: rewind the stream, reinstall windows."""
        self.resume_at(int(state["cursor"]))
        self._histograms = {
            name: StreamingHistogram.from_state(window)
            for name, window in state.get("histograms", {}).items()
        }

    def set_step(self, step: int | None) -> None:
        self.step = step

    # ------------------------------------------------------------------
    # Emitters
    # ------------------------------------------------------------------
    def counter(self, name: str, increment: float = 1.0, step: int | None = None) -> None:
        self._emit(
            counter_event(self._next_seq(), name, self._now(), float(increment), self._resolve_step(step))
        )

    def gauge(self, name: str, value: float, step: int | None = None) -> None:
        self._emit(
            gauge_event(self._next_seq(), name, self._now(), float(value), self._resolve_step(step))
        )

    def throughput(self, name: str, count: float, seconds: float, step: int | None = None) -> None:
        """Gauge ``<name>.per_sec = count / seconds`` (0 when unmeasurable)."""
        rate = float(count) / seconds if seconds > 0 else 0.0  # numerics: ok — seconds > 0 checked inline
        self.gauge(f"{name}.per_sec", rate, step=step)

    def observe(self, name: str, value: float) -> None:
        """Feed a streaming histogram; no event until :meth:`flush_histograms`."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = StreamingHistogram()
        histogram.observe(float(value))

    def flush_histograms(self, step: int | None = None) -> None:
        """Emit one ``histogram`` summary per observed name and reset windows."""
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            if histogram.count == 0:
                continue
            self._emit(
                histogram_event(
                    self._next_seq(), name, self._now(), histogram.summary(), self._resolve_step(step)
                )
            )
        self._histograms.clear()

    def log(self, message: str, step: int | None = None) -> None:
        self._emit(log_event(self._next_seq(), self._now(), message, self._resolve_step(step)))

    def run_marker(self, name: str, **info) -> None:
        """Run lifecycle event (start / resume / finish / interrupt …)."""
        self._emit(run_event(self._next_seq(), name, self._now(), info))

    def _emit_span(self, record: SpanRecord) -> None:
        self._emit(
            span_event(
                self._next_seq(), record.name, self._now(), record.to_payload(), self.step
            )
        )

    @contextmanager
    def span(self, name: str, extra: Mapping | None = None, profile: bool | None = None):
        """Time a phase; nests under any open span.

        Yields a mutable dict merged into the span payload on close.
        ``profile=True`` additionally runs the tape profiler for the span's
        duration and attaches ``tape_nodes`` / ``tape_elements``.
        """
        profile = self.profile_spans if profile is None else profile
        with self._tracker.span(name, extra=extra) as attachments:
            if profile:
                from repro.tensor.profiler import TapeProfile

                with TapeProfile() as tape:
                    yield attachments
                attachments["tape_nodes"] = tape.nodes
                attachments["tape_elements"] = tape.elements
            else:
                yield attachments

    # ------------------------------------------------------------------
    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush pending histogram windows and close every sink."""
        self.flush_histograms()
        for sink in self.sinks:
            sink.flush()
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullTelemetry(Telemetry):
    """The ambient default: every emitter is a no-op.

    Exists so instrumented code reports unconditionally — no ``if tel:``
    at call sites, no branches to keep in sync — while an un-instrumented
    run pays only a cheap method call per report.
    """

    def __init__(self) -> None:
        super().__init__(sinks=())
        self.enabled = False

    def _emit(self, event: TelemetryEvent) -> None:
        pass

    def counter(self, name: str, increment: float = 1.0, step: int | None = None) -> None:
        pass

    def gauge(self, name: str, value: float, step: int | None = None) -> None:
        pass

    def throughput(self, name: str, count: float, seconds: float, step: int | None = None) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def flush_histograms(self, step: int | None = None) -> None:
        pass

    def log(self, message: str, step: int | None = None) -> None:
        pass

    def run_marker(self, name: str, **info) -> None:
        pass

    def restore(self, state: Mapping) -> None:
        pass

    @contextmanager
    def span(self, name: str, extra: Mapping | None = None, profile: bool | None = None):
        yield {}

    def close(self) -> None:
        pass


_AMBIENT: list[Telemetry] = [NullTelemetry()]


def get_telemetry() -> Telemetry:
    """The innermost hub installed by :func:`use_telemetry` (Null when none)."""
    return _AMBIENT[-1]


@contextmanager
def use_telemetry(telemetry: Telemetry | None):
    """Install ``telemetry`` as the ambient hub for the dynamic extent.

    ``None`` is accepted and installs a :class:`NullTelemetry`, so callers
    can pass an optional hub straight through.
    """
    _AMBIENT.append(telemetry if telemetry is not None else NullTelemetry())
    try:
        yield _AMBIENT[-1]
    finally:
        _AMBIENT.pop()
