"""Health monitors: the watchers that turn raw runs into diagnosable ones.

- :func:`nonfinite_sentinel` — fires a ``health.*`` event the moment a loss
  or gradient norm goes NaN/inf, *before* the trainer raises and the
  resilience layer rolls back, so every
  :class:`~repro.training.history.RecoveryEvent` carries a machine-readable
  cause instead of a post-hoc guess.
- :func:`param_norm` — global L2 norm over a parameter list; with the
  per-batch pre-clip grad norm this gives the two curves that explain most
  divergences (paper recipe: SGD at lr=1.0).
- :func:`gate_statistics` — summarizes the paper's Eq. 2/4 switch gate
  ``z_k``: mean, Bernoulli entropy, and hard copy rate, from the raw sums
  the :class:`~repro.models.acnn.ACNN` accumulates during a forward pass.
- :class:`ThroughputMeter` — tokens/sec, hypotheses/sec and friends, timed
  with ``time.perf_counter`` and reported as ``<name>.per_sec`` gauges.
"""

from __future__ import annotations

import math
import os
import time
from typing import Callable, Sequence

import numpy as np

from repro.observability.telemetry import Telemetry

__all__ = [
    "nonfinite_sentinel",
    "param_norm",
    "gate_statistics",
    "emit_gate_statistics",
    "emit_state_transition",
    "scaling_efficiency",
    "process_rss_bytes",
    "emit_worker_pool",
    "ThroughputMeter",
]


def nonfinite_sentinel(
    telemetry: Telemetry,
    name: str,
    value: float,
    step: int | None = None,
    **context,
) -> bool:
    """Report ``value`` under ``health.<name>``; returns its finiteness.

    The non-finite reading itself is the payload (the schema admits
    NaN/inf only under ``health.*``), and a ``log`` event records the
    context so the terminal shows the failure the instant it happens.
    """
    finite = math.isfinite(value)
    if not finite:
        telemetry.gauge(f"health.{name}", float(value), step=step)
        details = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
        telemetry.log(
            f"[health] non-finite {name} ({value}){' ' + details if details else ''}",
            step=step,
        )
    return finite


def param_norm(parameters: Sequence) -> float:
    """Global L2 norm over parameter tensors (``.data`` arrays)."""
    total = 0.0
    for parameter in parameters:
        data = np.asarray(parameter.data)
        total += float((data * data).sum())
    return math.sqrt(total)


def gate_statistics(z_sum: float, entropy_sum: float, copy_sum: float, tokens: int) -> dict:
    """Normalize accumulated switch-gate sums into the reported stats.

    ``z_sum``/``entropy_sum``/``copy_sum`` are sums over non-pad target
    tokens of: the gate value ``z_k``, its Bernoulli entropy
    ``-z ln z - (1-z) ln (1-z)`` (nats), and the hard copy indicator
    ``z_k > 0.5``.
    """
    if tokens <= 0:
        return {"z_mean": 0.0, "z_entropy": 0.0, "copy_rate": 0.0, "tokens": 0}
    return {
        "z_mean": z_sum / tokens,  # numerics: ok — tokens <= 0 returns early above
        "z_entropy": entropy_sum / tokens,  # numerics: ok — tokens <= 0 returns early above
        "copy_rate": copy_sum / tokens,  # numerics: ok — tokens <= 0 returns early above
        "tokens": int(tokens),
    }


def emit_gate_statistics(
    telemetry: Telemetry, prefix: str, stats: dict | None, step: int | None = None
) -> None:
    """Gauge a gate-stats dict under ``<prefix>.z_mean`` etc. (None = no-op)."""
    if not stats or not stats.get("tokens"):
        return
    telemetry.gauge(f"{prefix}.z_mean", stats["z_mean"], step=step)
    telemetry.gauge(f"{prefix}.z_entropy", stats["z_entropy"], step=step)
    telemetry.gauge(f"{prefix}.copy_rate", stats["copy_rate"], step=step)


def emit_state_transition(
    telemetry: Telemetry,
    name: str,
    old: str,
    new: str,
    step: int | None = None,
    **context,
) -> None:
    """Record a state-machine edge: one counter per edge plus a log line.

    Used by watchers whose *transitions* are the signal (the serving
    circuit breaker's closed/open/half-open walk); the counter name
    ``<name>.transition.<old>_to_<new>`` makes each edge individually
    countable from the trace.
    """
    telemetry.counter(f"{name}.transition.{old}_to_{new}", 1.0, step=step)
    details = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
    telemetry.log(
        f"[{name}] {old} -> {new}{' ' + details if details else ''}", step=step
    )


def scaling_efficiency(busy_seconds: float, wall_seconds: float, world_size: int) -> float:
    """Fraction of the pool's wall-clock capacity spent computing.

    ``busy_seconds`` is the sum of per-micro-batch compute time reported by
    the workers; capacity is ``wall_seconds * world_size``. 1.0 means every
    worker computed the whole time (perfect scaling); the gap is dispatch,
    IPC, reduction, and supervision overhead. Degenerate windows (no wall
    time, empty pool) report 0.0 rather than dividing by zero.
    """
    capacity = wall_seconds * world_size
    if capacity <= 0.0 or busy_seconds < 0.0:
        return 0.0
    return min(1.0, busy_seconds / capacity)  # numerics: ok — capacity <= 0 returns early


def process_rss_bytes() -> int:
    """Resident-set size of the calling process, in bytes.

    Reads ``/proc/self/statm`` (instantaneous RSS); falls back to
    ``resource.getrusage`` (peak RSS, KiB on Linux) where proc is
    unavailable. Never raises — a platform with neither reports 0 rather
    than breaking a heartbeat path.
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover - exotic platform
        return 0


def emit_worker_pool(
    telemetry: Telemetry,
    prefix: str,
    heartbeat_ages: dict[int, float],
    world_size: int,
    efficiency: float | None = None,
    rss_bytes: dict[int, float] | None = None,
    step: int | None = None,
) -> None:
    """Gauge the elastic pool's health: membership, per-worker heartbeats.

    ``heartbeat_ages`` maps live worker rank → seconds since its last
    heartbeat; the supervisor calls this every step so a stalling worker is
    visible in the trace *before* its timeout fires. ``rss_bytes`` maps
    rank → resident-set size (workers sample :func:`process_rss_bytes` with
    each heartbeat), gauged as ``<prefix>.worker<rank>.rss_mb`` — the
    observable form of the shard store's no-materialization claim.
    """
    telemetry.gauge(f"{prefix}.world_size", float(world_size), step=step)
    for rank, age in sorted(heartbeat_ages.items()):
        telemetry.gauge(f"{prefix}.worker{rank}.heartbeat_age", float(age), step=step)
    if rss_bytes:
        for rank, rss in sorted(rss_bytes.items()):
            telemetry.gauge(
                f"{prefix}.worker{rank}.rss_mb", float(rss) / 1048576.0, step=step
            )
    if efficiency is not None:
        telemetry.gauge(f"{prefix}.scaling_efficiency", float(efficiency), step=step)


class ThroughputMeter:
    """Accumulates a count over a timed window and gauges ``count/sec``.

    Usable as a context manager (one window) or via ``start``/``stop`` for
    windows spanning several code regions. ``add`` is valid only while the
    window is open.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        name: str,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.telemetry = telemetry
        self.name = name
        self._clock = clock
        self.count = 0.0
        self.seconds = 0.0
        self._started: float | None = None

    def start(self) -> "ThroughputMeter":
        self._started = self._clock()
        return self

    def add(self, count: float) -> None:
        if self._started is None:
            raise RuntimeError("ThroughputMeter.add outside an open window")
        self.count += count

    def stop(self, step: int | None = None) -> float:
        """Close the window, gauge the rate, return elapsed seconds."""
        if self._started is None:
            raise RuntimeError("ThroughputMeter.stop without start")
        elapsed = max(0.0, self._clock() - self._started)
        self._started = None
        self.seconds += elapsed
        self.telemetry.throughput(self.name, self.count, self.seconds, step=step)
        return elapsed

    def __enter__(self) -> "ThroughputMeter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.stop()
        else:
            self._started = None
