"""The on-disk telemetry contract: one JSON object per JSONL line.

Kept dependency-free (no jsonschema): the schema is small enough to check
by hand, and validating here means the CI smoke job and the golden-trace
tests agree on exactly one definition of "well-formed trace".

Required fields for every event::

    seq   int >= 0        stream position, gap-free within a trace
    kind  str             one of events.EVENT_KINDS
    name  str             non-empty dotted identifier
    time  float >= 0      seconds since the hub's epoch (perf_counter)

Kind-specific fields::

    counter    value (float, the increment; finite)
    gauge      value (float; NaN/inf allowed ONLY for health.* sentinels,
               which exist to report exactly those values)
    histogram  data {count, sum, min, max, p50, p90, p99}
    span       data {span_id, parent_id, depth, duration, ...}
    log        data {message}
    run        data (free-form mapping)
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterator

from repro.observability.events import EVENT_KINDS

__all__ = ["SchemaViolation", "validate_record", "validate_line", "read_trace"]

_HISTOGRAM_KEYS = {"count", "sum", "min", "max", "p50", "p90", "p99"}
_SPAN_KEYS = {"span_id", "parent_id", "depth", "duration"}


class SchemaViolation(ValueError):
    """A telemetry record does not conform to the event schema."""


def _fail(message: str, record: object) -> None:
    raise SchemaViolation(f"{message}: {json.dumps(record, default=str)[:200]}")


def validate_record(record: object) -> dict:
    """Check one decoded event against the schema; returns it on success."""
    if not isinstance(record, dict):
        _fail("event is not a JSON object", record)
    for key in ("seq", "kind", "name", "time"):
        if key not in record:
            _fail(f"missing required field {key!r}", record)
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        _fail("seq must be a non-negative integer", record)
    if record["kind"] not in EVENT_KINDS:
        _fail(f"unknown kind {record['kind']!r}", record)
    if not isinstance(record["name"], str) or not record["name"]:
        _fail("name must be a non-empty string", record)
    if not isinstance(record["time"], (int, float)) or record["time"] < 0:
        _fail("time must be a non-negative number", record)
    step = record.get("step")
    if step is not None and (not isinstance(step, int) or step < 0):
        _fail("step must be a non-negative integer when present", record)

    kind = record["kind"]
    if kind in ("counter", "gauge"):
        value = record.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"{kind} requires a numeric value", record)
        # Health sentinels exist to report non-finite readings; everything
        # else reporting NaN/inf is a bug in the emitter.
        if not math.isfinite(value) and not record["name"].startswith("health."):
            _fail(f"non-finite {kind} value outside health.*", record)
    elif kind == "histogram":
        data = record.get("data")
        if not isinstance(data, dict) or not _HISTOGRAM_KEYS.issubset(data):
            _fail(f"histogram data must carry {sorted(_HISTOGRAM_KEYS)}", record)
        if data["count"] < 0 or (data["count"] > 0 and data["min"] > data["max"]):
            _fail("inconsistent histogram summary", record)
    elif kind == "span":
        data = record.get("data")
        if not isinstance(data, dict) or not _SPAN_KEYS.issubset(data):
            _fail(f"span data must carry {sorted(_SPAN_KEYS)}", record)
        if data["duration"] < 0 or data["depth"] < 0:
            _fail("span duration/depth must be non-negative", record)
    elif kind == "log":
        data = record.get("data")
        if not isinstance(data, dict) or not isinstance(data.get("message"), str):
            _fail("log data must carry a string message", record)
    elif kind == "run":
        if not isinstance(record.get("data"), dict):
            _fail("run data must be an object", record)
    return record


def validate_line(line: str) -> dict:
    """Decode and validate one JSONL line."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SchemaViolation(f"undecodable trace line: {exc}: {line[:120]!r}") from exc
    return validate_record(record)


def read_trace(path: str | os.PathLike, strict: bool = True) -> Iterator[dict]:
    """Yield validated events from a trace file, in stream order.

    A torn final line (the process died mid-append) is skipped when
    ``strict`` is false — that is the expected crash artifact the resume
    path repairs; any *earlier* malformed line is always an error.
    """
    with open(os.fspath(path), encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            yield validate_line(line)
        except SchemaViolation:
            if not strict and index == len(lines) - 1:
                return
            raise
