"""Streaming histograms with bounded memory and deterministic quantiles.

Per-batch timings and token counts arrive one value at a time and a run can
produce millions of them, so the estimator must be O(1) amortized per
observation with a hard memory cap — and it must be *deterministic* (no
RNG) so two identical runs produce byte-identical summaries, which the
golden-trace tests rely on.

The scheme: keep every value until ``max_samples``, then halve the sample
by keeping alternate elements of the *sorted* sample and doubling the
per-element weight. Exact until the cap is hit, a systematic (not random)
stratified sample afterwards. Exact ``count``/``sum``/``min``/``max`` are
tracked separately and are never approximated.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["StreamingHistogram"]


class StreamingHistogram:
    """Order-insensitive summary of a scalar stream.

    Invariants (property-tested):

    - ``count`` equals the number of ``observe`` calls, exactly;
    - ``quantile`` is monotone in ``q`` and bounded by ``min``/``max``;
    - merging two histograms conserves counts and sums exactly.
    """

    def __init__(self, max_samples: int = 512) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sample: list[float] = []
        self._weight = 1  # observations represented by each retained sample

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram observations must be finite, got {value}")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self.count % self._weight == 0:
            # Systematic thinning: once compressed to weight w, keep every
            # w-th arrival. Deterministic and order-stable for identical
            # streams.
            self._sample.append(value)
            if len(self._sample) > self.max_samples:
                self._compress()

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def _compress(self) -> None:
        self._sample.sort()
        self._sample = self._sample[::2]
        self._weight *= 2

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the retained sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("empty histogram has no quantiles")
        ordered = sorted(self._sample) if self._sample else [self.min]
        position = q * (len(ordered) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            estimate = ordered[low]
        else:
            fraction = position - low
            # lerp in the a + (b - a) * f form, clamped into its own segment:
            # rounding can then never push neighbouring quantiles out of order.
            estimate = ordered[low] + (ordered[high] - ordered[low]) * fraction
            estimate = min(max(estimate, ordered[low]), ordered[high])
        # The sample can under-cover the extremes after thinning; the exact
        # tracked bounds always win.
        return min(max(estimate, self.min), self.max)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("empty histogram has no mean")
        return self.total / self.count  # numerics: ok — count == 0 raises above

    # ------------------------------------------------------------------
    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Combine two histograms (exact count/sum/min/max, merged samples)."""
        merged = StreamingHistogram(max_samples=max(self.max_samples, other.max_samples))
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        merged._weight = max(self._weight, other._weight)
        merged._sample = sorted(self._sample + other._sample)
        while len(merged._sample) > merged.max_samples:
            merged._compress()
        return merged

    def summary(self) -> dict[str, float]:
        """The JSONL ``histogram`` event payload."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min,
            "max": self.max,
            "p50": round(self.quantile(0.5), 9),
            "p90": round(self.quantile(0.9), 9),
            "p99": round(self.quantile(0.99), 9),
        }

    @classmethod
    def of(cls, values: Sequence[float], max_samples: int = 512) -> "StreamingHistogram":
        histogram = cls(max_samples=max_samples)
        histogram.observe_many(values)
        return histogram

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-able full state (for run snapshots).

        Unlike :meth:`summary` this loses nothing: restoring it continues
        the window exactly where it stood, including the systematic
        thinning phase (``count`` mod ``weight``), so a crash/resume cycle
        mid-window reproduces the summaries of an uninterrupted run.
        """
        return {
            "max_samples": self.max_samples,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "sample": list(self._sample),
            "weight": self._weight,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingHistogram":
        histogram = cls(max_samples=int(state["max_samples"]))
        histogram.count = int(state["count"])
        histogram.total = float(state["total"])
        if histogram.count:
            histogram.min = float(state["min"])
            histogram.max = float(state["max"])
        histogram._sample = [float(value) for value in state["sample"]]
        histogram._weight = int(state["weight"])
        return histogram
