"""Typed telemetry event records.

Every fact a run reports — a counter increment, a gauge reading, a
histogram summary, a completed tracing span, a human log line, a run
lifecycle marker — is one :class:`TelemetryEvent`. Events are immutable,
carry a process-wide monotonically increasing sequence number (``seq``)
assigned by the :class:`~repro.observability.telemetry.Telemetry` hub, and
serialize to a single JSON object per line in the trace stream (see
:mod:`repro.observability.schema` for the on-disk contract).

The ``seq`` number is the continuity invariant the whole layer is built
around: a healthy trace is ``0, 1, 2, …`` with no gaps, no duplicates, and
no regressions — including across a crash-and-resume boundary, because the
trainer records the telemetry cursor in every snapshot and the hub rewinds
the stream to it on restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "EVENT_KINDS",
    "TelemetryEvent",
    "counter_event",
    "gauge_event",
    "histogram_event",
    "span_event",
    "log_event",
    "run_event",
]

EVENT_KINDS = ("counter", "gauge", "histogram", "span", "log", "run")
"""The closed set of event kinds the schema admits."""


@dataclass(frozen=True)
class TelemetryEvent:
    """One line of the telemetry stream.

    Parameters
    ----------
    seq:
        Stream position, assigned by the hub (0-based, gap-free).
    kind:
        One of :data:`EVENT_KINDS`.
    name:
        Dotted metric/span name, e.g. ``"train.loss"`` or ``"decode.batch"``.
    step:
        Optional global training step (optimization count) the event is
        anchored to; ``None`` for events outside the step clock.
    time:
        Wall-clock offset in seconds since the hub's epoch
        (``time.perf_counter`` based — monotonic, never steps backwards).
    value:
        Scalar payload for counters (the increment) and gauges (the
        reading); ``None`` for the other kinds.
    data:
        Kind-specific structured payload (histogram summary, span timing,
        log message, run metadata).
    """

    seq: int
    kind: str
    name: str
    time: float
    step: int | None = None
    value: float | None = None
    data: Mapping | None = field(default=None)

    def to_record(self) -> dict:
        """Flat JSON-able dict, keys in a fixed, schema-checked shape."""
        record: dict = {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "time": round(float(self.time), 6),
        }
        if self.step is not None:
            record["step"] = int(self.step)
        if self.value is not None:
            record["value"] = float(self.value)
        if self.data is not None:
            record["data"] = dict(self.data)
        return record


def counter_event(seq: int, name: str, time: float, increment: float, step: int | None) -> TelemetryEvent:
    return TelemetryEvent(seq=seq, kind="counter", name=name, time=time, step=step, value=increment)


def gauge_event(seq: int, name: str, time: float, value: float, step: int | None) -> TelemetryEvent:
    return TelemetryEvent(seq=seq, kind="gauge", name=name, time=time, step=step, value=value)


def histogram_event(seq: int, name: str, time: float, summary: Mapping, step: int | None) -> TelemetryEvent:
    return TelemetryEvent(seq=seq, kind="histogram", name=name, time=time, step=step, data=summary)


def span_event(seq: int, name: str, time: float, span: Mapping, step: int | None) -> TelemetryEvent:
    return TelemetryEvent(seq=seq, kind="span", name=name, time=time, step=step, data=span)


def log_event(seq: int, time: float, message: str, step: int | None) -> TelemetryEvent:
    return TelemetryEvent(
        seq=seq, kind="log", name="log", time=time, step=step, data={"message": message}
    )


def run_event(seq: int, name: str, time: float, info: Mapping) -> TelemetryEvent:
    return TelemetryEvent(seq=seq, kind="run", name=name, time=time, data=info)
