"""Run-level observability: structured telemetry, tracing spans, health monitors.

Every run (training, decoding, evaluation) reports through a
:class:`~repro.observability.telemetry.Telemetry` hub: typed events
(counters, gauges, histograms, spans, logs, run markers) appended to a
JSONL trace plus a human terminal summary. See docs/architecture.md,
"Observability & telemetry", for the event schema and span taxonomy.

Quick start::

    from repro.observability import Telemetry, JsonlSink, TerminalSink, use_telemetry

    tel = Telemetry([JsonlSink("runs/trace.jsonl"), TerminalSink()])
    with use_telemetry(tel):
        with tel.span("train"):
            ...
        tel.gauge("train.loss", 1.23, step=7)
    tel.close()
"""

from repro.observability.events import EVENT_KINDS, TelemetryEvent
from repro.observability.histogram import StreamingHistogram
from repro.observability.monitors import (
    ThroughputMeter,
    emit_gate_statistics,
    emit_state_transition,
    emit_worker_pool,
    gate_statistics,
    nonfinite_sentinel,
    param_norm,
    process_rss_bytes,
    scaling_efficiency,
)
from repro.observability.schema import SchemaViolation, read_trace, validate_line, validate_record
from repro.observability.sinks import JsonlSink, MemorySink, Sink, TerminalSink
from repro.observability.spans import (
    SpanNode,
    SpanRecord,
    SpanTracker,
    aggregate_spans,
    build_span_tree,
)
from repro.observability.telemetry import (
    NullTelemetry,
    Telemetry,
    get_telemetry,
    use_telemetry,
)

__all__ = [
    "EVENT_KINDS",
    "TelemetryEvent",
    "StreamingHistogram",
    "ThroughputMeter",
    "emit_gate_statistics",
    "emit_state_transition",
    "gate_statistics",
    "nonfinite_sentinel",
    "param_norm",
    "process_rss_bytes",
    "scaling_efficiency",
    "emit_worker_pool",
    "SchemaViolation",
    "read_trace",
    "validate_line",
    "validate_record",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "TerminalSink",
    "SpanNode",
    "SpanRecord",
    "SpanTracker",
    "aggregate_spans",
    "build_span_tree",
    "NullTelemetry",
    "Telemetry",
    "get_telemetry",
    "use_telemetry",
]
