"""Telemetry sinks: where the event stream goes.

- :class:`JsonlSink` — the durable machine-readable record: one JSON object
  per line, append-only. Appends are flushed per event so a crash loses at
  most the line being written; on (re)open any torn trailing line is cut
  off, and :meth:`JsonlSink.truncate_from` rewinds the stream to a snapshot
  cursor using the repo's atomic-write utilities (temp file + fsync +
  ``os.replace``), so a resumed run appends a gap-free continuation instead
  of a forked tail.
- :class:`TerminalSink` — the human summary: log lines and selected
  readings, one formatted line each, to stdout by default.
- :class:`MemorySink` — in-process capture for tests and inspection.
"""

from __future__ import annotations

import json
import os
import sys
from typing import IO

from repro.tensor.serialization import atomic_write

__all__ = ["Sink", "JsonlSink", "TerminalSink", "MemorySink"]


class Sink:
    """Interface: receives flat event records (dicts) in stream order."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink(Sink):
    """Append-only JSONL trace file with crash-safe resume semantics."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.last_seq = self._repair_tail()
        self._handle: IO[str] | None = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def _read_lines(self) -> list[str]:
        try:
            with open(self.path, encoding="utf-8") as handle:
                content = handle.read()
        except FileNotFoundError:
            return []
        lines = content.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        return lines

    def _repair_tail(self) -> int:
        """Drop a torn trailing line (crash mid-append); return the last seq.

        Only the *final* line may be invalid — that is the one appending
        crash artifact the design admits. Anything malformed earlier means
        the file is not a telemetry trace, and refusing loudly beats
        appending to garbage.
        """
        lines = self._read_lines()
        if not lines:
            return -1
        kept: list[dict] = []
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "seq" not in record:
                    raise ValueError("not an event record")
            except (json.JSONDecodeError, ValueError) as exc:
                if index != len(lines) - 1:
                    raise ValueError(
                        f"corrupt telemetry trace {self.path}: line {index} is not "
                        f"an event record ({exc})"
                    ) from exc
                self._rewrite(kept)
                break
            kept.append(record)
        return int(kept[-1]["seq"]) if kept else -1

    def _rewrite(self, records: list[dict]) -> None:
        payload = "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)
        atomic_write(self.path, lambda handle: handle.write(payload), binary=False)

    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        assert self._handle is not None, "sink is closed"
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Per-line flush: a killed run keeps every completed event, which is
        # what the continuity test (crash → resume → gap-free stream) pins.
        self._handle.flush()
        self.last_seq = int(record["seq"])

    def truncate_from(self, seq: int) -> None:
        """Drop every event with ``seq >= seq`` (resume-to-cursor rewind).

        A snapshot records the hub cursor *c*; events ``>= c`` were emitted
        after the snapshot and will be re-emitted by the replayed batches,
        so keeping them would duplicate the tail.
        """
        if self._handle is not None:
            self._handle.close()
        kept = []
        for line in self._read_lines():
            record = json.loads(line)
            if int(record["seq"]) < seq:
                kept.append(record)
        self._rewrite(kept)
        self.last_seq = int(kept[-1]["seq"]) if kept else -1
        self._handle = open(self.path, "a", encoding="utf-8")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TerminalSink(Sink):
    """Human-readable progress lines (the one place telemetry prints)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def emit(self, record: dict) -> None:
        kind = record["kind"]
        if kind == "log":
            self.stream.write(record["data"]["message"] + "\n")
        elif kind == "run":
            details = " ".join(f"{k}={v}" for k, v in sorted(record["data"].items()))
            self.stream.write(f"[run] {record['name']} {details}".rstrip() + "\n")
        # counters/gauges/histograms/spans stay machine-only: the hub emits
        # explicit log events for anything a human should see live.

    def flush(self) -> None:
        self.stream.flush()


class MemorySink(Sink):
    """Collects records in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def of_kind(self, kind: str) -> list[dict]:
        return [record for record in self.records if record["kind"] == kind]

    def named(self, name: str) -> list[dict]:
        return [record for record in self.records if record["name"] == name]
