"""Deterministic train/dev/test splitting for real corpora.

The synthetic generator produces splits directly; real data loaded from a
single SQuAD JSON needs splitting. Du et al. split by *article* so that no
paragraph leaks across splits; absent article ids we shuffle examples with a
seeded generator and cut by ratio.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.examples import QGExample

__all__ = ["split_examples"]


def split_examples(
    examples: Sequence[QGExample],
    dev_fraction: float = 0.1,
    test_fraction: float = 0.1,
    seed: int = 0,
    shuffle: bool = True,
) -> tuple[list[QGExample], list[QGExample], list[QGExample]]:
    """Split into (train, dev, test) by ratio.

    Parameters
    ----------
    dev_fraction, test_fraction:
        Fractions of the whole corpus; the remainder is training data.
        Must leave a non-empty training split.
    seed, shuffle:
        Shuffling is seeded and on by default; disable it to split
        already-ordered data (e.g. a file that is pre-shuffled).
    """
    if not examples:
        raise ValueError("split_examples needs at least one example")
    if dev_fraction < 0 or test_fraction < 0:
        raise ValueError("split fractions must be non-negative")
    if dev_fraction + test_fraction >= 1.0:
        raise ValueError(
            f"dev+test fractions must leave room for training data, "
            f"got {dev_fraction} + {test_fraction}"
        )

    order = np.arange(len(examples))
    if shuffle:
        np.random.default_rng(seed).shuffle(order)

    num_dev = int(round(len(examples) * dev_fraction))
    num_test = int(round(len(examples) * test_fraction))
    dev_idx = order[:num_dev]
    test_idx = order[num_dev: num_dev + num_test]
    train_idx = order[num_dev + num_test:]
    if len(train_idx) == 0:
        raise ValueError("split produced an empty training set")
    return (
        [examples[i] for i in train_idx],
        [examples[i] for i in dev_idx],
        [examples[i] for i in test_idx],
    )
