"""Crash-safe memory-mapped shard store for question-generation corpora.

The pipeline previously parsed raw JSON/line files into fully materialized
Python lists — once per elastic worker. This module gives the data layer the
same torn-write/checksum discipline as :mod:`repro.tensor.serialization`:

- **Packed binary shards** (``shard-000000.bin``): length-prefixed framed
  records with a per-record CRC32, a fixed-width ``u64`` record index for
  O(1) random access over ``mmap``, and magic-delimited header/footer so a
  truncated or misframed file is detected before a single record is decoded.
- **A manifest as the commit point** (``MANIFEST.json``): per-shard SHA-256
  digests and record counts, published *last* via the existing temp-file +
  fsync + ``os.replace`` idiom. A crash at any instant leaves either the
  previous manifest generation or the new one — never a torn multi-file
  state that silently trains on half a corpus.
- **Resumable ingestion** (:class:`ShardWriter` / :func:`ingest_examples`):
  kill an ingest mid-shard and a re-run discards the unpublished temp files
  and orphan shards, then continues from the last manifest entry —
  bit-identical to an uninterrupted ingest (pinned by test and by
  ``scripts/datastore_smoke.py``).
- **A memory-mapped reader** (:class:`ShardedCorpus`): shards are mapped
  read-only, records decode lazily on access, and forked elastic workers
  share the OS page cache instead of each materializing the corpus. On
  corruption the reader either quarantines with skip-and-count through the
  :class:`~repro.data.squad.LoadReport` /
  :class:`~repro.data.squad.DatasetError` taxonomy (shard path + record
  offset in every error) or fails fast in strict mode.
- **Streaming encoding** (:class:`StreamingQGDataset`): a
  :class:`~repro.data.dataset.QGDataset` that numericalizes examples on
  access instead of materializing ``encoded`` up front, so the training
  loop's memory footprint is bounded by one micro-batch.

Shard file layout (all integers little-endian)::

    +--------------------------------------------------+
    | header:  magic "ACNNSHD1" (8) | version u32 | 0 u32
    +--------------------------------------------------+
    | record 0: payload_len u32 | crc32 u32 | payload  |
    | record 1: ...                                    |
    +--------------------------------------------------+
    | index:   record_count x u64 frame offsets        |
    +--------------------------------------------------+
    | footer:  index_offset u64 | record_count u32     |
    |          | index_crc32 u32 | magic "ACNNEND1" (8)|
    +--------------------------------------------------+

Training from the shard store is byte-identical (losses and final
parameters) to training from in-memory lists at any elastic worker count;
snapshots stamp :attr:`ShardedCorpus.manifest_digest` so resuming against a
silently changed corpus raises :class:`CorpusChangedError` instead of
producing a wrong answer.
"""

from __future__ import annotations

import glob
import hashlib
import json
import mmap
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.dataset import QGDataset
from repro.data.examples import QGExample
from repro.data.squad import DatasetError, LoadReport
from repro.tensor.serialization import atomic_write, file_digest

__all__ = [
    "ShardStoreError",
    "RecordTooLarge",
    "CorpusChangedError",
    "ShardCorrupted",
    "MANIFEST_NAME",
    "encode_record",
    "decode_record",
    "build_shard_bytes",
    "ShardReader",
    "ShardInfo",
    "Manifest",
    "ShardWriter",
    "IngestResult",
    "ingest_examples",
    "ShardedCorpus",
    "CorpusView",
    "split_corpus",
    "StreamingQGDataset",
    "VOCABS_NAME",
    "VocabsMismatchError",
    "vocab_params",
    "save_vocabs",
    "load_vocabs",
]

MANIFEST_NAME = "MANIFEST.json"
"""The commit point: published last, names every shard and its digest."""

_MAGIC_HEADER = b"ACNNSHD1"
_MAGIC_FOOTER = b"ACNNEND1"
_SHARD_VERSION = 1
_MANIFEST_FORMAT = 1
_HEADER = struct.Struct("<8sII")  # magic, version, reserved
_FRAME = struct.Struct("<II")  # payload_len, crc32(payload)
_FOOTER = struct.Struct("<QII8s")  # index_offset, record_count, crc32(index), magic
_SHARD_NAME_RE = re.compile(r"^shard-(\d{6})\.bin$")

DEFAULT_SHARD_RECORDS = 2048
DEFAULT_MAX_RECORD_BYTES = 8 << 20


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class ShardStoreError(RuntimeError):
    """Structural misuse of the store (missing manifest, config mismatch)."""


class RecordTooLarge(ShardStoreError):
    """An example serialized past ``max_record_bytes`` — refuse, don't truncate."""


class CorpusChangedError(ShardStoreError):
    """The corpus behind a manifest digest is not the one a run started on.

    Raised when a training snapshot (or a resumed ingest) is replayed
    against a shard store whose ``MANIFEST.json`` digest no longer matches:
    continuing would silently change the optimization trajectory, so the
    mismatch is a typed rejection instead of a wrong answer.
    """


class ShardCorrupted(DatasetError):
    """A shard or record failed validation, with shard + offset provenance.

    Subclasses :class:`~repro.data.squad.DatasetError` (itself a
    ``ValueError``), so the existing skip-and-count / fail-fast taxonomy of
    the SQuAD loaders applies unchanged; ``offset`` is the record index
    within the shard (or ``None`` for shard-level damage).
    """


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
def encode_record(example: QGExample) -> bytes:
    """Serialize one example to a compact UTF-8 JSON payload.

    The four token tuples are stored as a JSON array so arbitrary Unicode
    tokens round-trip exactly; field order is fixed, making shard bytes a
    pure function of the example stream.
    """
    payload = json.dumps(
        [
            list(example.sentence),
            list(example.paragraph),
            list(example.question),
            list(example.answer),
        ],
        ensure_ascii=False,
        separators=(",", ":"),
    )
    return payload.encode("utf-8")


def decode_record(payload: bytes) -> QGExample:
    """Inverse of :func:`encode_record`; raises ``ValueError`` on bad shape."""
    fields = json.loads(payload.decode("utf-8"))
    if not isinstance(fields, list) or len(fields) != 4:
        raise ValueError("record payload is not a 4-field example")
    sentence, paragraph, question, answer = (
        tuple(str(token) for token in field) for field in fields
    )
    return QGExample(
        sentence=sentence, paragraph=paragraph, question=question, answer=answer
    )


def build_shard_bytes(payloads: Sequence[bytes]) -> bytes:
    """Pack payloads into one shard image (header, frames, index, footer)."""
    parts = [_HEADER.pack(_MAGIC_HEADER, _SHARD_VERSION, 0)]
    offsets: list[int] = []
    position = _HEADER.size
    for payload in payloads:
        offsets.append(position)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        parts.append(frame)
        parts.append(bytes(payload))
        position += _FRAME.size + len(payload)
    index = b"".join(struct.pack("<Q", offset) for offset in offsets)
    parts.append(index)
    parts.append(_FOOTER.pack(position, len(payloads), zlib.crc32(index), _MAGIC_FOOTER))
    return b"".join(parts)


# ----------------------------------------------------------------------
# Shard reader (one memory-mapped file)
# ----------------------------------------------------------------------
class ShardReader:
    """Read-only mmap view of one shard with O(1) record access.

    Construction validates the frame structure end to end (magics, version,
    index bounds, index CRC, record count); every ``payload()`` call
    re-checks the record's own CRC32, so a byte that flips *after* open is
    still caught at access time. All failures raise :class:`ShardCorrupted`
    with the shard path and record offset.
    """

    def __init__(self, path: str | os.PathLike, expected_records: int | None = None) -> None:
        self.path = os.fspath(path)
        size = os.path.getsize(self.path)
        if size < _HEADER.size + _FOOTER.size:
            raise ShardCorrupted(
                self.path, None, f"truncated shard: {size} bytes is below the minimum frame"
            )
        self._file = open(self.path, "rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            self._file.close()
            raise ShardCorrupted(self.path, None, f"cannot mmap shard: {exc}") from exc
        try:
            magic, version, _ = _HEADER.unpack_from(self._mmap, 0)
            if magic != _MAGIC_HEADER:
                raise ShardCorrupted(self.path, None, "bad header magic (not a shard file)")
            if version != _SHARD_VERSION:
                raise ShardCorrupted(self.path, None, f"unsupported shard version {version}")
            index_offset, count, index_crc, footer_magic = _FOOTER.unpack_from(
                self._mmap, size - _FOOTER.size
            )
            if footer_magic != _MAGIC_FOOTER:
                raise ShardCorrupted(
                    self.path, None, "bad footer magic (torn or truncated shard)"
                )
            index_end = size - _FOOTER.size
            if (
                index_offset < _HEADER.size
                or index_offset > index_end
                or index_end - index_offset != 8 * count
            ):
                raise ShardCorrupted(
                    self.path, None,
                    f"index bounds are inconsistent (offset={index_offset}, count={count})",
                )
            index_bytes = self._mmap[index_offset:index_end]
            if zlib.crc32(index_bytes) != index_crc:
                raise ShardCorrupted(self.path, None, "record index failed its CRC32")
            if expected_records is not None and count != expected_records:
                raise ShardCorrupted(
                    self.path, None,
                    f"record count {count} does not match manifest ({expected_records})",
                )
            self.record_count = int(count)
            self._records_end = int(index_offset)
            self._offsets = np.frombuffer(index_bytes, dtype="<u8")
        except BaseException:
            self.close()
            raise

    def payload(self, index: int) -> bytes:
        """Record ``index``'s payload bytes, CRC-verified on every call."""
        if not 0 <= index < self.record_count:
            raise IndexError(f"record {index} out of range [0, {self.record_count})")
        offset = int(self._offsets[index])
        if offset < _HEADER.size or offset + _FRAME.size > self._records_end:
            raise ShardCorrupted(self.path, index, f"record offset {offset} out of bounds")
        length, crc = _FRAME.unpack_from(self._mmap, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > self._records_end:
            raise ShardCorrupted(
                self.path, index, f"record frame overruns the data region ({length} bytes)"
            )
        data = self._mmap[start:end]
        if zlib.crc32(data) != crc:
            raise ShardCorrupted(self.path, index, "record payload failed its CRC32")
        return data

    def crc_ok(self, index: int) -> bool:
        """Non-raising probe used by the quarantine sweep."""
        try:
            self.payload(index)
            return True
        except ShardCorrupted:
            return False

    def example(self, index: int) -> QGExample:
        """Decode record ``index``; decode failures carry provenance too."""
        try:
            return decode_record(self.payload(index))
        except ShardCorrupted:
            raise
        except ValueError as exc:
            raise ShardCorrupted(self.path, index, f"undecodable record: {exc}") from exc

    def close(self) -> None:
        for handle in ("_mmap", "_file"):
            value = getattr(self, handle, None)
            if value is not None:
                try:
                    value.close()
                except OSError:  # pragma: no cover - close is best effort
                    pass
                setattr(self, handle, None)


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardInfo:
    """One published shard as the manifest records it."""

    name: str
    records: int
    bytes: int
    sha256: str


@dataclass(frozen=True)
class Manifest:
    """The store's commit record: what has been durably published.

    ``complete`` flips to True only in the final publish of an ingest, so a
    resumed run can distinguish "mid-ingest manifest, continue appending"
    from "finished corpus, nothing to do".
    """

    shard_records: int
    complete: bool
    shards: tuple[ShardInfo, ...]

    @property
    def total_records(self) -> int:
        return sum(info.records for info in self.shards)

    def to_payload(self) -> dict:
        return {
            "format": _MANIFEST_FORMAT,
            "shard_records": self.shard_records,
            "complete": self.complete,
            "total_records": self.total_records,
            "shards": [
                {
                    "name": info.name,
                    "records": info.records,
                    "bytes": info.bytes,
                    "sha256": info.sha256,
                }
                for info in self.shards
            ],
        }

    @staticmethod
    def path(directory: str | os.PathLike) -> str:
        return os.path.join(os.fspath(directory), MANIFEST_NAME)

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "Manifest":
        """Parse and validate ``MANIFEST.json``.

        Raises :class:`ShardStoreError` when the manifest is absent and
        :class:`ShardCorrupted` (with the manifest path) when it is torn or
        structurally invalid — a torn manifest is never silently trained on.
        """
        location = cls.path(directory)
        if not os.path.exists(location):
            raise ShardStoreError(
                f"no {MANIFEST_NAME} in {os.fspath(directory)!r} — not a shard store "
                "(run `acnn ingest` first)"
            )
        try:
            with open(location, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            raise ShardCorrupted(location, None, f"torn or unreadable manifest: {exc}") from exc
        try:
            if payload["format"] != _MANIFEST_FORMAT:
                raise ShardCorrupted(
                    location, None, f"unsupported manifest format {payload['format']!r}"
                )
            shards = tuple(
                ShardInfo(
                    name=str(entry["name"]),
                    records=int(entry["records"]),
                    bytes=int(entry["bytes"]),
                    sha256=str(entry["sha256"]),
                )
                for entry in payload["shards"]
            )
            manifest = cls(
                shard_records=int(payload["shard_records"]),
                complete=bool(payload["complete"]),
                shards=shards,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardCorrupted(location, None, f"malformed manifest: {exc}") from exc
        for position, info in enumerate(manifest.shards):
            if not _SHARD_NAME_RE.match(info.name) or info.records < 1:
                raise ShardCorrupted(
                    location, position, f"manifest entry {info.name!r} is not a valid shard"
                )
        return manifest

    def save(self, directory: str | os.PathLike) -> str:
        """Atomically publish the manifest; returns its digest."""
        location = self.path(directory)
        text = json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        atomic_write(location, lambda handle: handle.write(text), binary=False)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Writer / resumable ingestion
# ----------------------------------------------------------------------
def _shard_name(index: int) -> str:
    return f"shard-{index:06d}.bin"


def _sweep_stray_files(directory: str, keep_shards: int) -> list[str]:
    """Remove unpublished temp files and orphan shards beyond the manifest.

    A kill between a shard publish and its manifest publish leaves a shard
    file the manifest never committed; a kill mid-``atomic_write`` leaves a
    ``*.tmp.*`` file. Both are discarded so a resumed ingest rebuilds them
    bit-identically. Returns the removed paths (for tests and logs).
    """
    removed: list[str] = []
    for path in glob.glob(os.path.join(directory, "*.tmp.*")):
        os.unlink(path)
        removed.append(path)
    for path in glob.glob(os.path.join(directory, "shard-*.bin")):
        match = _SHARD_NAME_RE.match(os.path.basename(path))
        if match and int(match.group(1)) >= keep_shards:
            os.unlink(path)
            removed.append(path)
    return removed


class ShardWriter:
    """Appends examples and publishes full shards with the manifest as commit.

    Every full buffer becomes one shard published atomically, immediately
    followed by a manifest publish naming it — so after any kill the
    manifest's ``total_records`` is exactly the durable prefix of the input
    stream. ``resume=True`` picks up from an existing (incomplete) manifest:
    the caller must skip :attr:`records_committed` input examples (which
    :func:`ingest_examples` does), and ``shard_records`` must match the
    manifest's or a :class:`ShardStoreError` explains the drift.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        shard_records: int = DEFAULT_SHARD_RECORDS,
        max_record_bytes: int = DEFAULT_MAX_RECORD_BYTES,
        resume: bool = True,
    ) -> None:
        if shard_records < 1:
            raise ValueError(f"shard_records must be >= 1, got {shard_records}")
        if max_record_bytes < 1:
            raise ValueError(f"max_record_bytes must be >= 1, got {max_record_bytes}")
        self.directory = os.fspath(directory)
        self.shard_records = shard_records
        self.max_record_bytes = max_record_bytes
        os.makedirs(self.directory, exist_ok=True)

        self._shards: list[ShardInfo] = []
        if os.path.exists(Manifest.path(self.directory)):
            if not resume:
                for info in Manifest.load(self.directory).shards:
                    try:
                        os.unlink(os.path.join(self.directory, info.name))
                    except FileNotFoundError:
                        pass
                os.unlink(Manifest.path(self.directory))
            else:
                manifest = Manifest.load(self.directory)
                if manifest.complete:
                    raise ShardStoreError(
                        f"{self.directory!r} already holds a complete corpus; "
                        "ingest to a fresh directory or pass resume=False to rebuild"
                    )
                if manifest.shard_records != shard_records:
                    raise ShardStoreError(
                        f"resume shard_records mismatch: manifest has "
                        f"{manifest.shard_records}, configured {shard_records} — "
                        "shard boundaries would drift from the original ingest"
                    )
                self._shards = list(manifest.shards)
        self.swept = _sweep_stray_files(self.directory, len(self._shards))
        self._buffer: list[bytes] = []
        self._finalized = False

    @property
    def records_committed(self) -> int:
        """Durable records (manifest-committed); the resume skip count."""
        return sum(info.records for info in self._shards)

    def append(self, example: QGExample) -> None:
        if self._finalized:
            raise ShardStoreError("writer is finalized; open a new one to append")
        payload = encode_record(example)
        if len(payload) > self.max_record_bytes:
            raise RecordTooLarge(
                f"record {self.records_committed + len(self._buffer)} serializes to "
                f"{len(payload)} bytes (limit {self.max_record_bytes}); refusing to "
                "write a frame the reader would reject"
            )
        self._buffer.append(payload)
        if len(self._buffer) >= self.shard_records:
            self._publish_shard()

    def _publish_shard(self) -> None:
        data = build_shard_bytes(self._buffer)
        name = _shard_name(len(self._shards))
        atomic_write(os.path.join(self.directory, name), lambda handle: handle.write(data))
        self._shards.append(
            ShardInfo(
                name=name,
                records=len(self._buffer),
                bytes=len(data),
                sha256=hashlib.sha256(data).hexdigest(),
            )
        )
        self._buffer.clear()
        self._write_manifest(complete=False)

    def _write_manifest(self, complete: bool) -> str:
        manifest = Manifest(
            shard_records=self.shard_records,
            complete=complete,
            shards=tuple(self._shards),
        )
        return manifest.save(self.directory)

    def finalize(self) -> tuple[Manifest, str]:
        """Flush the partial shard and publish the completing manifest."""
        if self._finalized:
            raise ShardStoreError("writer is already finalized")
        if self._buffer:
            self._publish_shard()
        digest = self._write_manifest(complete=True)
        self._finalized = True
        return (
            Manifest(
                shard_records=self.shard_records,
                complete=True,
                shards=tuple(self._shards),
            ),
            digest,
        )


@dataclass(frozen=True)
class IngestResult:
    """What one :func:`ingest_examples` call did."""

    manifest: Manifest
    digest: str
    """SHA-256 of the published ``MANIFEST.json`` — the corpus identity."""
    ingested: int
    """Records appended by this call (0 when the manifest was already complete)."""
    resumed_from: int
    """Records already durable before this call started."""


def ingest_examples(
    examples: Iterable[QGExample],
    directory: str | os.PathLike,
    shard_records: int = DEFAULT_SHARD_RECORDS,
    max_record_bytes: int = DEFAULT_MAX_RECORD_BYTES,
    resume: bool = True,
) -> IngestResult:
    """Ingest an example stream into ``directory``; resumable and idempotent.

    A re-run over the same stream after a kill continues from the last
    manifest entry and produces bytes identical to an uninterrupted ingest.
    A directory whose manifest is already complete is returned as-is (the
    stream is not consumed), so ingest is safe to re-run unconditionally.
    """
    location = os.fspath(directory)
    if resume and os.path.exists(Manifest.path(location)):
        existing = Manifest.load(location)
        if existing.complete:
            if existing.shard_records != shard_records:
                raise ShardStoreError(
                    f"{location!r} was ingested with shard_records="
                    f"{existing.shard_records}, not {shard_records}"
                )
            return IngestResult(
                manifest=existing,
                digest=file_digest(Manifest.path(location)),
                ingested=0,
                resumed_from=existing.total_records,
            )
    writer = ShardWriter(
        location,
        shard_records=shard_records,
        max_record_bytes=max_record_bytes,
        resume=resume,
    )
    skip = writer.records_committed
    ingested = 0
    for position, example in enumerate(examples):
        if position < skip:
            continue
        writer.append(example)
        ingested += 1
    manifest, digest = writer.finalize()
    return IngestResult(
        manifest=manifest, digest=digest, ingested=ingested, resumed_from=skip
    )


# ----------------------------------------------------------------------
# Sharded corpus reader
# ----------------------------------------------------------------------
class ShardedCorpus(Sequence):
    """Lazy, memory-mapped view of an ingested corpus.

    Construct via :meth:`open`. Indexing decodes one record from the mmap
    (CRC-verified per access); nothing is materialized up front, and forked
    workers share the mapped pages. ``corpus_digest`` identifies the exact
    manifest generation for snapshot stamping.
    """

    def __init__(
        self,
        directory: str,
        manifest: Manifest,
        manifest_digest: str,
        readers: list[ShardReader | None],
        entries: np.ndarray,
        report: LoadReport,
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.manifest_digest = manifest_digest
        self.report = report
        self._readers = readers
        self._entries = entries  # (N, 2) int64: shard index, record index

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike,
        strict: bool = False,
        report: LoadReport | None = None,
        verify: bool = True,
    ) -> "ShardedCorpus":
        """Open a store, validating every shard against the manifest.

        Parameters
        ----------
        strict:
            Fail fast: the first fault raises :class:`ShardCorrupted` with
            shard + record provenance. Default is quarantine mode — damaged
            records (or whole unreadable shards) are skipped and counted
            into ``report``, and the survivors form the corpus.
        report:
            Skip-and-count ledger. One is created when omitted (available
            as ``corpus.report``); pass your own to set
            ``max_skip_fraction`` and get the typed
            :class:`~repro.data.squad.SkipBudgetExceeded` refusal when too
            little of the corpus survives.
        verify:
            Check each shard's SHA-256 against the manifest at open
            (streamed, nothing materialized). With ``False`` only the frame
            structure is validated up front; per-record CRCs still guard
            every access.
        """
        location = os.fspath(directory)
        manifest = Manifest.load(location)
        digest = file_digest(Manifest.path(location))
        if report is None:
            report = LoadReport()
        readers: list[ShardReader | None] = []
        kept: list[tuple[int, int]] = []
        for shard_index, info in enumerate(manifest.shards):
            shard_path = os.path.join(location, info.name)
            try:
                if not os.path.exists(shard_path):
                    raise ShardCorrupted(
                        shard_path, None, "shard named by the manifest is missing"
                    )
                actual_bytes = os.path.getsize(shard_path)
                if actual_bytes != info.bytes:
                    raise ShardCorrupted(
                        shard_path, None,
                        f"shard is {actual_bytes} bytes, manifest records {info.bytes} "
                        "(truncated or appended)",
                    )
                reader = ShardReader(shard_path, expected_records=info.records)
            except ShardCorrupted:
                if strict:
                    raise
                readers.append(None)
                for _ in range(info.records):
                    report.skip("shard_unreadable")
                continue
            digest_ok = (not verify) or file_digest(shard_path) == info.sha256
            if digest_ok:
                readers.append(reader)
                kept.extend((shard_index, j) for j in range(reader.record_count))
                continue
            if strict:
                reader.close()
                raise ShardCorrupted(
                    shard_path, None,
                    f"shard SHA-256 does not match the manifest "
                    f"({info.sha256[:12]}… recorded) — stale checksum or silent corruption",
                )
            # Salvage: the shard digest diverged; keep records whose own CRC
            # still passes, quarantine the rest with their offsets counted.
            bad = [j for j in range(reader.record_count) if not reader.crc_ok(j)]
            if bad:
                readers.append(reader)
                bad_set = set(bad)
                for _ in bad:
                    report.skip("record_crc_mismatch")
                kept.extend(
                    (shard_index, j)
                    for j in range(reader.record_count)
                    if j not in bad_set
                )
            else:
                # Digest drift with every record CRC passing means the
                # damage hides in structure we cannot localize — too
                # suspicious to serve any of it.
                reader.close()
                readers.append(None)
                for _ in range(info.records):
                    report.skip("shard_digest_mismatch")
        entries = (
            np.array(kept, dtype=np.int64)
            if kept
            else np.empty((0, 2), dtype=np.int64)
        )
        report.loaded += len(kept)
        report.enforce(location)
        return cls(location, manifest, digest, readers, entries, report)

    # -- identity ------------------------------------------------------
    @property
    def corpus_digest(self) -> str:
        """Alias for snapshot stamping (see ``ElasticTrainer``)."""
        return self.manifest_digest

    @property
    def quarantined(self) -> int:
        """Records dropped by the open-time sweep."""
        return self.report.skipped

    # -- sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return int(self._entries.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return CorpusView(self, tuple(range(*index.indices(len(self)))))
        position = int(index)
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError(f"corpus index {index} out of range [0, {len(self)})")
        shard_index, record_index = self._entries[position]
        reader = self._readers[int(shard_index)]
        assert reader is not None  # quarantined shards never land in entries
        return reader.example(int(record_index))

    def __iter__(self) -> Iterator[QGExample]:
        for position in range(len(self)):
            yield self[position]

    def close(self) -> None:
        for reader in self._readers:
            if reader is not None:
                reader.close()


class CorpusView(Sequence):
    """Lazy index view over a corpus (or another view) — splits stay lazy."""

    def __init__(self, corpus: Sequence, indices: Sequence[int]) -> None:
        self.corpus = corpus
        self.indices = tuple(int(i) for i in indices)

    @property
    def corpus_digest(self) -> str | None:
        return getattr(self.corpus, "corpus_digest", None)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return CorpusView(self.corpus, self.indices[index])
        return self.corpus[self.indices[index]]

    def __iter__(self):
        for position in self.indices:
            yield self.corpus[position]


def split_corpus(
    corpus: Sequence,
    dev_fraction: float = 0.1,
    test_fraction: float = 0.0,
    seed: int = 0,
) -> tuple[CorpusView, CorpusView, CorpusView]:
    """Lazy (train, dev, test) views, mirroring ``split_examples`` semantics.

    Same seeded shuffle and cut points as
    :func:`~repro.data.splits.split_examples`, but nothing is materialized:
    each split is a :class:`CorpusView` over the shared mmap-backed corpus.
    """
    if not len(corpus):
        raise ValueError("split_corpus needs at least one example")
    if dev_fraction < 0 or test_fraction < 0:
        raise ValueError("split fractions must be non-negative")
    if dev_fraction + test_fraction >= 1.0:
        raise ValueError(
            f"dev+test fractions must leave room for training data, "
            f"got {dev_fraction} + {test_fraction}"
        )
    order = np.arange(len(corpus))
    np.random.default_rng(seed).shuffle(order)
    num_dev = int(round(len(corpus) * dev_fraction))
    num_test = int(round(len(corpus) * test_fraction))
    if len(corpus) - num_dev - num_test <= 0:
        raise ValueError("split produced an empty training set")
    return (
        CorpusView(corpus, order[num_dev + num_test:]),
        CorpusView(corpus, order[:num_dev]),
        CorpusView(corpus, order[num_dev: num_dev + num_test]),
    )


# ----------------------------------------------------------------------
# Streaming (lazily encoded) dataset
# ----------------------------------------------------------------------
class StreamingQGDataset(QGDataset):
    """A :class:`QGDataset` that encodes on access instead of up front.

    Backed by any lazy example sequence (a :class:`ShardedCorpus`, a
    :class:`CorpusView`, or a plain list); ``__getitem__`` runs the same
    ``_encode`` as the eager dataset, so the produced
    :class:`~repro.data.dataset.EncodedExample` objects — and therefore
    every loss and parameter downstream — are byte-identical to the
    materialized path. ``source_lengths`` provides the batch planner's
    length table from the raw tokens in one cheap pass (no vocabulary
    encoding), and ``corpus_digest`` flows through for snapshot stamping.
    """

    def __init__(
        self,
        corpus: Sequence[QGExample],
        encoder_vocab,
        decoder_vocab,
        source_mode: str = "sentence",
        paragraph_length: int = 100,
        max_question_length: int = 30,
    ) -> None:
        self._configure(
            encoder_vocab,
            decoder_vocab,
            source_mode,
            paragraph_length,
            max_question_length,
        )
        self.corpus = corpus
        self._source_lengths: list[int] | None = None

    @property
    def corpus_digest(self) -> str | None:
        return getattr(self.corpus, "corpus_digest", None)

    @property
    def source_lengths(self) -> list[int]:
        if self._source_lengths is None:
            use_paragraph = self.source_mode == "paragraph"
            truncate = self.paragraph_length if use_paragraph else None
            self._source_lengths = [
                len(example.source(use_paragraph, truncate=truncate))
                for example in self.corpus
            ]
        return self._source_lengths

    def __len__(self) -> int:
        return len(self.corpus)

    def __getitem__(self, index: int):
        return self._encode(self.corpus[index])

    def __iter__(self):
        for example in self.corpus:
            yield self._encode(example)

    def copyable_oov_rate(self) -> float:
        oov_copyable = 0
        total = 0
        for encoded in self:
            for allowed, positions in zip(encoded.att_allowed, encoded.copy_positions):
                total += 1
                if not allowed and positions:
                    oov_copyable += 1
        return oov_copyable / total if total else 0.0  # numerics: ok — inline zero-check ternary


# ----------------------------------------------------------------------
# Recorded vocabularies
# ----------------------------------------------------------------------
VOCABS_NAME = "VOCABS.json"
"""Vocabularies built at ingest time, stamped with the manifest digest."""

_VOCABS_FORMAT = 1


class VocabsMismatchError(ShardStoreError):
    """The recorded vocabularies do not belong to this store + parameters.

    Raised when ``VOCABS.json`` was built against a different corpus
    generation (manifest digest drift) or with different construction
    parameters (vocab sizes, source mode, paragraph length) than the
    caller needs: silently reusing them would change every token id
    downstream, so the staleness is a typed rejection instead of a wrong
    model. Re-run ``acnn ingest`` to refresh the record.
    """


def vocab_params(
    encoder_vocab_size: int,
    decoder_vocab_size: int,
    source_mode: str,
    paragraph_length: int,
) -> dict:
    """The construction parameters a vocab record is keyed by.

    Everything that changes the Counter stream or its truncation is in
    here; two calls agreeing on these produce byte-identical vocabularies
    over the same corpus.
    """
    return {
        "encoder_vocab_size": int(encoder_vocab_size),
        "decoder_vocab_size": int(decoder_vocab_size),
        "source_mode": str(source_mode),
        "paragraph_length": int(paragraph_length),
    }


def save_vocabs(
    directory: str | os.PathLike,
    encoder_vocab,
    decoder_vocab,
    manifest_digest: str,
    params: dict,
) -> str:
    """Atomically record built vocabularies next to the manifest.

    The record carries the manifest digest of the corpus the vocabularies
    were counted over, so a later ``load_vocabs`` can prove they still
    describe the store it is looking at.
    """
    location = os.path.join(os.fspath(directory), VOCABS_NAME)
    payload = {
        "format": _VOCABS_FORMAT,
        "manifest_digest": manifest_digest,
        "params": dict(params),
        "encoder_tokens": encoder_vocab.tokens,
        "decoder_tokens": decoder_vocab.tokens,
    }
    text = json.dumps(payload, indent=2, sort_keys=True, ensure_ascii=False) + "\n"
    atomic_write(location, lambda handle: handle.write(text), binary=False)
    return location


def load_vocabs(
    directory: str | os.PathLike,
    manifest_digest: str,
    params: dict,
):
    """Load the vocabularies recorded at ingest time, if they still apply.

    Returns ``(encoder_vocab, decoder_vocab)``, or ``None`` when the store
    has no record (the caller falls back to a streaming re-scan). A record
    that exists but was built over a different corpus generation or with
    different parameters raises :class:`VocabsMismatchError`; a torn or
    malformed record raises :class:`ShardCorrupted` with provenance.
    """
    from repro.data.vocabulary import SPECIAL_TOKENS, Vocabulary

    location = os.path.join(os.fspath(directory), VOCABS_NAME)
    if not os.path.exists(location):
        return None
    try:
        with open(location, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        raise ShardCorrupted(location, None, f"torn or unreadable vocab record: {exc}") from exc
    try:
        fmt = payload["format"]
        recorded_digest = str(payload["manifest_digest"])
        recorded_params = dict(payload["params"])
        encoder_tokens = list(payload["encoder_tokens"])
        decoder_tokens = list(payload["decoder_tokens"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardCorrupted(location, None, f"malformed vocab record: {exc}") from exc
    if fmt != _VOCABS_FORMAT:
        raise ShardCorrupted(location, None, f"unsupported vocab record format {fmt!r}")
    specials = list(SPECIAL_TOKENS)
    for tokens in (encoder_tokens, decoder_tokens):
        if tokens[: len(specials)] != specials:
            raise ShardCorrupted(location, None, "vocab record lost its special tokens")
    if recorded_digest != manifest_digest:
        raise VocabsMismatchError(
            f"{VOCABS_NAME} was built over corpus {recorded_digest[:12]}… but the "
            f"store is now {manifest_digest[:12]}… — re-run `acnn ingest` to refresh it"
        )
    wanted = dict(params)
    if recorded_params != wanted:
        raise VocabsMismatchError(
            f"{VOCABS_NAME} was built with {recorded_params} but this run needs "
            f"{wanted} — re-run `acnn ingest` with matching vocabulary flags"
        )
    return (
        Vocabulary(encoder_tokens[len(specials):]),
        Vocabulary(decoder_tokens[len(specials):]),
    )
