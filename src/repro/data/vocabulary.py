"""Vocabularies with frequency-based truncation.

The paper keeps "the most frequent 45K tokens as the encoder vocabulary and
28K tokens as the decoder vocabulary"; :meth:`Vocabulary.build` reproduces
that construction at any size. Ids 0-3 are reserved for the special tokens.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "Vocabulary",
    "PAD", "UNK", "BOS", "EOS", "SPECIAL_TOKENS",
    "PAD_ID", "UNK_ID", "BOS_ID", "EOS_ID",
]

PAD = "<pad>"
UNK = "<unk>"
BOS = "<s>"
EOS = "</s>"
SPECIAL_TOKENS = (PAD, UNK, BOS, EOS)

# Special ids are fixed by construction (specials are always added first).
PAD_ID = 0
UNK_ID = 1
BOS_ID = 2
EOS_ID = 3


class Vocabulary:
    """Bidirectional token ↔ id mapping with reserved special tokens."""

    def __init__(self, tokens: Sequence[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self._add(token)

    def _add(self, token: str) -> None:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sequences: Iterable[Sequence[str]],
        max_size: int | None = None,
        min_freq: int = 1,
    ) -> "Vocabulary":
        """Build from tokenized sequences, keeping the most frequent tokens.

        Parameters
        ----------
        sequences:
            Iterable of token lists.
        max_size:
            Cap on non-special vocabulary entries (paper: 45K encoder / 28K
            decoder). ``None`` keeps everything above ``min_freq``.
        min_freq:
            Minimum occurrence count to be included.

        Ties in frequency are broken alphabetically so construction is
        deterministic regardless of iteration order.
        """
        counts: Counter[str] = Counter()
        for sequence in sequences:
            counts.update(sequence)
        return cls.from_counts(counts, max_size=max_size, min_freq=min_freq)

    @classmethod
    def from_counts(
        cls,
        counts: Counter[str],
        max_size: int | None = None,
        min_freq: int = 1,
    ) -> "Vocabulary":
        """Build from pre-aggregated token counts.

        The streaming construction seam: callers that cannot afford to
        materialize their corpus (a sharded store, a one-shot generator)
        accumulate a :class:`~collections.Counter` in a single pass and
        finish here. Byte-identical to :meth:`build` on the same tokens —
        the ranked truncation and the alphabetical tie-break live only in
        this method. ``counts`` is not mutated.
        """
        counts = Counter(counts)
        for special in SPECIAL_TOKENS:
            counts.pop(special, None)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        kept = [token for token, count in ranked if count >= min_freq]
        if max_size is not None:
            kept = kept[:max_size]
        return cls(kept)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        """Id of ``token``, or the UNK id if unknown."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def id_to_token(self, index: int) -> str:
        if not 0 <= index < len(self._id_to_token):
            raise IndexError(f"id {index} outside vocabulary of size {len(self)}")
        return self._id_to_token[index]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Map tokens to ids (unknowns become UNK)."""
        return [self.token_to_id(token) for token in tokens]

    def decode(self, ids: Sequence[int], strip_special: bool = True) -> list[str]:
        """Map ids back to tokens, optionally dropping special tokens."""
        tokens = [self.id_to_token(i) for i in ids]
        if strip_special:
            tokens = [t for t in tokens if t not in SPECIAL_TOKENS]
        return tokens

    @property
    def tokens(self) -> list[str]:
        """All tokens in id order (including specials)."""
        return list(self._id_to_token)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the vocabulary as a JSON token list."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self._id_to_token, handle, ensure_ascii=False)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Vocabulary":
        """Read a vocabulary written by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            tokens = json.load(handle)
        if tokens[: len(SPECIAL_TOKENS)] != list(SPECIAL_TOKENS):
            raise ValueError(f"{path} is not a saved vocabulary (bad special tokens)")
        return cls(tokens[len(SPECIAL_TOKENS):])

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
