"""The corpus record type shared by all loaders and generators."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QGExample"]


@dataclass(frozen=True)
class QGExample:
    """One question-generation instance.

    Mirrors the structure of the Du et al. (2017) SQuAD release the paper
    trains on: a tokenized source *sentence*, the tokenized *paragraph* it
    came from (used by the ``-para`` model variants), and the gold
    *question*. ``answer`` is kept when known (real SQuAD and the synthetic
    generator both provide it); the models here do not condition on it, but
    extensions (e.g. Zhou et al.'s answer-position features) can.
    """

    sentence: tuple[str, ...]
    paragraph: tuple[str, ...]
    question: tuple[str, ...]
    answer: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.sentence:
            raise ValueError("QGExample requires a non-empty sentence")
        if not self.question:
            raise ValueError("QGExample requires a non-empty question")
        if not self.paragraph:
            # Sentence-only corpora: the paragraph degenerates to the sentence.
            object.__setattr__(self, "paragraph", self.sentence)

    def source(self, use_paragraph: bool, truncate: int | None = None) -> tuple[str, ...]:
        """The encoder input: sentence or (optionally truncated) paragraph.

        ``truncate`` is the paper's paragraph-length knob (Table 2): the
        paragraph is cut to its first ``truncate`` tokens.
        """
        if not use_paragraph:
            return self.sentence
        if truncate is None:
            return self.paragraph
        if truncate < 1:
            raise ValueError(f"truncate must be >= 1, got {truncate}")
        return self.paragraph[:truncate]
