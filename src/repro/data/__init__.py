"""Data substrate: tokenization, vocabularies, corpora, batching, embeddings."""

from repro.data.analysis import CorpusStatistics, corpus_statistics, vocabulary_coverage
from repro.data.augmentation import augment_examples, rename_entities
from repro.data.batching import (
    Batch,
    BatchIterator,
    collate,
    example_source_lengths,
    plan_batches,
)
from repro.data.dataset import EncodedExample, QGDataset, SourceMode
from repro.data.embeddings import embedding_matrix_for_vocab, load_glove_text, pseudo_glove
from repro.data.examples import QGExample
from repro.data.shardstore import (
    CorpusChangedError,
    CorpusView,
    Manifest,
    ShardCorrupted,
    ShardedCorpus,
    ShardStoreError,
    ShardWriter,
    StreamingQGDataset,
    VocabsMismatchError,
    ingest_examples,
    load_vocabs,
    save_vocabs,
    split_corpus,
    vocab_params,
)
from repro.data.splits import split_examples
from repro.data.squad import (
    DatasetError,
    LoadReport,
    SkipBudgetExceeded,
    load_du_split,
    load_squad_json,
    split_sentences,
)
from repro.data.synthetic import TEMPLATE_NAMES, SyntheticConfig, SyntheticCorpus, generate_corpus
from repro.data.tokenizer import detokenize, tokenize
from repro.data.vocabulary import BOS, EOS, PAD, SPECIAL_TOKENS, UNK, Vocabulary

__all__ = [
    "CorpusStatistics",
    "corpus_statistics",
    "vocabulary_coverage",
    "augment_examples",
    "rename_entities",
    "TEMPLATE_NAMES",
    "Batch",
    "BatchIterator",
    "collate",
    "example_source_lengths",
    "plan_batches",
    "EncodedExample",
    "QGDataset",
    "SourceMode",
    "CorpusChangedError",
    "CorpusView",
    "Manifest",
    "ShardCorrupted",
    "ShardedCorpus",
    "ShardStoreError",
    "ShardWriter",
    "StreamingQGDataset",
    "VocabsMismatchError",
    "ingest_examples",
    "load_vocabs",
    "save_vocabs",
    "split_corpus",
    "vocab_params",
    "embedding_matrix_for_vocab",
    "load_glove_text",
    "pseudo_glove",
    "QGExample",
    "DatasetError",
    "LoadReport",
    "SkipBudgetExceeded",
    "load_du_split",
    "load_squad_json",
    "split_sentences",
    "split_examples",
    "SyntheticConfig",
    "SyntheticCorpus",
    "generate_corpus",
    "detokenize",
    "tokenize",
    "BOS",
    "EOS",
    "PAD",
    "SPECIAL_TOKENS",
    "UNK",
    "Vocabulary",
]
