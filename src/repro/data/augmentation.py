"""Data augmentation by consistent entity renaming.

The copy mechanism's skill is position-based — point at the entity and
reproduce it — so renaming an entity *consistently* across sentence,
paragraph, and question yields a new valid training example that exercises
exactly that skill with a surface form the model has never seen. This is the
"limited annotated data" antidote the paper's introduction motivates.

Only tokens that (a) appear in both the source sentence and the question and
(b) look like content tokens (long or numeric) are renamed, so function
words and question patterns survive untouched.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.examples import QGExample

__all__ = ["rename_entities", "augment_examples"]

_SYLLABLES = [
    "bra", "cli", "dru", "fel", "gor", "hin", "jul", "kra", "lom", "mer",
    "nix", "oru", "pel", "qua", "rin", "sol", "tur", "uvi", "wal", "xen",
]


def _is_content_token(token: str) -> bool:
    return token.isdigit() or len(token) >= 5


def _fresh_name(rng: np.random.Generator, taken: set[str]) -> str:
    while True:
        count = int(rng.integers(2, 4))
        name = "".join(_SYLLABLES[int(rng.integers(len(_SYLLABLES)))] for _ in range(count))
        if name not in taken:
            taken.add(name)
            return name


def rename_entities(example: QGExample, rng: np.random.Generator) -> QGExample:
    """One augmented copy of ``example`` with its shared entities renamed.

    Tokens present in both sentence and question (content tokens only) are
    mapped to fresh synthetic names; digits are remapped to fresh digit
    strings. The mapping is applied consistently to sentence, paragraph,
    question, and answer.
    """
    shared = set(example.sentence) & set(example.question)
    targets = sorted(token for token in shared if _is_content_token(token))
    if not targets:
        return example

    taken = set(example.sentence) | set(example.paragraph) | set(example.question)
    mapping: dict[str, str] = {}
    for token in targets:
        if token.isdigit():
            mapping[token] = str(int(rng.integers(10, 9999)))
        else:
            mapping[token] = _fresh_name(rng, taken)

    def apply(tokens: Sequence[str]) -> tuple[str, ...]:
        return tuple(mapping.get(token, token) for token in tokens)

    return QGExample(
        sentence=apply(example.sentence),
        paragraph=apply(example.paragraph),
        question=apply(example.question),
        answer=apply(example.answer),
    )


def augment_examples(
    examples: Sequence[QGExample],
    factor: int = 1,
    seed: int = 0,
) -> list[QGExample]:
    """Originals plus ``factor`` renamed copies of each example.

    ``factor=1`` doubles the corpus. Renaming is seeded and deterministic.
    """
    if factor < 0:
        raise ValueError(f"factor must be >= 0, got {factor}")
    rng = np.random.default_rng(seed)
    augmented: list[QGExample] = list(examples)
    for _ in range(factor):
        for example in examples:
            augmented.append(rename_entities(example, rng))
    return augmented
