"""Loaders for the real SQuAD data, used when a copy is available on disk.

Two formats are supported:

- :func:`load_squad_json` parses the official SQuAD v1.1 JSON (Rajpurkar et
  al., 2016): for every question it locates the context sentence containing
  the answer span, producing the (sentence, paragraph, question) triples the
  paper trains on.
- :func:`load_du_split` parses the preprocessed line-aligned release of
  Du et al. (2017) — parallel ``src``/``tgt`` (and optionally paragraph)
  files, one tokenized example per line — which is the exact version the
  paper says it used.

Neither file ships with this repository (offline reproduction); the synthetic
corpus in :mod:`repro.data.synthetic` is the default substitute.

Both loaders raise :class:`DatasetError` — a :class:`ValueError` carrying the
offending file and offset — on structural problems, and support a
skip-and-count mode: pass a :class:`LoadReport` to have per-entry defects
counted (with reasons) instead of silently vanishing.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

from repro.data.examples import QGExample
from repro.data.tokenizer import tokenize

__all__ = [
    "DatasetError",
    "SkipBudgetExceeded",
    "LoadReport",
    "load_squad_json",
    "load_du_split",
    "split_sentences",
]


class DatasetError(ValueError):
    """A malformed dataset file, with where-it-broke context.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; carries ``path`` and ``offset`` (a line
    number for line-aligned files, a JSON path string otherwise).
    """

    def __init__(self, path, offset, detail: str) -> None:
        location = f"{path}:{offset}" if offset is not None else str(path)
        super().__init__(f"{location}: {detail}")
        self.path = str(path)
        self.offset = offset
        self.detail = detail


class SkipBudgetExceeded(DatasetError):
    """More of the corpus was skipped than ``max_skip_fraction`` allows.

    Skip-and-count is meant to absorb a handful of defective entries, not to
    quietly train on the survivors of a mostly-destroyed corpus; crossing
    the budget converts silent data loss into this typed refusal.
    """


@dataclass
class LoadReport:
    """Skip-and-count ledger for one loader call.

    Pass an instance to a loader to record what was dropped and why;
    defective entries are skipped rather than aborting the whole load.
    Set ``max_skip_fraction`` to bound how much loss is tolerable: loaders
    (and the shard-store reader) call :meth:`enforce` after counting, and a
    skip fraction above the budget raises :class:`SkipBudgetExceeded`.
    """

    loaded: int = 0
    skipped: int = 0
    skipped_by_reason: dict[str, int] = field(default_factory=dict)
    max_skip_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.max_skip_fraction is not None and not (
            0.0 <= self.max_skip_fraction <= 1.0
        ):
            raise ValueError(
                f"max_skip_fraction must be in [0, 1], got {self.max_skip_fraction}"
            )

    def skip(self, reason: str) -> None:
        self.skipped += 1
        self.skipped_by_reason[reason] = self.skipped_by_reason.get(reason, 0) + 1

    @property
    def skip_fraction(self) -> float:
        """Skipped records as a fraction of everything seen so far."""
        return self.skipped / max(1, self.loaded + self.skipped)

    def enforce(self, path) -> None:
        """Raise :class:`SkipBudgetExceeded` when the skip budget is blown.

        No-op when ``max_skip_fraction`` is unset. ``path`` names the file
        or store directory for the error's provenance.
        """
        if self.max_skip_fraction is None:
            return
        if self.skipped and self.skip_fraction > self.max_skip_fraction:
            raise SkipBudgetExceeded(
                path,
                None,
                f"skipped {self.skipped} of {self.loaded + self.skipped} records "
                f"({self.skip_fraction:.1%} > budget {self.max_skip_fraction:.1%}): "
                f"{self.summary()}",
            )

    def summary(self) -> str:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.skipped_by_reason.items())
        )
        return (
            f"loaded {self.loaded} examples, skipped {self.skipped}"
            + (f" ({reasons})" if reasons else "")
        )

_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?])\s+")


def split_sentences(text: str) -> list[tuple[int, int, str]]:
    """Split text into sentences, returning ``(start_char, end_char, text)``.

    A light heuristic splitter (period/question/exclamation followed by
    whitespace); adequate for locating which sentence contains an answer
    span.
    """
    sentences: list[tuple[int, int, str]] = []
    start = 0
    for match in _SENTENCE_BOUNDARY.finditer(text):
        end = match.start()
        if end > start:
            sentences.append((start, end, text[start:end]))
        start = match.end()
    if start < len(text):
        sentences.append((start, len(text), text[start:]))
    return sentences


def load_squad_json(
    path: str | os.PathLike,
    report: LoadReport | None = None,
) -> list[QGExample]:
    """Parse official SQuAD v1.1 JSON into question-generation examples.

    Each (question, answer) pair becomes one example whose source sentence
    is the context sentence containing the first answer occurrence.
    Questions whose answer span cannot be located are skipped, mirroring the
    preprocessing of Du et al.; pass ``report`` to count every skip with
    its reason. Structural defects (bad JSON, wrong schema shapes) raise
    :class:`DatasetError` pointing at the offending location.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as error:
        raise DatasetError(path, f"line {error.lineno}", f"invalid JSON: {error.msg}") from error
    if not isinstance(payload, dict) or "data" not in payload:
        raise DatasetError(path, None, "does not look like a SQuAD JSON file (no 'data' key)")
    if not isinstance(payload["data"], list):
        raise DatasetError(path, "data", "'data' must be a list of articles")

    examples: list[QGExample] = []
    for article_index, article in enumerate(payload["data"]):
        if not isinstance(article, dict):
            raise DatasetError(path, f"data[{article_index}]", "article is not an object")
        for para_index, paragraph in enumerate(article.get("paragraphs", [])):
            where = f"data[{article_index}].paragraphs[{para_index}]"
            if not isinstance(paragraph, dict):
                raise DatasetError(path, where, "paragraph is not an object")
            context = paragraph.get("context", "")
            if not isinstance(context, str):
                raise DatasetError(path, where, "'context' is not a string")
            sentences = split_sentences(context)
            paragraph_tokens = tuple(tokenize(context))
            for qa_index, qa in enumerate(paragraph.get("qas", [])):
                if not isinstance(qa, dict):
                    raise DatasetError(path, f"{where}.qas[{qa_index}]", "qa entry is not an object")
                answers = qa.get("answers", [])
                if not answers:
                    if report is not None:
                        report.skip("no_answers")
                    continue
                answer = answers[0]
                answer_start = answer.get("answer_start", -1)
                sentence_text = _sentence_containing(sentences, answer_start)
                if sentence_text is None:
                    if report is not None:
                        report.skip("answer_outside_context")
                    continue
                sentence_tokens = tuple(tokenize(sentence_text))
                question_tokens = tuple(tokenize(qa.get("question", "")))
                if not sentence_tokens or not question_tokens:
                    if report is not None:
                        report.skip("empty_after_tokenize")
                    continue
                examples.append(
                    QGExample(
                        sentence=sentence_tokens,
                        paragraph=paragraph_tokens,
                        question=question_tokens,
                        answer=tuple(tokenize(answer.get("text", ""))),
                    )
                )
    if report is not None:
        report.loaded += len(examples)
        report.enforce(path)
    return examples


def _sentence_containing(
    sentences: list[tuple[int, int, str]], char_offset: int
) -> str | None:
    for start, end, text in sentences:
        if start <= char_offset < end:
            return text
    return None


def load_du_split(
    src_path: str | os.PathLike,
    tgt_path: str | os.PathLike,
    para_path: str | os.PathLike | None = None,
    report: LoadReport | None = None,
    strict: bool = False,
) -> list[QGExample]:
    """Load Du et al.'s preprocessed line-aligned files.

    Parameters
    ----------
    src_path, tgt_path:
        Parallel files with one pre-tokenized sentence / question per line.
    para_path:
        Optional third parallel file with the containing paragraphs (used by
        the ``-para`` model variants).
    report:
        Skip-and-count ledger; half-empty pairs are recorded instead of
        vanishing silently.
    strict:
        Raise :class:`DatasetError` (with the 1-based line number) on the
        first half-empty pair instead of skipping it.
    """
    sources = _read_lines(src_path)
    targets = _read_lines(tgt_path)
    if len(sources) != len(targets):
        raise DatasetError(
            src_path,
            len(sources),
            f"line count mismatch: {src_path} has {len(sources)} lines, "
            f"{tgt_path} has {len(targets)}",
        )
    paragraphs: list[str] | None = None
    if para_path is not None:
        paragraphs = _read_lines(para_path)
        if len(paragraphs) != len(sources):
            raise DatasetError(
                para_path,
                len(paragraphs),
                f"line count mismatch: {para_path} has {len(paragraphs)} lines, "
                f"expected {len(sources)}",
            )

    examples: list[QGExample] = []
    for index, (src, tgt) in enumerate(zip(sources, targets)):
        sentence = tuple(src.split())
        question = tuple(tgt.split())
        if not sentence or not question:
            side = src_path if not sentence else tgt_path
            if strict:
                raise DatasetError(side, index + 1, "empty line in aligned pair")
            if report is not None:
                report.skip("empty_source" if not sentence else "empty_question")
            continue
        paragraph = tuple(paragraphs[index].split()) if paragraphs else ()
        examples.append(QGExample(sentence=sentence, paragraph=paragraph, question=question))
    if report is not None:
        report.loaded += len(examples)
        report.enforce(src_path)
    return examples


def _read_lines(path: str | os.PathLike) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle]
