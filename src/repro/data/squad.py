"""Loaders for the real SQuAD data, used when a copy is available on disk.

Two formats are supported:

- :func:`load_squad_json` parses the official SQuAD v1.1 JSON (Rajpurkar et
  al., 2016): for every question it locates the context sentence containing
  the answer span, producing the (sentence, paragraph, question) triples the
  paper trains on.
- :func:`load_du_split` parses the preprocessed line-aligned release of
  Du et al. (2017) — parallel ``src``/``tgt`` (and optionally paragraph)
  files, one tokenized example per line — which is the exact version the
  paper says it used.

Neither file ships with this repository (offline reproduction); the synthetic
corpus in :mod:`repro.data.synthetic` is the default substitute.
"""

from __future__ import annotations

import json
import os
import re

from repro.data.examples import QGExample
from repro.data.tokenizer import tokenize

__all__ = ["load_squad_json", "load_du_split", "split_sentences"]

_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?])\s+")


def split_sentences(text: str) -> list[tuple[int, int, str]]:
    """Split text into sentences, returning ``(start_char, end_char, text)``.

    A light heuristic splitter (period/question/exclamation followed by
    whitespace); adequate for locating which sentence contains an answer
    span.
    """
    sentences: list[tuple[int, int, str]] = []
    start = 0
    for match in _SENTENCE_BOUNDARY.finditer(text):
        end = match.start()
        if end > start:
            sentences.append((start, end, text[start:end]))
        start = match.end()
    if start < len(text):
        sentences.append((start, len(text), text[start:]))
    return sentences


def load_squad_json(path: str | os.PathLike) -> list[QGExample]:
    """Parse official SQuAD v1.1 JSON into question-generation examples.

    Each (question, answer) pair becomes one example whose source sentence
    is the context sentence containing the first answer occurrence.
    Questions whose answer span cannot be located are skipped, mirroring the
    preprocessing of Du et al.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if "data" not in payload:
        raise ValueError(f"{path} does not look like a SQuAD JSON file (no 'data' key)")

    examples: list[QGExample] = []
    for article in payload["data"]:
        for paragraph in article.get("paragraphs", []):
            context = paragraph.get("context", "")
            sentences = split_sentences(context)
            paragraph_tokens = tuple(tokenize(context))
            for qa in paragraph.get("qas", []):
                answers = qa.get("answers", [])
                if not answers:
                    continue
                answer = answers[0]
                answer_start = answer.get("answer_start", -1)
                sentence_text = _sentence_containing(sentences, answer_start)
                if sentence_text is None:
                    continue
                sentence_tokens = tuple(tokenize(sentence_text))
                question_tokens = tuple(tokenize(qa.get("question", "")))
                if not sentence_tokens or not question_tokens:
                    continue
                examples.append(
                    QGExample(
                        sentence=sentence_tokens,
                        paragraph=paragraph_tokens,
                        question=question_tokens,
                        answer=tuple(tokenize(answer.get("text", ""))),
                    )
                )
    return examples


def _sentence_containing(
    sentences: list[tuple[int, int, str]], char_offset: int
) -> str | None:
    for start, end, text in sentences:
        if start <= char_offset < end:
            return text
    return None


def load_du_split(
    src_path: str | os.PathLike,
    tgt_path: str | os.PathLike,
    para_path: str | os.PathLike | None = None,
) -> list[QGExample]:
    """Load Du et al.'s preprocessed line-aligned files.

    Parameters
    ----------
    src_path, tgt_path:
        Parallel files with one pre-tokenized sentence / question per line.
    para_path:
        Optional third parallel file with the containing paragraphs (used by
        the ``-para`` model variants).
    """
    sources = _read_lines(src_path)
    targets = _read_lines(tgt_path)
    if len(sources) != len(targets):
        raise ValueError(
            f"line count mismatch: {src_path} has {len(sources)} lines, "
            f"{tgt_path} has {len(targets)}"
        )
    paragraphs: list[str] | None = None
    if para_path is not None:
        paragraphs = _read_lines(para_path)
        if len(paragraphs) != len(sources):
            raise ValueError(
                f"line count mismatch: {para_path} has {len(paragraphs)} lines, "
                f"expected {len(sources)}"
            )

    examples: list[QGExample] = []
    for index, (src, tgt) in enumerate(zip(sources, targets)):
        sentence = tuple(src.split())
        question = tuple(tgt.split())
        if not sentence or not question:
            continue
        paragraph = tuple(paragraphs[index].split()) if paragraphs else ()
        examples.append(QGExample(sentence=sentence, paragraph=paragraph, question=question))
    return examples


def _read_lines(path: str | os.PathLike) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle]
