"""Word tokenization.

A deterministic regex tokenizer in the style of the PTB/Stanford pipelines
used by Du et al.'s released SQuAD split: lowercased words, numbers kept
whole, punctuation split into its own tokens. Words are any Unicode
letters (``café``, ``straße``, accented names from real SQuAD contexts),
not just ASCII; inputs that are empty, all-whitespace, or all-control
characters tokenize to ``[]`` rather than raising.
"""

from __future__ import annotations

import re

__all__ = ["tokenize", "detokenize"]

_TOKEN_PATTERN = re.compile(
    r"""
    \d+(?:[.,]\d+)*                   # numbers, incl. 1,000 and 3.14
    | [^\W\d_]+(?:'[^\W\d_]+)?        # unicode words, optional clitic ('s, n't)
    | [^\w\s]                         # any single punctuation mark
    """,
    re.VERBOSE,
)

# Punctuation that attaches to the preceding token when detokenizing.
_CLOSE_PUNCT = {".", ",", "?", "!", ";", ":", ")", "]", "}", "'", '"', "%"}
_OPEN_PUNCT = {"(", "[", "{", "$"}


def tokenize(text: str) -> list[str]:
    """Lowercase and split ``text`` into word/number/punctuation tokens.

    >>> tokenize("Who designed the Eiffel Tower, in 1887?")
    ['who', 'designed', 'the', 'eiffel', 'tower', ',', 'in', '1887', '?']
    """
    if not isinstance(text, str):
        raise TypeError(f"tokenize expects a string, got {type(text).__name__}")
    if not text or text.isspace():
        return []
    return _TOKEN_PATTERN.findall(text.lower())


def detokenize(tokens: list[str]) -> str:
    """Join tokens back into a readable string (inverse-ish of tokenize).

    Empty tokens are dropped — they carry no surface text and would
    otherwise produce doubled separators.
    """
    pieces: list[str] = []
    no_space_before_next = False
    for token in tokens:
        if not token:
            continue
        if not pieces or no_space_before_next or token in _CLOSE_PUNCT:
            pieces.append(token)
        else:
            pieces.append(" " + token)
        no_space_before_next = token in _OPEN_PUNCT
    return "".join(pieces)
