"""Corpus statistics.

Quantifies the properties that make question generation hard and copying
useful: length distributions, source/question token overlap, vocabulary
coverage at a given truncation size, and how much of the gold question is
out of reach of a generation-only decoder.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.examples import QGExample
from repro.data.vocabulary import Vocabulary

__all__ = ["CorpusStatistics", "corpus_statistics", "vocabulary_coverage"]


@dataclass(frozen=True)
class CorpusStatistics:
    """Summary numbers for a list of examples."""

    num_examples: int
    mean_sentence_length: float
    mean_paragraph_length: float
    mean_question_length: float
    distinct_source_tokens: int
    distinct_question_tokens: int
    question_source_overlap: float
    """Mean fraction of question tokens that also occur in the sentence —
    the upper bound on what pure copying could produce."""

    def render(self) -> str:
        return "\n".join(
            [
                f"examples:                 {self.num_examples}",
                f"mean sentence length:     {self.mean_sentence_length:.1f}",
                f"mean paragraph length:    {self.mean_paragraph_length:.1f}",
                f"mean question length:     {self.mean_question_length:.1f}",
                f"distinct source tokens:   {self.distinct_source_tokens}",
                f"distinct question tokens: {self.distinct_question_tokens}",
                f"question-source overlap:  {100 * self.question_source_overlap:.1f}%",
            ]
        )


def corpus_statistics(examples: Sequence[QGExample]) -> CorpusStatistics:
    """Compute :class:`CorpusStatistics` over the examples."""
    if not examples:
        raise ValueError("corpus_statistics needs at least one example")
    source_tokens: Counter[str] = Counter()
    question_tokens: Counter[str] = Counter()
    overlaps: list[float] = []
    for example in examples:
        source_tokens.update(example.sentence)
        question_tokens.update(example.question)
        source_set = set(example.sentence)
        overlap = sum(1 for token in example.question if token in source_set)
        overlaps.append(overlap / len(example.question))
    return CorpusStatistics(
        num_examples=len(examples),
        mean_sentence_length=float(np.mean([len(e.sentence) for e in examples])),
        mean_paragraph_length=float(np.mean([len(e.paragraph) for e in examples])),
        mean_question_length=float(np.mean([len(e.question) for e in examples])),
        distinct_source_tokens=len(source_tokens),
        distinct_question_tokens=len(question_tokens),
        question_source_overlap=float(np.mean(overlaps)),
    )


def vocabulary_coverage(
    examples: Sequence[QGExample],
    vocab: Vocabulary,
    side: str = "question",
) -> float:
    """Fraction of running tokens covered by ``vocab``.

    ``side`` selects ``"question"`` or ``"sentence"`` tokens. This is the
    number the paper's 45K/28K truncation trades off: coverage vs softmax
    size. On the synthetic corpus, a small decoder vocabulary covers the
    function words but not the entity tail — the copy mechanism's opening.
    """
    if side not in ("question", "sentence"):
        raise ValueError(f"side must be 'question' or 'sentence', got {side!r}")
    covered = 0
    total = 0
    for example in examples:
        tokens = example.question if side == "question" else example.sentence
        total += len(tokens)
        covered += sum(1 for token in tokens if token in vocab)
    if total == 0:
        raise ValueError("no tokens to measure coverage over")
    return covered / total  # numerics: ok — total == 0 raises above
