"""Dataset: examples encoded against encoder/decoder vocabularies.

Reproduces the paper's asymmetric-vocabulary setup (45K encoder / 28K
decoder tokens) and prepares the supervision signals the copy mechanism
needs:

- which source positions carry each gold question token (``copy_positions``),
- whether the attention/generation path is allowed to explain a token
  (``att_allowed``): gold tokens inside the decoder vocabulary, or gold
  tokens that are unknown *and* uncopyable (those are trained as ``<unk>``,
  since nothing else can produce them),
- the extended-vocabulary ids used at decoding time to surface copied
  out-of-vocabulary words.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.examples import QGExample
from repro.data.vocabulary import Vocabulary

__all__ = ["EncodedExample", "QGDataset", "SourceMode"]


class SourceMode:
    """Encoder input granularity: the paper's ``-sent`` vs ``-para`` variants."""

    SENTENCE = "sentence"
    PARAGRAPH = "paragraph"


@dataclass(frozen=True)
class EncodedExample:
    """One example, numericalized and ready for batching."""

    src_tokens: tuple[str, ...]
    src_ids: tuple[int, ...]
    """Encoder-vocabulary ids of the source."""
    src_ext_ids: tuple[int, ...]
    """Extended-vocabulary ids: decoder-vocab id, or ``V + oov_index``."""
    oov_tokens: tuple[str, ...]
    """Source tokens outside the decoder vocab, in first-occurrence order."""
    tgt_input_ids: tuple[int, ...]
    """Decoder input: BOS + question (decoder vocab, OOV → UNK)."""
    tgt_output_ids: tuple[int, ...]
    """Decoder targets: question + EOS (decoder vocab, OOV → UNK)."""
    copy_positions: tuple[tuple[int, ...], ...]
    """Per target step, the source positions holding the gold token."""
    att_allowed: tuple[bool, ...]
    """Per target step, whether the generation path may explain the token."""
    answer_positions: tuple[int, ...]
    """Source positions covered by the answer span (empty when the span is
    unknown or not present) — the Zhou et al. (2017) answer-feature signal."""
    example: QGExample

    def __post_init__(self) -> None:
        if len(self.tgt_input_ids) != len(self.tgt_output_ids):
            raise ValueError("target input/output lengths differ")
        if len(self.copy_positions) != len(self.tgt_output_ids):
            raise ValueError("copy_positions must align with target steps")


def _find_span(haystack: Sequence[str], needle: Sequence[str]) -> tuple[int, ...]:
    """Positions of the first contiguous occurrence of ``needle`` (or ())."""
    if not needle or len(needle) > len(haystack):
        return ()
    first = needle[0]
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start] == first and tuple(haystack[start: start + len(needle)]) == tuple(needle):
            return tuple(range(start, start + len(needle)))
    return ()


class QGDataset:
    """A split of encoded examples sharing a vocabulary pair.

    Parameters
    ----------
    examples:
        The raw examples of this split.
    encoder_vocab, decoder_vocab:
        Typically built from the *training* split via :meth:`build_vocabs`.
    source_mode:
        ``SourceMode.SENTENCE`` or ``SourceMode.PARAGRAPH``.
    paragraph_length:
        Truncation applied in paragraph mode (the paper's default is 100;
        Table 2 sweeps 100/120/150).
    max_question_length:
        Questions longer than this are clipped (keeps decoding bounded).
    """

    def __init__(
        self,
        examples: Sequence[QGExample],
        encoder_vocab: Vocabulary,
        decoder_vocab: Vocabulary,
        source_mode: str = SourceMode.SENTENCE,
        paragraph_length: int = 100,
        max_question_length: int = 30,
    ) -> None:
        self._configure(
            encoder_vocab, decoder_vocab, source_mode, paragraph_length, max_question_length
        )
        self.encoded: list[EncodedExample] = [self._encode(ex) for ex in examples]

    def _configure(
        self,
        encoder_vocab: Vocabulary,
        decoder_vocab: Vocabulary,
        source_mode: str,
        paragraph_length: int,
        max_question_length: int,
    ) -> None:
        """Validate and pin the encoding configuration.

        Shared between the eager constructor and lazy subclasses (the shard
        store's ``StreamingQGDataset``) so both paths encode identically.
        """
        if source_mode not in (SourceMode.SENTENCE, SourceMode.PARAGRAPH):
            raise ValueError(f"unknown source mode {source_mode!r}")
        self.encoder_vocab = encoder_vocab
        self.decoder_vocab = decoder_vocab
        self.source_mode = source_mode
        self.paragraph_length = paragraph_length
        self.max_question_length = max_question_length

    # ------------------------------------------------------------------
    # Vocabulary construction
    # ------------------------------------------------------------------
    @staticmethod
    def build_vocabs(
        train_examples: Iterable[QGExample],
        encoder_vocab_size: int = 45000,
        decoder_vocab_size: int = 28000,
        source_mode: str = SourceMode.SENTENCE,
        paragraph_length: int = 100,
    ) -> tuple[Vocabulary, Vocabulary]:
        """Frequency-truncated vocabularies from the training split.

        Defaults are the paper's 45K/28K; experiments scale them down along
        with everything else.

        ``train_examples`` may be any iterable — including a one-shot
        generator streaming off a :class:`~repro.data.shardstore.ShardedCorpus`
        — and is consumed in a single pass: only two token Counters are
        held in memory, never a materialized corpus.
        """
        use_paragraph = source_mode == SourceMode.PARAGRAPH
        truncate = paragraph_length if use_paragraph else None
        source_counts: Counter[str] = Counter()
        question_counts: Counter[str] = Counter()
        for example in train_examples:
            source_counts.update(example.source(use_paragraph, truncate=truncate))
            question_counts.update(example.question)
        encoder_vocab = Vocabulary.from_counts(source_counts, max_size=encoder_vocab_size)
        decoder_vocab = Vocabulary.from_counts(question_counts, max_size=decoder_vocab_size)
        return encoder_vocab, decoder_vocab

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode(self, example: QGExample) -> EncodedExample:
        use_paragraph = self.source_mode == SourceMode.PARAGRAPH
        src_tokens = example.source(
            use_paragraph, truncate=self.paragraph_length if use_paragraph else None
        )
        src_ids = tuple(self.encoder_vocab.encode(src_tokens))

        # Extended ids: decoder-vocab id when known, else V + index into the
        # per-example OOV list (first-occurrence order).
        oov_tokens: list[str] = []
        src_ext_ids: list[int] = []
        vocab_size = len(self.decoder_vocab)
        for token in src_tokens:
            if token in self.decoder_vocab:
                src_ext_ids.append(self.decoder_vocab.token_to_id(token))
            else:
                if token not in oov_tokens:
                    oov_tokens.append(token)
                src_ext_ids.append(vocab_size + oov_tokens.index(token))

        question = example.question[: self.max_question_length]
        positions_by_token: dict[str, tuple[int, ...]] = {}
        for position, token in enumerate(src_tokens):
            positions_by_token.setdefault(token, ())
            positions_by_token[token] += (position,)

        tgt_input = [self.decoder_vocab.bos_id]
        tgt_output: list[int] = []
        copy_positions: list[tuple[int, ...]] = []
        att_allowed: list[bool] = []
        for token in question:
            token_id = self.decoder_vocab.token_to_id(token)
            tgt_input.append(token_id)
            in_vocab = token in self.decoder_vocab
            matches = positions_by_token.get(token, ())
            tgt_output.append(token_id)
            copy_positions.append(matches)
            # The generation softmax may explain: known tokens, and unknown
            # tokens that cannot be copied (trained as literal <unk>).
            att_allowed.append(in_vocab or not matches)
        # Close with EOS (always generated, never copied).
        tgt_output.append(self.decoder_vocab.eos_id)
        copy_positions.append(())
        att_allowed.append(True)

        return EncodedExample(
            src_tokens=tuple(src_tokens),
            src_ids=src_ids,
            src_ext_ids=tuple(src_ext_ids),
            oov_tokens=tuple(oov_tokens),
            tgt_input_ids=tuple(tgt_input),
            tgt_output_ids=tuple(tgt_output),
            copy_positions=tuple(copy_positions),
            att_allowed=tuple(att_allowed),
            answer_positions=_find_span(src_tokens, example.answer),
            example=example,
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.encoded)

    def __getitem__(self, index: int) -> EncodedExample:
        return self.encoded[index]

    def __iter__(self):
        return iter(self.encoded)

    def copyable_oov_rate(self) -> float:
        """Fraction of gold question tokens that are decoder-OOV but copyable.

        This is the quantity the copy mechanism exists for; the synthetic
        corpus is tuned so it is substantial (as in real SQuAD).
        """
        oov_copyable = 0
        total = 0
        for encoded in self.encoded:
            for allowed, positions in zip(encoded.att_allowed, encoded.copy_positions):
                total += 1
                if not allowed and positions:
                    oov_copyable += 1
        return oov_copyable / total if total else 0.0  # numerics: ok — inline zero-check ternary
