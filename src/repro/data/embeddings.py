"""Pre-trained word embeddings.

The paper initializes encoder inputs with GloVe vectors (Pennington et al.,
2014). :func:`load_glove_text` reads the standard ``word v1 v2 ...`` text
format when a file is available; :func:`pseudo_glove` is the offline
substitute: deterministic vectors in which tokens sharing a character
trigram are correlated, giving the model the same kind of
better-than-random, similarity-respecting initialization that real GloVe
provides.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.data.vocabulary import SPECIAL_TOKENS, Vocabulary

__all__ = ["load_glove_text", "pseudo_glove", "embedding_matrix_for_vocab"]


def load_glove_text(path: str | os.PathLike, dim: int) -> dict[str, np.ndarray]:
    """Read GloVe's plain-text format into a token → vector dict.

    Lines whose vector length does not match ``dim`` are rejected loudly
    (catching the classic wrong-file mistake).
    """
    vectors: dict[str, np.ndarray] = {}
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parts = line.rstrip().split(" ")
            if len(parts) != dim + 1:
                raise ValueError(
                    f"{path}:{line_number}: expected {dim} dims, got {len(parts) - 1}"
                )
            vectors[parts[0]] = np.asarray(parts[1:], dtype=float)
    return vectors


def _token_seed(token: str) -> int:
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def pseudo_glove(tokens: list[str], dim: int, seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic GloVe stand-in.

    Each token's vector is the normalized sum of hash-seeded Gaussian
    vectors for its character trigrams, so orthographically related tokens
    (shared stems, shared syllables in the synthetic entities) receive
    correlated vectors — structure a downstream model can exploit, like real
    distributional embeddings.
    """
    if dim < 1:
        raise ValueError(f"embedding dim must be >= 1, got {dim}")
    vectors: dict[str, np.ndarray] = {}
    for token in tokens:
        padded = f"^{token}$"
        trigrams = [padded[i: i + 3] for i in range(max(1, len(padded) - 2))]
        total = np.zeros(dim)
        for trigram in trigrams:
            rng = np.random.default_rng(_token_seed(trigram) ^ seed)
            total += rng.standard_normal(dim)
        norm = np.linalg.norm(total)
        vectors[token] = total / norm if norm > 0 else total  # numerics: ok — norm > 0 checked inline
    return vectors


def embedding_matrix_for_vocab(
    vocab: Vocabulary,
    vectors: dict[str, np.ndarray],
    dim: int,
    rng: np.random.Generator,
    scale: float = 0.1,
) -> np.ndarray:
    """Assemble a ``(len(vocab), dim)`` init matrix.

    Tokens present in ``vectors`` get their pre-trained vector (scaled to the
    usual init magnitude); the rest (and the special tokens other than PAD)
    are drawn uniformly; PAD is all-zero.
    """
    matrix = rng.uniform(-scale, scale, size=(len(vocab), dim))
    found = 0
    for index, token in enumerate(vocab.tokens):
        if token in SPECIAL_TOKENS:
            continue
        vector = vectors.get(token)
        if vector is not None:
            if vector.shape != (dim,):
                raise ValueError(
                    f"vector for {token!r} has shape {vector.shape}, expected ({dim},)"
                )
            matrix[index] = vector * scale
            found += 1
    matrix[vocab.pad_id] = 0.0
    return matrix
