"""Deterministic SQuAD-style synthetic corpus.

The paper trains on the Du et al. (2017) SQuAD split (70,484 / 10,570 /
11,877 sentence-question pairs). That dataset cannot be downloaded in this
offline environment, so this module generates a corpus with the same
*structure* and — crucially — the same property that makes the paper's copy
mechanism matter: **questions repeat rare entity tokens from the source
sentence**, and most entities are too rare to enter a frequency-truncated
decoder vocabulary. A model without a copy path must emit ``<unk>`` for
them; the ACNN can point at the source. This is exactly the regime Table 1
probes.

Corpus construction:

- A pool of multi-syllable *entities* (people, cities, countries, companies,
  landmarks, rivers, mountains, teams, books) is sampled from a seeded RNG.
  The pool scales with corpus size, so most entities occur only a handful of
  times (a Zipf-like long tail, as in real SQuAD).
- Each example instantiates one of a dozen factual *templates*
  ("``<person>`` was born in ``<city>`` in ``<year>`` .") and one of its
  associated wh-questions, which copies one or more entity slots.
- Each example also carries a *paragraph*: the fact sentence placed near the
  start, followed by distractor facts and filler sentences, long enough
  (> 150 tokens) that the paper's paragraph-truncation lengths
  100 / 120 / 150 (Table 2) admit increasing amounts of distractor noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.examples import QGExample

__all__ = ["SyntheticConfig", "SyntheticCorpus", "generate_corpus", "TEMPLATE_NAMES"]

_SYLLABLES = [
    "ka", "ri", "mo", "ta", "vel", "zor", "lin", "dra", "fen", "gu",
    "hal", "ix", "jas", "kel", "lum", "mir", "nov", "ost", "pra", "quen",
    "rav", "sil", "tor", "ul", "vin", "wex", "yor", "zan", "bel", "cor",
]

_ENTITY_KINDS = (
    "person", "city", "country", "company", "landmark",
    "river", "mountain", "team", "book",
)

_FILLER_SENTENCES = [
    "the region is known for its mild climate and busy markets .",
    "local historians have documented the period in great detail .",
    "many visitors travel there every year to see the old town .",
    "the surrounding area produces grain , fruit and timber .",
    "several festivals are held in the main square each spring .",
    "trade along the coast grew rapidly during that era .",
    "the community maintains a small museum near the harbour .",
    "scholars disagree about the exact date of the event .",
    "archives from the period remain open to researchers today .",
    "the old railway line still connects the nearby villages .",
    "agriculture remains the main source of income in the valley .",
    "a new bridge replaced the wooden crossing decades later .",
]


@dataclass(frozen=True)
class _Template:
    """A fact pattern plus the wh-questions it supports.

    ``slots`` maps placeholder name → entity kind; ``fact`` and every entry
    of ``questions`` are whitespace-tokenized strings using ``{placeholder}``
    substitution. ``answer_slot`` names the placeholder a QA system would
    extract.
    """

    name: str
    slots: dict[str, str]
    fact: str
    questions: tuple[str, ...]
    answer_slot: str


_TEMPLATES: tuple[_Template, ...] = (
    _Template(
        name="birth",
        slots={"p": "person", "c": "city", "y": "year"},
        fact="{p} was born in {c} in {y} .",
        questions=(
            "where was {p} born ?",
            "in what year was {p} born ?",
        ),
        answer_slot="c",
    ),
    _Template(
        name="design",
        slots={"l": "landmark", "c": "city", "p": "person"},
        fact="the {l} in {c} was designed by {p} .",
        questions=(
            "who designed the {l} ?",
            "in which city was the {l} built ?",
        ),
        answer_slot="p",
    ),
    _Template(
        name="acquisition",
        slots={"a": "company", "b": "company", "m": "amount", "y": "year"},
        fact="{a} acquired {b} for {m} million dollars in {y} .",
        questions=(
            "how much did {a} pay to acquire {b} ?",
            "when did {a} acquire {b} ?",
        ),
        answer_slot="m",
    ),
    _Template(
        name="river",
        slots={"r": "river", "c": "city"},
        fact="the {r} river flows through {c} before reaching the sea .",
        questions=(
            "which city does the {r} river flow through ?",
            "what river flows through {c} ?",
        ),
        answer_slot="c",
    ),
    _Template(
        name="book",
        slots={"b": "book", "p": "person", "y": "year"},
        fact="the novel {b} was written by {p} in {y} .",
        questions=(
            "who wrote the novel {b} ?",
            "when was the novel {b} written ?",
        ),
        answer_slot="p",
    ),
    _Template(
        name="capital",
        slots={"c": "city", "n": "country"},
        fact="{c} is the capital and largest city of {n} .",
        questions=(
            "what is the capital of {n} ?",
            "of which country is {c} the capital ?",
        ),
        answer_slot="c",
    ),
    _Template(
        name="population",
        slots={"c": "city", "m": "amount"},
        fact="{c} has a population of roughly {m} thousand people .",
        questions=(
            "what is the population of {c} ?",
        ),
        answer_slot="m",
    ),
    _Template(
        name="university",
        slots={"c": "city", "p": "person", "y": "year"},
        fact="the university of {c} was founded by {p} in {y} .",
        questions=(
            "who founded the university of {c} ?",
            "when was the university of {c} founded ?",
        ),
        answer_slot="p",
    ),
    _Template(
        name="mountain",
        slots={"m": "mountain", "n": "country"},
        fact="mount {m} is the highest peak in {n} .",
        questions=(
            "what is the highest peak in {n} ?",
            "in which country is mount {m} located ?",
        ),
        answer_slot="m",
    ),
    _Template(
        name="championship",
        slots={"a": "team", "b": "team", "y": "year"},
        fact="{a} won the national championship in {y} after defeating {b} .",
        questions=(
            "who did {a} defeat in the national championship ?",
            "when did {a} win the national championship ?",
        ),
        answer_slot="b",
    ),
    _Template(
        name="museum",
        slots={"l": "landmark", "c": "city", "y": "year"},
        fact="the {l} museum opened to the public in {c} in {y} .",
        questions=(
            "in what year did the {l} museum open ?",
            "where did the {l} museum open ?",
        ),
        answer_slot="y",
    ),
    _Template(
        name="invention",
        slots={"p": "person", "t": "book", "y": "year"},
        fact="{p} patented the {t} process in {y} .",
        questions=(
            "who patented the {t} process ?",
            "what did {p} patent in {y} ?",
        ),
        answer_slot="p",
    ),
)


TEMPLATE_NAMES: tuple[str, ...] = tuple(template.name for template in _TEMPLATES)
"""All fact-template names, in definition order."""


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs for corpus generation.

    Defaults give a corpus trainable on one CPU core in minutes while
    preserving the Du-split 70/15/15-ish ratio and the rare-entity regime.
    """

    num_train: int = 3000
    num_dev: int = 400
    num_test: int = 400
    seed: int = 13
    entities_per_kind: int | None = None
    """Entity pool size per kind; default scales as ``max(24, total // 6)``."""
    min_paragraph_tokens: int = 160
    """Paragraphs are padded with distractors/filler to at least this many tokens."""
    fact_window: int = 90
    """The fact sentence is placed uniformly at random so that it ends within
    the first ``fact_window`` tokens. Every Table 2 truncation window
    (100/120/150) therefore contains the fact, but its position is not
    predictable — so longer windows add pure distractor noise, reproducing
    the paper's paragraph-length effect."""
    template_names: tuple[str, ...] | None = None
    """Restrict generation to these fact templates (see ``TEMPLATE_NAMES``).
    Used by the domain-transfer experiment to build disjoint domains;
    ``None`` uses all templates."""

    @property
    def total(self) -> int:
        return self.num_train + self.num_dev + self.num_test


@dataclass(frozen=True)
class SyntheticCorpus:
    """Train/dev/test splits of generated examples."""

    train: tuple[QGExample, ...]
    dev: tuple[QGExample, ...]
    test: tuple[QGExample, ...]
    config: SyntheticConfig

    def split(self, name: str) -> tuple[QGExample, ...]:
        if name not in ("train", "dev", "test"):
            raise KeyError(f"unknown split {name!r}")
        return getattr(self, name)


class _EntityPool:
    """Seeded pools of made-up entity surface forms, one pool per kind."""

    def __init__(self, per_kind: int, rng: np.random.Generator) -> None:
        self._pools: dict[str, list[str]] = {}
        seen: set[str] = set()
        for kind in _ENTITY_KINDS:
            pool: list[str] = []
            while len(pool) < per_kind:
                count = int(rng.integers(2, 4))
                name = "".join(rng.choice(_SYLLABLES) for _ in range(count))
                if name not in seen:
                    seen.add(name)
                    pool.append(name)
            self._pools[kind] = pool
        self._rng = rng

    def sample(self, kind: str) -> str:
        if kind == "year":
            return str(int(self._rng.integers(1400, 2020)))
        if kind == "amount":
            return str(int(self._rng.integers(2, 980)))
        pool = self._pools[kind]
        # Head/tail mixture: a small frequent head (like "paris"-grade
        # entities) plus a long uniform tail of rare entities. The tail is
        # what keeps most entities out of a truncated decoder vocabulary.
        head = max(1, len(pool) // 16)
        if self._rng.random() < 0.2:
            index = int(self._rng.integers(head))
        else:
            index = int(self._rng.integers(len(pool)))
        return pool[index]


def _fill(template_string: str, values: dict[str, str]) -> tuple[str, ...]:
    return tuple(template_string.format(**values).split())


def _build_paragraph(
    fact: tuple[str, ...],
    distractor_source: Callable[[], tuple[str, ...]],
    rng: np.random.Generator,
    config: SyntheticConfig,
) -> tuple[str, ...]:
    """Embed the fact sentence among distractors and filler.

    The fact is positioned uniformly at random subject to ending within the
    first ``config.fact_window`` tokens, so it survives every truncation
    length the paper sweeps (100/120/150) while its location stays
    unpredictable; everything after it is noise that longer windows
    progressively admit.
    """

    def noise_sentence() -> tuple[str, ...]:
        if rng.random() < 0.5:
            return distractor_source()
        return tuple(_FILLER_SENTENCES[int(rng.integers(len(_FILLER_SENTENCES)))].split())

    max_prefix = max(0, config.fact_window - len(fact))
    target_prefix = int(rng.integers(0, max_prefix + 1))
    sentences: list[tuple[str, ...]] = []
    prefix_len = 0
    while prefix_len < target_prefix:
        extra = noise_sentence()
        if prefix_len + len(extra) > max_prefix:
            break
        sentences.append(extra)
        prefix_len += len(extra)
    sentences.append(fact)

    paragraph_len = prefix_len + len(fact)
    while paragraph_len < config.min_paragraph_tokens:
        extra = noise_sentence()
        sentences.append(extra)
        paragraph_len += len(extra)
    return tuple(token for sentence in sentences for token in sentence)


def generate_corpus(config: SyntheticConfig | None = None) -> SyntheticCorpus:
    """Generate the full corpus described in the module docstring.

    The same ``config`` always yields the identical corpus (all randomness
    comes from one seeded generator).
    """
    config = config or SyntheticConfig()
    rng = np.random.default_rng(config.seed)
    per_kind = config.entities_per_kind or max(24, config.total // 6)
    pool = _EntityPool(per_kind, rng)

    if config.template_names is None:
        templates = _TEMPLATES
    else:
        by_name = {template.name: template for template in _TEMPLATES}
        unknown = set(config.template_names) - set(by_name)
        if unknown:
            raise KeyError(f"unknown template names: {sorted(unknown)}")
        templates = tuple(by_name[name] for name in config.template_names)

    def make_fact() -> tuple[tuple[str, ...], _Template, dict[str, str]]:
        template = templates[int(rng.integers(len(templates)))]
        values = {slot: pool.sample(kind) for slot, kind in template.slots.items()}
        return _fill(template.fact, values), template, values

    def distractor() -> tuple[str, ...]:
        fact, _, _ = make_fact()
        return fact

    examples: list[QGExample] = []
    for _ in range(config.total):
        fact, template, values = make_fact()
        question_pattern = template.questions[int(rng.integers(len(template.questions)))]
        question = _fill(question_pattern, values)
        paragraph = _build_paragraph(fact, distractor, rng, config)
        answer = tuple(values[template.answer_slot].split())
        examples.append(
            QGExample(sentence=fact, paragraph=paragraph, question=question, answer=answer)
        )

    train = tuple(examples[: config.num_train])
    dev = tuple(examples[config.num_train: config.num_train + config.num_dev])
    test = tuple(examples[config.num_train + config.num_dev:])
    return SyntheticCorpus(train=train, dev=dev, test=test, config=config)
