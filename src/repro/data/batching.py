"""Padded mini-batches with copy supervision, plus a bucketing iterator.

The paper trains with mini-batches of 64; :class:`BatchIterator` buckets
examples by source length (standard OpenNMT behaviour) so padding waste
stays low, then shuffles batch order each epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.dataset import EncodedExample

__all__ = ["Batch", "collate", "plan_batches", "example_source_lengths", "BatchIterator"]


def example_source_lengths(examples: Sequence[EncodedExample]) -> list[int]:
    """Source-length table for batch planning, without forcing encoding.

    Lazy datasets (the shard store's ``StreamingQGDataset``) expose a
    ``source_lengths`` attribute computed from raw tokens in one cheap pass;
    eager sequences fall back to measuring each encoded example. Both paths
    return identical values, so batch plans — and therefore training
    trajectories — do not depend on which storage backs the corpus.
    """
    lengths = getattr(examples, "source_lengths", None)
    if lengths is not None:
        return list(lengths)
    return [len(ex.src_ids) for ex in examples]


@dataclass(frozen=True)
class Batch:
    """Numpy arrays for one training/eval step (B = batch, S/T = lengths)."""

    src: np.ndarray
    """(B, S) encoder-vocab ids, PAD-padded."""
    src_pad_mask: np.ndarray
    """(B, S) bool, True at padding."""
    src_ext: np.ndarray
    """(B, S) extended-vocab ids for copy output mapping."""
    tgt_input: np.ndarray
    """(B, T) decoder inputs (BOS-led)."""
    tgt_output: np.ndarray
    """(B, T) decoder targets (EOS-terminated)."""
    tgt_pad_mask: np.ndarray
    """(B, T) bool, True at padding."""
    att_allowed: np.ndarray
    """(B, T) float, 1 where the generation softmax may explain the target."""
    copy_match: np.ndarray
    """(B, T, S) float, 1 where the source position holds the gold token."""
    answer_mask: np.ndarray
    """(B, S) float, 1 at source positions inside the answer span (all zeros
    when spans are unknown) — consumed by answer-feature models."""
    oov_tokens: tuple[tuple[str, ...], ...]
    """Per example, the source tokens outside the decoder vocabulary."""
    examples: tuple[EncodedExample, ...]

    @property
    def size(self) -> int:
        return self.src.shape[0]

    @property
    def num_target_tokens(self) -> int:
        return int((~self.tgt_pad_mask).sum())


def collate(examples: Sequence[EncodedExample], pad_id: int) -> Batch:
    """Pad a list of encoded examples into one :class:`Batch`."""
    if not examples:
        raise ValueError("cannot collate an empty list of examples")
    batch = len(examples)
    src_len = max(len(ex.src_ids) for ex in examples)
    tgt_len = max(len(ex.tgt_input_ids) for ex in examples)

    src = np.full((batch, src_len), pad_id, dtype=np.int64)
    src_pad = np.ones((batch, src_len), dtype=bool)
    src_ext = np.full((batch, src_len), pad_id, dtype=np.int64)
    tgt_in = np.full((batch, tgt_len), pad_id, dtype=np.int64)
    tgt_out = np.full((batch, tgt_len), pad_id, dtype=np.int64)
    tgt_pad = np.ones((batch, tgt_len), dtype=bool)
    att_allowed = np.ones((batch, tgt_len), dtype=float)
    copy_match = np.zeros((batch, tgt_len, src_len), dtype=float)
    answer_mask = np.zeros((batch, src_len), dtype=float)

    for row, ex in enumerate(examples):
        s, t = len(ex.src_ids), len(ex.tgt_input_ids)
        src[row, :s] = ex.src_ids
        src_pad[row, :s] = False
        src_ext[row, :s] = ex.src_ext_ids
        tgt_in[row, :t] = ex.tgt_input_ids
        tgt_out[row, :t] = ex.tgt_output_ids
        tgt_pad[row, :t] = False
        att_allowed[row, :t] = [float(a) for a in ex.att_allowed]
        for step, positions in enumerate(ex.copy_positions):
            for position in positions:
                copy_match[row, step, position] = 1.0
        for position in ex.answer_positions:
            answer_mask[row, position] = 1.0

    return Batch(
        src=src,
        src_pad_mask=src_pad,
        src_ext=src_ext,
        tgt_input=tgt_in,
        tgt_output=tgt_out,
        tgt_pad_mask=tgt_pad,
        att_allowed=att_allowed,
        copy_match=copy_match,
        answer_mask=answer_mask,
        oov_tokens=tuple(ex.oov_tokens for ex in examples),
        examples=tuple(examples),
    )


def plan_batches(
    lengths: Sequence[int],
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
    bucket_multiplier: int = 16,
) -> list[list[int]]:
    """One epoch's batch composition as example-index lists.

    The stateless core of :class:`BatchIterator`: shuffle the example
    order, sort by source length inside pools of
    ``batch_size * bucket_multiplier`` (length-homogeneous batches without
    a fixed global order), chunk, and shuffle the batch order. All
    randomness comes from ``rng``, so callers that derive the generator
    from ``(run seed, epoch)`` — the sharded data pipeline in
    :mod:`repro.training.sharding` does — get the identical global batch
    sequence at any world size.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(len(lengths))
    if shuffle:
        rng.shuffle(order)

    # Bucket: sort by source length inside pools so batches are
    # length-homogeneous without fixing a global order.
    pool_size = batch_size * bucket_multiplier
    sorted_order: list[int] = []
    for start in range(0, len(order), pool_size):
        pool = order[start: start + pool_size]
        pool = sorted(pool, key=lambda i: lengths[i])
        sorted_order.extend(pool)

    batches = [
        sorted_order[start: start + batch_size]
        for start in range(0, len(sorted_order), batch_size)
    ]
    if shuffle:
        rng.shuffle(batches)
    return batches


class BatchIterator:
    """Length-bucketed, shuffled mini-batches over a dataset.

    Parameters
    ----------
    examples:
        Encoded examples (a :class:`~repro.data.dataset.QGDataset` works).
    batch_size:
        Paper default is 64; experiments scale it with the corpus.
    pad_id:
        Padding id shared by both vocabularies (always 0 here).
    shuffle:
        Shuffle example order and batch order each epoch.
    seed:
        Seed for the shuffling generator, or an already-constructed
        ``numpy.random.Generator`` to consume directly — shard workers
        inject split seed streams this way. The int path is byte-identical
        to what it always was (pinned by a golden-order test).
    bucket_multiplier:
        Examples are sorted by source length within pools of
        ``batch_size * bucket_multiplier`` before chunking.
    """

    def __init__(
        self,
        examples: Sequence[EncodedExample],
        batch_size: int,
        pad_id: int = 0,
        shuffle: bool = True,
        seed: int | np.random.Generator = 0,
        bucket_multiplier: int = 16,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        # Indexable containers (lists, QGDataset, the shard store's lazy
        # StreamingQGDataset) are kept as-is so nothing is materialized;
        # plain iterables are drained once into a list.
        if hasattr(examples, "__getitem__") and hasattr(examples, "__len__"):
            self.examples = examples
        else:
            self.examples = list(examples)
        self.batch_size = batch_size
        self.pad_id = pad_id
        self.shuffle = shuffle
        self.bucket_multiplier = bucket_multiplier
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.examples) + self.batch_size - 1) // self.batch_size

    def plan_epoch(self) -> list[list[int]]:
        """Advance the shuffle stream and return this epoch's index plan."""
        return plan_batches(
            example_source_lengths(self.examples),
            self.batch_size,
            self._rng,
            shuffle=self.shuffle,
            bucket_multiplier=self.bucket_multiplier,
        )

    def __iter__(self) -> Iterator[Batch]:
        for indices in self.plan_epoch():
            yield collate([self.examples[i] for i in indices], pad_id=self.pad_id)
