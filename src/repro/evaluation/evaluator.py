"""End-to-end evaluation: decode a dataset, score with the paper's metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.batching import BatchIterator, collate
from repro.data.dataset import QGDataset
from repro.decoding import batched_beam_decode, extended_ids_to_tokens, greedy_decode
from repro.metrics import bleu_n_scores, corpus_rouge_l
from repro.models.base import QuestionGenerator
from repro.observability import Telemetry, get_telemetry

__all__ = ["EvaluationResult", "evaluate_model", "METRIC_NAMES"]

METRIC_NAMES = ("BLEU-1", "BLEU-2", "BLEU-3", "BLEU-4", "ROUGE-L")


@dataclass(frozen=True)
class EvaluationResult:
    """Scores plus the raw predictions that produced them."""

    scores: dict[str, float]
    predictions: tuple[tuple[str, ...], ...]
    references: tuple[tuple[str, ...], ...]
    skipped: int = 0
    """Examples whose decode raised and were excluded from the scores."""

    def __getitem__(self, metric: str) -> float:
        return self.scores[metric]

    def summary(self) -> str:
        line = "  ".join(f"{name}={self.scores[name]:.2f}" for name in METRIC_NAMES)
        if self.skipped:
            line += f"  skipped={self.skipped}"
        return line


def evaluate_model(
    model: QuestionGenerator,
    dataset: QGDataset,
    beam_size: int = 3,
    max_length: int = 30,
    batch_size: int = 32,
    length_penalty: float = 1.0,
    telemetry: Telemetry | None = None,
) -> EvaluationResult:
    """Decode every example and compute BLEU-1..4 and ROUGE-L.

    Decoding uses beam search (the paper's test-time setting is beam 3);
    ``beam_size=1`` falls back to the cheaper batched greedy decoder.

    The run is wrapped in an ``eval`` telemetry span (decode throughput and
    switch-gate statistics come from the batched beam engine itself); the
    metric computation gets its own ``metrics`` child span, and the final
    scores are emitted as ``eval.<metric>`` gauges.

    A failing example does not abort the run: when a batch decode raises,
    each member is retried alone, and any example that still fails is
    skipped and counted (``skipped`` on the result, ``eval.skipped``
    counter in telemetry) so one poison example cannot void a whole
    evaluation.
    """
    tel = telemetry if telemetry is not None else get_telemetry()
    iterator = BatchIterator(dataset, batch_size=batch_size, shuffle=False)
    predictions: list[tuple[str, ...]] = []
    references: list[tuple[str, ...]] = []
    skipped = 0

    if hasattr(model, "collect_gate_stats"):
        model.collect_gate_stats = tel.enabled

    def _decode(batch):
        if beam_size == 1:
            return greedy_decode(model, batch, max_length=max_length)
        # Batch-parallel engine: every evaluation decodes the whole
        # batch's hypothesis frontier per step.
        return batched_beam_decode(
            model,
            batch,
            beam_size=beam_size,
            max_length=max_length,
            length_penalty=length_penalty,
            telemetry=tel,
        )

    eval_start = time.perf_counter()
    with tel.span("eval", extra={"examples": len(dataset), "beam_size": beam_size}):
        for batch in iterator:
            try:
                pairs = list(zip(_decode(batch), batch.examples))
            except Exception:  # noqa: BLE001 - isolate the poison member below
                pairs = []
                for encoded in batch.examples:
                    try:
                        solo = collate([encoded], pad_id=0)
                        pairs.append((_decode(solo)[0], encoded))
                    except Exception as error:  # noqa: BLE001 - skip-and-count
                        skipped += 1
                        tel.counter("eval.skipped")
                        tel.log(f"eval: skipped example ({type(error).__name__}: {error})")
            for hypothesis, encoded in pairs:
                tokens = extended_ids_to_tokens(
                    hypothesis.token_ids, dataset.decoder_vocab, encoded.oov_tokens
                )
                predictions.append(tuple(tokens))
                references.append(tuple(encoded.example.question))

        with tel.span("metrics"):
            if predictions:
                hyp_list = [list(p) if p else ["<empty>"] for p in predictions]
                ref_list = [[list(r)] for r in references]
                scores = bleu_n_scores(hyp_list, ref_list)
                scores["ROUGE-L"] = corpus_rouge_l(hyp_list, ref_list)
            else:
                # Every example was skipped; zero scores, not a crash.
                scores = {name: 0.0 for name in METRIC_NAMES}

    tel.gauge("eval.examples", float(len(predictions)))
    tel.throughput("eval.examples", len(predictions), time.perf_counter() - eval_start)
    for name in METRIC_NAMES:
        tel.gauge(f"eval.{name}", float(scores[name]))
    return EvaluationResult(
        scores=scores,
        predictions=tuple(predictions),
        references=tuple(references),
        skipped=skipped,
    )
