"""Paired bootstrap significance testing (Koehn, 2004).

Table 1's gaps are fractions of a BLEU point in places; a responsible
reproduction should say whether its measured gaps are noise. The paired
bootstrap resamples test segments with replacement and counts how often
system A beats system B on the resampled corpus; ``1 - win_rate`` is the
(one-sided) p-value for "A is better".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.metrics import corpus_bleu, corpus_rouge_l

__all__ = ["BootstrapResult", "paired_bootstrap"]

Tokens = Sequence[str]
MetricFn = Callable[[list, list], float]


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison of two systems."""

    metric: str
    score_a: float
    score_b: float
    wins_a: int
    wins_b: int
    ties: int
    samples: int

    @property
    def p_value(self) -> float:
        """One-sided p-value for "system A beats system B"."""
        return 1.0 - self.wins_a / self.samples  # numerics: ok — samples validated >= 1 at construction

    @property
    def significant(self) -> bool:
        """Significance at the conventional 0.05 level."""
        return self.p_value < 0.05

    def render(self) -> str:
        return (
            f"{self.metric}: A={self.score_a:.2f} vs B={self.score_b:.2f} | "
            f"A wins {self.wins_a}/{self.samples} resamples "
            f"(p={self.p_value:.3f}{', significant' if self.significant else ''})"
        )


def paired_bootstrap(
    predictions_a: Sequence[Tokens],
    predictions_b: Sequence[Tokens],
    references: Sequence[Tokens],
    metric: str = "BLEU-4",
    samples: int = 1000,
    seed: int = 0,
) -> BootstrapResult:
    """Compare two systems' predictions on a shared test set.

    Parameters
    ----------
    predictions_a, predictions_b:
        Aligned system outputs.
    references:
        One gold sequence per segment (shared by both systems).
    metric:
        ``"BLEU-1"``..``"BLEU-4"`` or ``"ROUGE-L"``.
    samples:
        Number of bootstrap resamples.
    """
    if not (len(predictions_a) == len(predictions_b) == len(references)):
        raise ValueError(
            f"misaligned inputs: {len(predictions_a)} / {len(predictions_b)} "
            f"/ {len(references)}"
        )
    if not references:
        raise ValueError("paired_bootstrap needs at least one segment")
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")

    score_fn = _metric_fn(metric)
    a = [list(p) if p else ["<empty>"] for p in predictions_a]
    b = [list(p) if p else ["<empty>"] for p in predictions_b]
    refs = [[list(r)] for r in references]

    rng = np.random.default_rng(seed)
    count = len(refs)
    wins_a = wins_b = ties = 0
    for _ in range(samples):
        idx = rng.integers(0, count, size=count)
        sample_a = score_fn([a[i] for i in idx], [refs[i] for i in idx])
        sample_b = score_fn([b[i] for i in idx], [refs[i] for i in idx])
        if sample_a > sample_b:
            wins_a += 1
        elif sample_b > sample_a:
            wins_b += 1
        else:
            ties += 1

    return BootstrapResult(
        metric=metric,
        score_a=score_fn(a, refs),
        score_b=score_fn(b, refs),
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        samples=samples,
    )


def _metric_fn(metric: str) -> MetricFn:
    if metric == "ROUGE-L":
        return corpus_rouge_l
    if metric.startswith("BLEU-"):
        try:
            order = int(metric.split("-", 1)[1])
        except ValueError:
            order = 0
        if 1 <= order <= 4:
            return lambda hyps, refs: corpus_bleu(hyps, refs, max_n=order, smooth_epsilon=0.01)
    raise KeyError(f"unknown metric {metric!r}; use BLEU-1..4 or ROUGE-L")
