"""Decode-time introspection: attention maps and switch-gate traces.

The paper's core claim is that the gate ``z_k`` (Eq. 4) selects *adaptively*
between copying and generating. :func:`trace_generation` replays a greedy
decode step by step, recording for each emitted token the attention
distribution over source positions, the copy distribution, the gate value,
and whether the token came out of the extended (copy) region of the
vocabulary — the raw material for verifying adaptivity quantitatively
(see :func:`gate_statistics`) or eyeballing it (:func:`render_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batching import collate
from repro.data.dataset import EncodedExample
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID, Vocabulary
from repro.decoding.hypothesis import extended_ids_to_tokens
from repro.models.acnn import ACNN
from repro.tensor.core import Tensor, no_grad

__all__ = ["StepTrace", "GenerationTrace", "trace_generation", "gate_statistics", "render_trace"]


@dataclass(frozen=True)
class StepTrace:
    """One decoding step of one example."""

    token: str
    token_id: int
    copied: bool
    """True when the emitted id lies in the extended (source-OOV) region."""
    switch: float
    """Gate value z_k in (0, 1): 1 = copy, 0 = generate."""
    attention: np.ndarray
    """(S,) attention weights over source positions."""
    copy_distribution: np.ndarray
    """(S,) copy probabilities over source positions."""


@dataclass(frozen=True)
class GenerationTrace:
    """A full greedy decode of one example with per-step internals."""

    source_tokens: tuple[str, ...]
    generated_tokens: tuple[str, ...]
    steps: tuple[StepTrace, ...]

    @property
    def mean_switch(self) -> float:
        if not self.steps:
            return 0.0
        return float(np.mean([step.switch for step in self.steps]))


def trace_generation(
    model: ACNN,
    encoded: EncodedExample,
    decoder_vocab: Vocabulary,
    max_length: int = 30,
) -> GenerationTrace:
    """Greedy-decode one example, recording the model internals per step."""
    if not isinstance(model, ACNN):
        raise TypeError("trace_generation requires an ACNN (it reads the copy internals)")
    model.eval()
    batch = collate([encoded], pad_id=PAD_ID)

    steps: list[StepTrace] = []
    with no_grad():
        context = model.encode(batch)
        state = model.initial_decoder_state(context)
        prev = np.array([BOS_ID], dtype=np.int64)
        for _ in range(max_length):
            token_ids = model.map_to_decoder_vocab(prev, model.decoder_vocab_size, 1)
            embedded = model.decoder_embedding(token_ids)
            d_k, c_k, attn, logits, new_lstm = model._decode_step(
                embedded, state.lstm_states, context.encoder_states, context.src_pad_mask
            )
            from repro.tensor.ops import softmax

            p_att = softmax(logits, axis=-1).data[0]
            p_cop = model.copy_distribution(
                d_k, c_k, context.encoder_states, context.src_pad_mask
            ).data[0]
            z = float(model.switch(d_k, c_k, embedded).data[0])

            extended = np.zeros(model.decoder_vocab_size + context.max_oov)
            extended[: model.decoder_vocab_size] = (1.0 - z) * p_att
            np.add.at(extended, batch.src_ext[0], z * p_cop)
            extended[PAD_ID] = 0.0
            extended[BOS_ID] = 0.0
            choice = int(extended.argmax())

            from repro.models.base import DecoderStepState

            state = DecoderStepState(new_lstm)
            if choice == EOS_ID:
                break
            token = extended_ids_to_tokens([choice], decoder_vocab, encoded.oov_tokens)[0]
            steps.append(
                StepTrace(
                    token=token,
                    token_id=choice,
                    copied=choice >= model.decoder_vocab_size,
                    switch=z,
                    attention=attn.data[0].copy(),
                    copy_distribution=p_cop.copy(),
                )
            )
            prev = np.array([choice], dtype=np.int64)

    return GenerationTrace(
        source_tokens=encoded.src_tokens,
        generated_tokens=tuple(step.token for step in steps),
        steps=tuple(steps),
    )


def gate_statistics(traces: list[GenerationTrace]) -> dict[str, float]:
    """Aggregate evidence that the gate is adaptive.

    Returns the mean gate value at steps that emitted a copied
    (extended-region) token vs steps that generated from the vocabulary,
    plus the overall copy rate. An adaptive gate shows
    ``mean_switch_when_copying >> mean_switch_when_generating``.
    """
    copy_gates: list[float] = []
    gen_gates: list[float] = []
    for trace in traces:
        for step in trace.steps:
            (copy_gates if step.copied else gen_gates).append(step.switch)
    total = len(copy_gates) + len(gen_gates)
    return {
        "mean_switch_when_copying": float(np.mean(copy_gates)) if copy_gates else float("nan"),
        "mean_switch_when_generating": float(np.mean(gen_gates)) if gen_gates else float("nan"),
        "copy_rate": len(copy_gates) / total if total else 0.0,  # numerics: ok — inline zero-check ternary
        "steps": float(total),
    }


def render_trace(trace: GenerationTrace, top_k: int = 3) -> str:
    """Text rendering: per generated token, the gate and top attended words."""
    lines = [f"source: {' '.join(trace.source_tokens)}", ""]
    header = f"{'token':>14s}  {'z':>5s}  {'copied':>6s}  top attention"
    lines.append(header)
    lines.append("-" * len(header))
    for step in trace.steps:
        order = np.argsort(-step.attention)[:top_k]
        attended = ", ".join(
            f"{trace.source_tokens[i]}:{step.attention[i]:.2f}"
            for i in order
            if i < len(trace.source_tokens)
        )
        lines.append(
            f"{step.token:>14s}  {step.switch:5.2f}  {'yes' if step.copied else 'no':>6s}  {attended}"
        )
    return "\n".join(lines)
