"""Evaluation harness: decode-and-score plus paper-style table rendering."""

from repro.evaluation.analysis import WH_WORDS, PredictionAnalysis, analyse_predictions
from repro.evaluation.evaluator import METRIC_NAMES, EvaluationResult, evaluate_model
from repro.evaluation.introspection import (
    GenerationTrace,
    StepTrace,
    gate_statistics,
    render_trace,
    trace_generation,
)
from repro.evaluation.reporting import format_markdown_table, format_table
from repro.evaluation.significance import BootstrapResult, paired_bootstrap

__all__ = [
    "WH_WORDS",
    "PredictionAnalysis",
    "analyse_predictions",
    "METRIC_NAMES",
    "EvaluationResult",
    "evaluate_model",
    "GenerationTrace",
    "StepTrace",
    "gate_statistics",
    "render_trace",
    "trace_generation",
    "format_markdown_table",
    "format_table",
    "BootstrapResult",
    "paired_bootstrap",
]
