"""Paper-style result tables.

Renders score dictionaries the way the paper's Tables 1 and 2 present them:
one row per system, columns BLEU-1..4 and ROUGE-L, best value per column
highlighted (the paper uses boldface; plain text uses an asterisk, markdown
uses ``**bold**``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.evaluator import METRIC_NAMES

__all__ = ["format_table", "format_markdown_table"]


def _best_per_column(
    rows: Mapping[str, Mapping[str, float]], metrics: Sequence[str]
) -> dict[str, float]:
    return {metric: max(scores[metric] for scores in rows.values()) for metric in metrics}


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str] = METRIC_NAMES,
    title: str | None = None,
    highlight_best: bool = True,
) -> str:
    """Fixed-width text table; the best score per column gets a ``*``."""
    if not rows:
        raise ValueError("format_table needs at least one row")
    best = _best_per_column(rows, metrics) if highlight_best else {}
    name_width = max(len("Model"), max(len(name) for name in rows))
    col_width = max(8, max(len(m) for m in metrics) + 1)

    lines = []
    if title:
        lines.append(title)
    header = "Model".ljust(name_width) + "".join(m.rjust(col_width) for m in metrics)
    lines.append(header)
    lines.append("-" * len(header))
    for name, scores in rows.items():
        cells = []
        for metric in metrics:
            value = scores[metric]
            text = f"{value:.2f}"
            if highlight_best and value == best[metric]:
                text += "*"
            cells.append(text.rjust(col_width))
        lines.append(name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def format_markdown_table(
    rows: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str] = METRIC_NAMES,
    highlight_best: bool = True,
) -> str:
    """GitHub-markdown table with the best score per column in bold."""
    if not rows:
        raise ValueError("format_markdown_table needs at least one row")
    best = _best_per_column(rows, metrics) if highlight_best else {}
    lines = ["| Model | " + " | ".join(metrics) + " |"]
    lines.append("|" + "---|" * (len(metrics) + 1))
    for name, scores in rows.items():
        cells = []
        for metric in metrics:
            value = scores[metric]
            text = f"{value:.2f}"
            if highlight_best and value == best[metric]:
                text = f"**{text}**"
            cells.append(text)
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
