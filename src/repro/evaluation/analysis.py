"""Prediction-level error analysis.

BLEU/ROUGE summarize overlap; this module answers the *why* questions the
paper's analysis gestures at: how often does each system emit ``<unk>``,
does it reproduce the gold question exactly, does it start with the right
wh-word, and — the copy mechanism's raison d'être — does it recover the
entity tokens that are outside the decoder vocabulary?
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.data.vocabulary import UNK, Vocabulary

__all__ = ["PredictionAnalysis", "analyse_predictions", "WH_WORDS"]

WH_WORDS = ("what", "who", "where", "when", "which", "how", "why", "whose")


@dataclass(frozen=True)
class PredictionAnalysis:
    """Aggregate prediction statistics over a test split."""

    num_examples: int
    exact_match_rate: float
    """Fraction of predictions identical to the gold question."""
    unk_rate: float
    """Fraction of predictions containing at least one <unk>."""
    wh_word_accuracy: float
    """Fraction whose first token matches the gold first token, among gold
    questions that start with a wh-word."""
    oov_entity_recall: float
    """Of gold tokens outside the decoder vocabulary, the fraction that the
    prediction reproduced — only a copy path can score here."""
    repeated_bigram_rate: float
    """Fraction of predictions containing a repeated bigram — the stutter
    ("the the", "of of") that the coverage extension targets."""
    mean_length: float
    mean_gold_length: float

    def summary(self) -> str:
        return (
            f"exact={100 * self.exact_match_rate:.1f}%  "
            f"unk={100 * self.unk_rate:.1f}%  "
            f"wh-acc={100 * self.wh_word_accuracy:.1f}%  "
            f"oov-recall={100 * self.oov_entity_recall:.1f}%  "
            f"repeat={100 * self.repeated_bigram_rate:.1f}%  "
            f"len={self.mean_length:.1f} (gold {self.mean_gold_length:.1f})"
        )


def analyse_predictions(
    predictions: Sequence[Sequence[str]],
    references: Sequence[Sequence[str]],
    decoder_vocab: Vocabulary,
) -> PredictionAnalysis:
    """Compute :class:`PredictionAnalysis` for aligned prediction/reference lists."""
    if len(predictions) != len(references):
        raise ValueError(
            f"{len(predictions)} predictions vs {len(references)} references"
        )
    if not predictions:
        raise ValueError("analyse_predictions needs at least one example")

    exact = 0
    with_unk = 0
    wh_total = 0
    wh_correct = 0
    oov_gold_total = 0
    oov_recovered = 0
    with_repeat = 0
    length_sum = 0
    gold_length_sum = 0

    for prediction, reference in zip(predictions, references):
        prediction = list(prediction)
        reference = list(reference)
        length_sum += len(prediction)
        gold_length_sum += len(reference)
        if prediction == reference:
            exact += 1
        if UNK in prediction:
            with_unk += 1
        if _has_repeated_bigram(prediction):
            with_repeat += 1
        if reference and reference[0] in WH_WORDS:
            wh_total += 1
            if prediction and prediction[0] == reference[0]:
                wh_correct += 1
        predicted_counts = Counter(prediction)
        for token in reference:
            if token not in decoder_vocab:
                oov_gold_total += 1
                if predicted_counts[token] > 0:
                    oov_recovered += 1
                    predicted_counts[token] -= 1

    count = len(predictions)
    return PredictionAnalysis(
        num_examples=count,
        exact_match_rate=exact / count,  # numerics: ok — empty predictions raises above
        unk_rate=with_unk / count,  # numerics: ok — empty predictions raises above
        wh_word_accuracy=wh_correct / wh_total if wh_total else float("nan"),  # numerics: ok — inline zero-check ternary
        oov_entity_recall=oov_recovered / oov_gold_total if oov_gold_total else float("nan"),  # numerics: ok — inline zero-check ternary
        repeated_bigram_rate=with_repeat / count,  # numerics: ok — empty predictions raises above
        mean_length=length_sum / count,  # numerics: ok — empty predictions raises above
        mean_gold_length=gold_length_sum / count,  # numerics: ok — empty predictions raises above
    )


def _has_repeated_bigram(tokens: Sequence[str]) -> bool:
    bigrams = list(zip(tokens, tokens[1:]))
    return len(bigrams) != len(set(bigrams))
