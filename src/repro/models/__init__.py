"""Models: the Seq2Seq baseline, the Du et al. attention baseline, and ACNN.

:func:`build_model` is the factory the experiment harness uses; names match
the rows of the paper's Table 1 (the ``-sent`` / ``-para`` suffix is a data
setting, not a model difference, so it lives in the experiment configs).
"""

from repro.models.acnn import ACNN
from repro.models.base import DecoderStepState, EncoderContext, QuestionGenerator
from repro.models.config import ModelConfig
from repro.models.du_attention import DuAttentionModel
from repro.models.seq2seq import Seq2SeqBaseline

__all__ = [
    "ACNN",
    "DecoderStepState",
    "EncoderContext",
    "QuestionGenerator",
    "ModelConfig",
    "DuAttentionModel",
    "Seq2SeqBaseline",
    "build_model",
    "MODEL_FAMILIES",
]

MODEL_FAMILIES = {
    "seq2seq": Seq2SeqBaseline,
    "du-attention": DuAttentionModel,
    "acnn": ACNN,
}


def build_model(
    family: str,
    config: ModelConfig,
    encoder_vocab_size: int,
    decoder_vocab_size: int,
    **kwargs,
) -> QuestionGenerator:
    """Instantiate a model family by name.

    ``kwargs`` are forwarded (e.g. ``switch_mode`` for ACNN ablations).
    """
    if family not in MODEL_FAMILIES:
        raise KeyError(f"unknown model family {family!r}; options: {sorted(MODEL_FAMILIES)}")
    return MODEL_FAMILIES[family](config, encoder_vocab_size, decoder_vocab_size, **kwargs)
