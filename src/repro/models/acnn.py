"""The Adaptive Copying Neural Network (ACNN) — the paper's contribution.

ACNN extends the Du et al. attention model with Eqs. 2-4 of Section 3.2:

- **Eq. 2 (mixture)**: ``P(y_k) = z_k P_cop(y_k) + (1 - z_k) P_att(y_k)``,
  where ``P_att`` generates from the decoder vocabulary and ``P_cop`` copies
  from the source.
- **Eq. 3 (copy distribution)**: a softmax over the words of the source
  sequence scored against the transformed decoder context. As printed in
  the paper, Eq. 3 reuses the symbol ``V`` on both sides and is dimensionally
  ambiguous; we implement the standard pointer reading that matches its
  shape: each source position ``t`` receives the score

      s_t = h_t^T (V [d_k ; c_k] + b_1) + b_2

  (``h_t`` = encoder state at position t, ``V`` a learned projection of the
  concatenated decoder state and context, ``b_1`` a vector bias, ``b_2`` a
  scalar bias), and ``P_cop`` is the masked softmax of ``s`` over source
  positions; the probability of *word* w is the sum over positions holding
  w. This keeps Eq. 3's "softmax over the unique word set of the source"
  semantics.
- **Eq. 4 (adaptive switch)**:
  ``z_k = sigmoid(W_d^T d_k + W_c^T c_k + W_s^T y_{k-1} + b)`` with
  ``y_{k-1}`` the embedding of the previous output token — the data-adaptive
  gate that selects between generating and copying.

For ablations, ``switch_mode`` can freeze the gate: ``"adaptive"`` (paper),
``"fixed"`` with a constant ``z`` (0 = pure attention, 1 = pure copy).
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import UNK_ID
from repro.models.base import DecoderStepState, EncoderContext
from repro.models.config import ModelConfig
from repro.models.du_attention import DuAttentionModel
from repro.nn import Linear, Parameter, sequence_nll
from repro.nn import init as nn_init
from repro.nn.loss import PROBABILITY_FLOOR
from repro.nn.functional import fused_pointer_probs
from repro.nn.numerics import np_bernoulli_entropy, np_smoothed_log, saturating_sigmoid
from repro.tensor.core import Tensor
from repro.tensor.lazy import fusion_context, is_lazy_enabled
from repro.tensor.ops import (
    concat,
    expand_dims,
    gather_rows,
    masked_fill,
    minimum,
    softmax,
)

__all__ = ["ACNN"]

_MASK_VALUE = -1e9


class ACNN(DuAttentionModel):
    """Adaptive copying model: attention decoder + copy path + switch gate."""

    name = "acnn"

    def __init__(
        self,
        config: ModelConfig,
        encoder_vocab_size: int,
        decoder_vocab_size: int,
        switch_mode: str = "adaptive",
        fixed_switch: float = 0.5,
        use_coverage: bool = False,
        coverage_loss_weight: float = 1.0,
        use_answer_features: bool = False,
        answer_feature_dim: int = 8,
        scheduled_sampling_rate: float = 0.0,
        scheduled_sampling_seed: int = 0,
    ) -> None:
        super().__init__(
            config,
            encoder_vocab_size,
            decoder_vocab_size,
            use_answer_features=use_answer_features,
            answer_feature_dim=answer_feature_dim,
        )
        if switch_mode not in ("adaptive", "fixed"):
            raise ValueError(f"unknown switch_mode {switch_mode!r}")
        if not 0.0 <= fixed_switch <= 1.0:
            raise ValueError(f"fixed_switch must be in [0, 1], got {fixed_switch}")
        if coverage_loss_weight < 0:
            raise ValueError(f"coverage_loss_weight must be >= 0, got {coverage_loss_weight}")
        if not 0.0 <= scheduled_sampling_rate < 1.0:
            raise ValueError(
                f"scheduled_sampling_rate must be in [0, 1), got {scheduled_sampling_rate}"
            )
        self.switch_mode = switch_mode
        self.fixed_switch = fixed_switch
        self.use_coverage = use_coverage
        self.coverage_loss_weight = coverage_loss_weight
        self.scheduled_sampling_rate = scheduled_sampling_rate
        self._sampling_rng = np.random.default_rng(scheduled_sampling_seed)
        self.collect_gate_stats = False
        """When true (set by the trainer/evaluator while telemetry is
        active), each forward pass summarizes the Eq. 2/4 switch gate into
        :attr:`last_gate_stats` — z mean, Bernoulli entropy, hard copy rate
        over non-pad tokens. Off by default: un-observed runs pay nothing."""
        self.last_gate_stats: dict | None = None
        self._decode_gate_accum: dict | None = None

        rng = np.random.default_rng(config.seed + 100)
        if use_coverage:
            # Rebuild the attention layer with the coverage term (See et al.
            # 2017 extension; see DESIGN.md's ablation index).
            from repro.nn import GlobalAttention

            self.attention = GlobalAttention(
                config.hidden_size,
                self.encoder_output_size,
                np.random.default_rng(config.seed + 200),
                use_coverage=True,
            )
        hidden = config.hidden_size
        # Eq. 3: V [d_k ; c_k] + b_1 projects into encoder-state space; b_2
        # is the scalar score bias.
        self.copy_projection = Linear(hidden + self.encoder_output_size, self.encoder_output_size, rng)
        self.copy_score_bias = Parameter(np.zeros(1), name="copy_b2")
        # Eq. 4: one weight vector per input of the switch gate.
        self.switch_d = Parameter(nn_init.uniform((hidden,), rng), name="W_d")
        self.switch_c = Parameter(nn_init.uniform((self.encoder_output_size,), rng), name="W_c")
        self.switch_y = Parameter(nn_init.uniform((config.embedding_dim,), rng), name="W_s")
        self.switch_bias = Parameter(np.zeros(1), name="switch_b")

    # ------------------------------------------------------------------
    # Copy machinery
    # ------------------------------------------------------------------
    def copy_distribution(
        self,
        d_k: Tensor,
        c_k: Tensor,
        encoder_states: Tensor,
        src_pad_mask: np.ndarray,
    ) -> Tensor:
        """Eq. 3: ``P_cop`` over source positions, padding masked out."""
        projected = self.copy_projection(concat([d_k, c_k], axis=1))  # (B, enc_out)
        if is_lazy_enabled():
            # Lazy mode: the score→bias→mask→softmax chain runs as one
            # fused kernel (byte-identical numpy sequence; arena-replayed
            # under no_grad). The Linear stays eager so its parameters
            # remain ordinary tape parents.
            return fused_pointer_probs(
                projected,
                encoder_states,
                self.copy_score_bias,
                src_pad_mask,
                mask_value=_MASK_VALUE,
            )
        scores = (expand_dims(projected, 1) * encoder_states).sum(axis=2)  # (B, S)
        scores = scores + self.copy_score_bias
        scores = masked_fill(scores, src_pad_mask, _MASK_VALUE)
        return softmax(scores, axis=1)

    def _extended_mixture(
        self,
        p_att: np.ndarray,
        p_cop: np.ndarray,
        z: np.ndarray,
        src_ext: np.ndarray,
        max_oov: int,
    ) -> np.ndarray:
        """Eq. 2 over the extended vocabulary, as a plain probability array.

        Scatters the copy distribution (over source positions) onto extended
        token ids and mixes it with the generation distribution:
        ``(B, decoder_vocab + max_oov)``.
        """
        batch_size = p_att.shape[0]
        z = z.reshape(-1, 1)
        extended = np.zeros((batch_size, self.decoder_vocab_size + max_oov))
        extended[:, : self.decoder_vocab_size] = (1.0 - z) * p_att
        rows = np.repeat(np.arange(batch_size)[:, None], src_ext.shape[1], axis=1)
        np.add.at(extended, (rows, src_ext), z * p_cop)
        return extended

    def sampled_feedback(
        self,
        p_att: np.ndarray,
        p_cop: np.ndarray,
        z: np.ndarray,
        src_ext: np.ndarray,
        max_oov: int,
    ) -> np.ndarray:
        """Greedy feedback tokens for scheduled sampling.

        The fed-back pick must come from the full Eq. 2 mixture — the same
        distribution decoding samples from — not from the attention softmax
        alone, or a gate that favors copying trains on feedback the model
        would never produce at inference. Matching the inference contract
        (``step_log_probs`` ids beyond the decoder vocabulary feed back as
        UNK), copied OOV winners map to UNK.
        """
        picks = self._extended_mixture(p_att, p_cop, z, src_ext, max_oov).argmax(axis=1)
        return self.map_to_decoder_vocab(picks, self.decoder_vocab_size, UNK_ID)

    def switch(self, d_k: Tensor, c_k: Tensor, y_prev_embedded: Tensor) -> Tensor:
        """Eq. 4: the adaptive copy/generate gate ``z_k`` in (0, 1).

        The adaptive gate is computed with a saturation guard: a gate that
        returns exactly 0 or 1 multiplies one branch of the Eq. 2 mixture
        by exact zero, which kills both the probability and the gradient
        of any target token only the other branch can explain. (``fixed``
        mode is left unguarded on purpose — 0/1 there is the requested
        pure-attention / pure-copy ablation.)
        """
        if self.switch_mode == "fixed":
            return Tensor(np.full((d_k.shape[0],), self.fixed_switch))
        logit = (
            d_k @ self.switch_d
            + c_k @ self.switch_c
            + y_prev_embedded @ self.switch_y
            + self.switch_bias
        )
        return saturating_sigmoid(logit)  # (B,), in [eps, 1 - eps]

    # ------------------------------------------------------------------
    # Training (Eq. 1/2: maximize the mixture likelihood of gold tokens)
    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        # Opt-in kernel fusion for the teacher-forced step loop: inside the
        # context each step's LSTM/attention/copy chains collapse to single
        # fused tape nodes (byte-identical forward, gradcheck-pinned
        # backward). A no-op unless fusion was enabled.
        with fusion_context():
            return self._teacher_forced_loss(batch)

    def _teacher_forced_loss(self, batch: Batch) -> Tensor:
        context = self.encode(batch)
        states = list(context.initial_states)
        embedded = self.decoder_embedding(batch.tgt_input)
        time_steps = batch.tgt_input.shape[1]
        valid = ~batch.tgt_pad_mask

        coverage: Tensor | None = None
        if self.use_coverage:
            coverage = Tensor(np.zeros((batch.size, batch.src.shape[1])))
        coverage_penalty: Tensor | None = None

        # Scheduled sampling (Bengio et al. 2015, extension): with some
        # probability feed the model's previous prediction instead of the
        # gold token, shrinking the train/inference exposure gap.
        sampling = self.training and self.scheduled_sampling_rate > 0.0
        prev_predictions: np.ndarray | None = None

        gate_z_sum = gate_entropy_sum = gate_copy_sum = 0.0
        gate_tokens = 0

        step_probs: list[Tensor] = []
        for t in range(time_steps):
            if sampling and t > 0:
                use_model = self._sampling_rng.random(batch.size) < self.scheduled_sampling_rate
                input_ids = np.where(use_model, prev_predictions, batch.tgt_input[:, t])
                x_t = self.decoder_embedding(input_ids)
            else:
                x_t = embedded[:, t, :]
            d_k, c_k, attn, logits, states = self._decode_step(
                x_t, states, context.encoder_states, context.src_pad_mask, coverage=coverage
            )
            p_att = softmax(logits, axis=-1)  # (B, V)
            p_att_target = gather_rows(p_att, batch.tgt_output[:, t])
            # Zero out the generation path where it may not explain the
            # token (decoder-OOV but copyable: only the copy path counts).
            p_att_target = p_att_target * Tensor(batch.att_allowed[:, t])

            p_cop = self.copy_distribution(d_k, c_k, context.encoder_states, context.src_pad_mask)
            p_cop_target = (p_cop * Tensor(batch.copy_match[:, t, :])).sum(axis=1)

            z = self.switch(d_k, c_k, x_t)
            mixture = z * p_cop_target + (1.0 - z) * p_att_target  # Eq. 2
            step_probs.append(mixture)

            if self.collect_gate_stats:
                mask = valid[:, t]
                z_values = z.data[mask]
                gate_z_sum += float(z_values.sum())
                gate_entropy_sum += float(np_bernoulli_entropy(z_values).sum())
                gate_copy_sum += float((z_values > 0.5).sum())
                gate_tokens += int(mask.sum())

            if sampling:
                # The next step may feed this step's greedy pick from the
                # Eq. 2 mixture (OOV copies feed back as UNK, matching the
                # inference contract).
                prev_predictions = self.sampled_feedback(
                    p_att.data, p_cop.data, z.data, context.src_ext, context.max_oov
                )

            if coverage is not None:
                # Coverage loss (See et al. 2017): penalize re-attending.
                overlap = minimum(attn, coverage).sum(axis=1)
                step_penalty = (overlap * Tensor(valid[:, t].astype(float))).sum()
                coverage_penalty = (
                    step_penalty if coverage_penalty is None else coverage_penalty + step_penalty
                )
                coverage = coverage + attn

        if self.collect_gate_stats:
            from repro.observability import gate_statistics

            self.last_gate_stats = gate_statistics(
                gate_z_sum, gate_entropy_sum, gate_copy_sum, gate_tokens
            )

        nll = sequence_nll(step_probs, batch.tgt_output, batch.tgt_pad_mask)
        if coverage_penalty is not None and self.coverage_loss_weight > 0:
            total_tokens = float(valid.sum())
            nll = nll + coverage_penalty * (self.coverage_loss_weight / total_tokens)  # numerics: ok — total_tokens > 0 enforced by sequence_nll
        return nll

    # ------------------------------------------------------------------
    # Decoding: full extended-vocabulary distribution
    # ------------------------------------------------------------------
    def initial_decoder_state(self, context: EncoderContext) -> DecoderStepState:
        state = super().initial_decoder_state(context)
        if self.use_coverage:
            batch, src_len = context.src_ext.shape
            state.coverage = np.zeros((batch, src_len))
        return state

    def step_log_probs(
        self,
        prev_tokens: np.ndarray,
        state: DecoderStepState,
        context: EncoderContext,
        row_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, DecoderStepState]:
        encoder_states, src_pad_mask, src_ext = self._context_rows(context, row_indices)
        token_ids = self.map_to_decoder_vocab(prev_tokens, self.decoder_vocab_size, UNK_ID)
        embedded = self.decoder_embedding(token_ids)
        coverage = Tensor(state.coverage) if state.coverage is not None else None
        d_k, c_k, attn, logits, new_states = self._decode_step(
            embedded, state.lstm_states, encoder_states, src_pad_mask, coverage=coverage
        )
        p_att = softmax(logits, axis=-1).data  # (B, V)
        p_cop = self.copy_distribution(d_k, c_k, encoder_states, src_pad_mask).data  # (B, S)
        z = self.switch(d_k, c_k, embedded).data  # (B,)

        if self.collect_gate_stats:
            accum = self._decode_gate_accum or {"z": 0.0, "entropy": 0.0, "copy": 0.0, "tokens": 0}
            accum["z"] += float(z.sum())
            accum["entropy"] += float(np_bernoulli_entropy(z).sum())
            accum["copy"] += float((z > 0.5).sum())
            accum["tokens"] += int(z.shape[0])
            self._decode_gate_accum = accum

        extended = self._extended_mixture(p_att, p_cop, z, src_ext, context.max_oov)
        new_coverage = (
            state.coverage + attn.data if state.coverage is not None else None
        )
        return (
            # Eq. 2 probabilities can be exactly 0 (un-copyable extended
            # ids); the smoothed log matches the historical additive guard
            # bit-for-bit so beam scores are unchanged.
            np_smoothed_log(extended, PROBABILITY_FLOOR),
            DecoderStepState(new_states, coverage=new_coverage),
        )

    def pop_decode_gate_stats(self) -> dict | None:
        """Gate stats accumulated over decode steps since the last pop.

        The decoding engines drain this after each batch so the telemetry
        layer can gauge how often inference actually copies (per frontier
        row per step; no pad masking exists at decode time). ``None`` when
        nothing was collected.
        """
        accum = self._decode_gate_accum
        self._decode_gate_accum = None
        if accum is None:
            return None
        from repro.observability import gate_statistics

        return gate_statistics(accum["z"], accum["entropy"], accum["copy"], accum["tokens"])

    def describe(self) -> str:
        cfg = self.config
        switch = (
            "adaptive: z_k = sigmoid(W_d d_k + W_c c_k + W_s y_{k-1} + b)"
            if self.switch_mode == "adaptive"
            else f"fixed: z = {self.fixed_switch}"
        )
        return (
            "ACNN — Adaptive Copying Neural Network (Lu & Guo 2019)\n"
            f"  encoder: {cfg.num_layers}-layer bidirectional LSTM({cfg.hidden_size} per direction)\n"
            f"  decoder: {cfg.num_layers}-layer LSTM({cfg.hidden_size}), bridged init\n"
            "  attention: global, e_kt = tanh(d_k^T W_h h_t)\n"
            "  generation: P_att = softmax(W_y tanh(W_k [d_k ; c_k]))\n"
            "  copy: P_cop = softmax_t(h_t^T (V [d_k ; c_k] + b_1) + b_2) over source words\n"
            f"  switch ({switch})\n"
            "  output: P(y_k) = z_k P_cop + (1 - z_k) P_att   [Eq. 2]"
            + (
                f"\n  coverage: attention history term + loss (weight {self.coverage_loss_weight})"
                if self.use_coverage
                else ""
            )
        )
