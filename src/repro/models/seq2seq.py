"""The Seq2Seq comparison baseline (Sutskever et al., 2014).

A plain encoder-decoder: stacked unidirectional LSTM encoder, decoder
initialized from the encoder's final states, and a vocabulary softmax over
the decoder hidden state. No attention and no copy path — the weakest system
in Table 1, included exactly as the paper includes it.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import PAD_ID, UNK_ID
from repro.models.base import (
    OOV_LOG_FLOOR,
    DecoderStepState,
    EncoderContext,
    QuestionGenerator,
)
from repro.models.config import ModelConfig
from repro.nn import LSTM, Dropout, Embedding, Linear, cross_entropy
from repro.tensor.core import Tensor
from repro.tensor.lazy import fusion_context
from repro.tensor.ops import log_softmax, softmax

__all__ = ["Seq2SeqBaseline"]


class Seq2SeqBaseline(QuestionGenerator):
    """Vanilla sequence-to-sequence model.

    Parameters
    ----------
    config:
        Shared hyperparameters.
    encoder_vocab_size, decoder_vocab_size:
        Sizes of the two (asymmetric) vocabularies.
    """

    name = "seq2seq"

    def __init__(
        self,
        config: ModelConfig,
        encoder_vocab_size: int,
        decoder_vocab_size: int,
    ) -> None:
        super().__init__(decoder_vocab_size)
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.encoder_embedding = Embedding(
            encoder_vocab_size, config.embedding_dim, rng, padding_idx=PAD_ID
        )
        self.decoder_embedding = Embedding(
            decoder_vocab_size, config.embedding_dim, rng, padding_idx=PAD_ID
        )
        self.encoder = LSTM(
            config.embedding_dim,
            config.hidden_size,
            config.num_layers,
            rng,
            dropout=config.dropout,
            dropout_seed=config.seed + 1,
        )
        self.decoder = LSTM(
            config.embedding_dim,
            config.hidden_size,
            config.num_layers,
            rng,
            dropout=config.dropout,
            dropout_seed=config.seed + 2,
        )
        self.output_projection = Linear(config.hidden_size, decoder_vocab_size, rng)
        self.output_dropout = Dropout(config.dropout, seed=config.seed + 3)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, batch: Batch) -> EncoderContext:
        embedded = self.encoder_embedding(batch.src)
        outputs, final_states = self.encoder(embedded, pad_mask=batch.src_pad_mask)
        return EncoderContext(
            encoder_states=outputs,  # unused by this model but kept uniform
            src_pad_mask=batch.src_pad_mask,
            src_ext=batch.src_ext,
            max_oov=max((len(t) for t in batch.oov_tokens), default=0),
            initial_states=final_states,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        # Opt-in kernel fusion for the step loop (no-op unless enabled).
        with fusion_context():
            return self._teacher_forced_loss(batch)

    def _teacher_forced_loss(self, batch: Batch) -> Tensor:
        context = self.encode(batch)
        states = list(context.initial_states)
        embedded = self.decoder_embedding(batch.tgt_input)
        time_steps = batch.tgt_input.shape[1]

        step_logits = []
        for t in range(time_steps):
            hidden, states = self.decoder.step(embedded[:, t, :], states)
            step_logits.append(self.output_projection(self.output_dropout(hidden)))

        valid = ~batch.tgt_pad_mask
        losses = []
        for t, logits in enumerate(step_logits):
            losses.append(
                cross_entropy(logits, batch.tgt_output[:, t], mask=valid[:, t])
                * float(valid[:, t].sum())
            )
        total = losses[0]
        for term in losses[1:]:
            total = total + term
        return total * (1.0 / float(valid.sum()))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def step_log_probs(
        self,
        prev_tokens: np.ndarray,
        state: DecoderStepState,
        context: EncoderContext,
        row_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, DecoderStepState]:
        token_ids = self.map_to_decoder_vocab(prev_tokens, self.decoder_vocab_size, UNK_ID)
        embedded = self.decoder_embedding(token_ids)
        hidden, new_states = self.decoder.step(embedded, state.lstm_states)
        logits = self.output_projection(hidden)
        log_probs = log_softmax(logits, axis=-1).data

        if context.max_oov:
            # No copy path: OOV slots are unreachable (decoders treat the
            # floor as non-viable, never as selectable mass).
            pad = np.full((log_probs.shape[0], context.max_oov), OOV_LOG_FLOOR)
            log_probs = np.concatenate([log_probs, pad], axis=1)
        return log_probs, DecoderStepState(new_states)

    def describe(self) -> str:
        cfg = self.config
        return (
            "Seq2Seq (Sutskever et al. 2014)\n"
            f"  encoder: {cfg.num_layers}-layer unidirectional LSTM({cfg.hidden_size})\n"
            f"  decoder: {cfg.num_layers}-layer LSTM({cfg.hidden_size}) "
            "initialized from encoder final states\n"
            "  output: softmax(W d_k) over the decoder vocabulary\n"
            "  attention: none | copy mechanism: none"
        )
