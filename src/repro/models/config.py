"""Model hyperparameter configuration.

Defaults are the paper's Section 4 settings (600-d LSTM states, 2 layers,
dropout 0.3, 300-d GloVe embeddings). The experiment harness instantiates
scaled-down copies for CPU training; the defaults remain as documentation of
the original configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Shared hyperparameters for all three model families."""

    embedding_dim: int = 300
    """Word embedding width (paper: GloVe 300-d)."""
    hidden_size: int = 600
    """LSTM hidden state width (paper: 600). The bidirectional encoder uses
    this per direction, so its per-position output is ``2 * hidden_size``."""
    num_layers: int = 2
    """Stacked LSTM depth (paper: 2)."""
    dropout: float = 0.3
    """Dropout probability (paper: 0.3)."""
    seed: int = 0
    """Seed for weight init and dropout masks."""

    def __post_init__(self) -> None:
        if self.embedding_dim < 1:
            raise ValueError(f"embedding_dim must be >= 1, got {self.embedding_dim}")
        if self.hidden_size < 1:
            raise ValueError(f"hidden_size must be >= 1, got {self.hidden_size}")
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")

    def scaled(self, **overrides) -> "ModelConfig":
        """A copy with some fields replaced (used by experiment configs)."""
        return replace(self, **overrides)
