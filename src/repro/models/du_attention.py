"""The Du et al. (2017) attention baseline ("Du-sent" / "Du-para").

Architecture, following the paper's Section 3 (which ACNN extends):

- bidirectional LSTM encoder over the sentence or truncated paragraph;
- decoder LSTM whose initial state is a learned bridge from the encoder's
  final forward/backward states;
- global attention (:class:`~repro.nn.attention.GlobalAttention`) producing
  a context vector ``c_k`` per decoding step;
- generation distribution ``P_att(y_k) = softmax(W_y tanh(W_k [d_k ; c_k]))``
  over the decoder vocabulary (Eq. 2's attention component).

No copy mechanism: out-of-vocabulary question words cannot be produced,
which is precisely the deficit the ACNN addresses.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import PAD_ID, UNK_ID
from repro.models.base import (
    OOV_LOG_FLOOR,
    DecoderStepState,
    EncoderContext,
    QuestionGenerator,
)
from repro.models.config import ModelConfig
from repro.nn import BidirectionalLSTM, Dropout, Embedding, GlobalAttention, Linear, LSTM
from repro.nn.lstm import State
from repro.tensor.core import Tensor
from repro.tensor.lazy import fusion_context
from repro.tensor.ops import concat, gather_rows, log_softmax, tanh

__all__ = ["DuAttentionModel"]


class DuAttentionModel(QuestionGenerator):
    """Bi-LSTM encoder + global-attention decoder (no copying)."""

    name = "du-attention"

    def __init__(
        self,
        config: ModelConfig,
        encoder_vocab_size: int,
        decoder_vocab_size: int,
        use_answer_features: bool = False,
        answer_feature_dim: int = 8,
    ) -> None:
        super().__init__(decoder_vocab_size)
        self.config = config
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden_size
        self.encoder_output_size = 2 * hidden
        self.use_answer_features = use_answer_features

        self.encoder_embedding = Embedding(
            encoder_vocab_size, config.embedding_dim, rng, padding_idx=PAD_ID
        )
        self.decoder_embedding = Embedding(
            decoder_vocab_size, config.embedding_dim, rng, padding_idx=PAD_ID
        )
        encoder_input_size = config.embedding_dim
        if use_answer_features:
            # Zhou et al. (2017) answer-position features: a learned tag
            # embedding (outside/inside the answer span) concatenated onto
            # each encoder input token.
            if answer_feature_dim < 1:
                raise ValueError(f"answer_feature_dim must be >= 1, got {answer_feature_dim}")
            self.answer_embedding = Embedding(2, answer_feature_dim, rng)
            encoder_input_size += answer_feature_dim
        else:
            self.answer_embedding = None
        self.encoder = BidirectionalLSTM(
            encoder_input_size,
            hidden,
            config.num_layers,
            rng,
            dropout=config.dropout,
            dropout_seed=config.seed + 1,
        )
        self.decoder = LSTM(
            config.embedding_dim,
            hidden,
            config.num_layers,
            rng,
            dropout=config.dropout,
            dropout_seed=config.seed + 3,
        )
        self.attention = GlobalAttention(hidden, self.encoder_output_size, rng)
        # Bridges from [h_fwd ; h_bwd] to the decoder's start state, one pair
        # of projections per layer.
        self.bridge_h = [Linear(self.encoder_output_size, hidden, rng) for _ in range(config.num_layers)]
        self.bridge_c = [Linear(self.encoder_output_size, hidden, rng) for _ in range(config.num_layers)]
        for layer, (bh, bc) in enumerate(zip(self.bridge_h, self.bridge_c)):
            setattr(self, f"bridge_h_{layer}", bh)
            setattr(self, f"bridge_c_{layer}", bc)
        # Readout: P_att = softmax(W_y tanh(W_k [d_k ; c_k])).
        self.readout = Linear(hidden + self.encoder_output_size, hidden, rng)
        self.output_projection = Linear(hidden, decoder_vocab_size, rng)
        self.output_dropout = Dropout(config.dropout, seed=config.seed + 4)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, batch: Batch) -> EncoderContext:
        embedded = self.encoder_embedding(batch.src)
        if self.answer_embedding is not None:
            tags = batch.answer_mask.astype(np.int64)
            embedded = concat([embedded, self.answer_embedding(tags)], axis=2)
        outputs, fwd_states, bwd_states = self.encoder(embedded, pad_mask=batch.src_pad_mask)
        initial: list[State] = []
        for layer in range(self.config.num_layers):
            h = concat([fwd_states[layer][0], bwd_states[layer][0]], axis=1)
            c = concat([fwd_states[layer][1], bwd_states[layer][1]], axis=1)
            initial.append((tanh(self.bridge_h[layer](h)), tanh(self.bridge_c[layer](c))))
        return EncoderContext(
            encoder_states=outputs,
            src_pad_mask=batch.src_pad_mask,
            src_ext=batch.src_ext,
            max_oov=max((len(t) for t in batch.oov_tokens), default=0),
            initial_states=initial,
        )

    # ------------------------------------------------------------------
    # Shared decode step (also used by the ACNN subclass)
    # ------------------------------------------------------------------
    def _decode_step(
        self,
        x_embedded: Tensor,
        states: list[State],
        encoder_states: Tensor,
        src_pad_mask: np.ndarray,
        coverage: Tensor | None = None,
    ) -> tuple[Tensor, Tensor, Tensor, Tensor, list[State]]:
        """One step of the attentional decoder.

        Returns ``(d_k, c_k, attention_weights, vocab_logits, new_states)``.
        """
        d_k, new_states = self.decoder.step(x_embedded, states)
        c_k, attn_weights = self.attention(
            d_k, encoder_states, pad_mask=src_pad_mask, coverage=coverage
        )
        readout = tanh(self.readout(concat([d_k, c_k], axis=1)))
        logits = self.output_projection(self.output_dropout(readout))
        return d_k, c_k, attn_weights, logits, new_states

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        # Opt-in kernel fusion for the step loop (no-op unless enabled).
        with fusion_context():
            return self._teacher_forced_loss(batch)

    def _teacher_forced_loss(self, batch: Batch) -> Tensor:
        context = self.encode(batch)
        states = list(context.initial_states)
        embedded = self.decoder_embedding(batch.tgt_input)
        time_steps = batch.tgt_input.shape[1]
        valid = ~batch.tgt_pad_mask

        total = None
        for t in range(time_steps):
            _, _, _, logits, states = self._decode_step(
                embedded[:, t, :], states, context.encoder_states, context.src_pad_mask
            )
            log_probs = log_softmax(logits, axis=-1)
            picked = gather_rows(log_probs, batch.tgt_output[:, t])
            weighted = (picked * Tensor(valid[:, t].astype(float))).sum()
            total = weighted if total is None else total + weighted
        return -total * (1.0 / float(valid.sum()))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def step_log_probs(
        self,
        prev_tokens: np.ndarray,
        state: DecoderStepState,
        context: EncoderContext,
        row_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, DecoderStepState]:
        encoder_states, src_pad_mask, _ = self._context_rows(context, row_indices)
        token_ids = self.map_to_decoder_vocab(prev_tokens, self.decoder_vocab_size, UNK_ID)
        embedded = self.decoder_embedding(token_ids)
        _, _, _, logits, new_states = self._decode_step(
            embedded, state.lstm_states, encoder_states, src_pad_mask
        )
        log_probs = log_softmax(logits, axis=-1).data
        if context.max_oov:
            # No copy path: OOV slots are unreachable (decoders treat the
            # floor as non-viable, never as selectable mass).
            pad = np.full((log_probs.shape[0], context.max_oov), OOV_LOG_FLOOR)
            log_probs = np.concatenate([log_probs, pad], axis=1)
        return log_probs, DecoderStepState(new_states)

    def describe(self) -> str:
        cfg = self.config
        return (
            "Du et al. (2017) attention model\n"
            f"  encoder: {cfg.num_layers}-layer bidirectional LSTM({cfg.hidden_size} per direction)\n"
            f"  decoder: {cfg.num_layers}-layer LSTM({cfg.hidden_size}), bridged init\n"
            "  attention: global, e_kt = tanh(d_k^T W_h h_t)\n"
            "  output: P_att = softmax(W_y tanh(W_k [d_k ; c_k]))\n"
            "  copy mechanism: none"
        )
