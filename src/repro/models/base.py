"""Shared model interface.

All three systems (Seq2Seq baseline, Du et al. attention model, ACNN)
implement :class:`QuestionGenerator`:

- :meth:`loss` — teacher-forced training loss on a :class:`Batch`;
- :meth:`encode` — run the encoder, producing an :class:`EncoderContext`;
- :meth:`initial_decoder_state` / :meth:`step_log_probs` — the incremental
  decoding interface the greedy/beam decoders drive.

``step_log_probs`` returns log-probabilities over the *extended* vocabulary
(decoder vocab followed by per-example source OOV slots); models without a
copy path simply return zero-probability for the OOV slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.batching import Batch
from repro.nn.module import Module
from repro.tensor.core import Tensor

__all__ = [
    "EncoderContext",
    "DecoderStepState",
    "NonFiniteLogits",
    "QuestionGenerator",
    "OOV_LOG_FLOOR",
    "expand_encoder_context",
]

State = tuple[Tensor, Tensor]

OOV_LOG_FLOOR = -1e18
"""Log-probability stamp for extended-vocab slots a model cannot reach
(models without a copy path). Far below any real log-probability; decoders
treat anything at or below ``OOV_LOG_FLOOR / 10`` as non-viable."""


class NonFiniteLogits(RuntimeError):
    """A decode step produced NaN log-probabilities.

    ``-inf`` is a legitimate masking value (PAD/BOS, unreachable OOV
    slots), but NaN is always a contract violation — diverged weights, a
    numerically broken step, or an injected fault. The decoders raise this
    typed error instead of silently selecting nothing and returning empty
    hypotheses, so a serving layer can degrade or retry explicitly.
    """

    def __init__(self, where: str, step: int | None = None, rows: int = 0) -> None:
        detail = f" at step {step}" if step is not None else ""
        super().__init__(
            f"non-finite (NaN) log-probabilities from {where}{detail}"
            + (f" in {rows} row(s)" if rows else "")
        )
        self.where = where
        self.step = step
        self.rows = rows


@dataclass
class EncoderContext:
    """Everything decoding needs about an encoded batch."""

    encoder_states: Tensor
    """(B, S, enc_out) per-position encoder representations (None-like zero
    tensor for the attention-free baseline, which ignores it)."""
    src_pad_mask: np.ndarray
    """(B, S) True at padding."""
    src_ext: np.ndarray
    """(B, S) extended-vocabulary ids for copy scattering."""
    max_oov: int
    """Largest per-example OOV count in the batch."""
    initial_states: list[State]
    """Per-layer decoder start states (bridged from the encoder)."""

    @property
    def batch_size(self) -> int:
        return self.src_ext.shape[0]


def expand_encoder_context(context: EncoderContext, beam_size: int) -> EncoderContext:
    """Repeat every per-example row ``beam_size`` times along the batch axis.

    Row ``i`` of the result backs hypothesis-frontier row ``i`` of the
    batched beam engine, i.e. example ``i // beam_size``. Expanding once up
    front lets every subsequent :meth:`QuestionGenerator.step_log_probs`
    call run with ``row_indices=None`` (rows align 1:1 with the frontier)
    instead of re-gathering encoder tensors on every step.
    """
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")
    if beam_size == 1:
        return context

    def repeat(array: np.ndarray) -> np.ndarray:
        return np.repeat(array, beam_size, axis=0)

    return EncoderContext(
        encoder_states=Tensor(repeat(context.encoder_states.data)),
        src_pad_mask=repeat(context.src_pad_mask),
        src_ext=repeat(context.src_ext),
        max_oov=context.max_oov,
        initial_states=[
            (Tensor(repeat(h.data)), Tensor(repeat(c.data)))
            for h, c in context.initial_states
        ],
    )


@dataclass
class DecoderStepState:
    """Recurrent decoder state carried between steps."""

    lstm_states: list[State]
    coverage: np.ndarray | None = None
    """(B, S) accumulated attention (only for coverage-enabled models)."""

    def select(self, indices: np.ndarray) -> "DecoderStepState":
        """Reorder/duplicate along the batch axis (beam bookkeeping)."""
        picked = [
            (Tensor(h.data[indices]), Tensor(c.data[indices]))
            for h, c in self.lstm_states
        ]
        coverage = self.coverage[indices] if self.coverage is not None else None
        return DecoderStepState(picked, coverage=coverage)


class QuestionGenerator(Module):
    """Abstract base for every model in the comparison."""

    name: str = "base"

    def __init__(self, decoder_vocab_size: int) -> None:
        super().__init__()
        self.decoder_vocab_size = decoder_vocab_size

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        """Teacher-forced token-averaged NLL for one batch."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Decoding interface
    # ------------------------------------------------------------------
    def encode(self, batch: Batch) -> EncoderContext:
        """Run the encoder over a batch (call under ``no_grad`` for eval)."""
        raise NotImplementedError

    def initial_decoder_state(self, context: EncoderContext) -> DecoderStepState:
        """The decoder state before the first step (bridged encoder states)."""
        return DecoderStepState(list(context.initial_states))

    def step_log_probs(
        self,
        prev_tokens: np.ndarray,
        state: DecoderStepState,
        context: EncoderContext,
        row_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, DecoderStepState]:
        """One decoding step.

        Parameters
        ----------
        prev_tokens:
            ``(B,)`` previously generated extended-vocab ids (ids beyond the
            decoder vocabulary are fed back as UNK).
        state:
            Recurrent state from the previous step.
        context:
            Output of :meth:`encode`. With ``row_indices=None`` the rows of
            ``prev_tokens``/``state`` align 1:1 with the context's batch
            rows — the batched beam engine relies on this after expanding
            the context once via :func:`expand_encoder_context`. When the
            per-example beam expands one encoded example into several
            hypothesis rows instead, ``row_indices`` maps each row of
            ``prev_tokens`` onto the context's batch row.

        Returns
        -------
        log_probs, new_state:
            ``log_probs`` is ``(B, decoder_vocab + max_oov)``.
        """
        raise NotImplementedError

    def extended_vocab_size(self, context: EncoderContext) -> int:
        """Decoder vocabulary plus this batch's per-example OOV slots."""
        return self.decoder_vocab_size + context.max_oov

    # ------------------------------------------------------------------
    # Introspection (Figure 1 reproduction)
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable component inventory of the architecture."""
        raise NotImplementedError

    @staticmethod
    def _context_rows(context: EncoderContext, row_indices: np.ndarray | None):
        """Encoder tensors for the requested rows.

        ``row_indices=None`` is the batched contract: the caller guarantees
        its step rows already align 1:1 with the context rows (either a
        plain batch, or a frontier over a pre-expanded context), so no
        gather happens. A non-None ``row_indices`` is the per-example beam's
        per-step re-gather.
        """
        if row_indices is None:
            return context.encoder_states, context.src_pad_mask, context.src_ext
        states = Tensor(context.encoder_states.data[row_indices])
        return states, context.src_pad_mask[row_indices], context.src_ext[row_indices]

    @staticmethod
    def map_to_decoder_vocab(prev_tokens: np.ndarray, vocab_size: int, unk_id: int) -> np.ndarray:
        """Replace extended-vocab ids (copied OOVs) with UNK for embedding."""
        prev_tokens = np.asarray(prev_tokens)
        return np.where(prev_tokens >= vocab_size, unk_id, prev_tokens)
