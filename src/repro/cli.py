"""The ``acnn`` command-line interface.

Subcommands:

- ``acnn stats``     — corpus statistics (synthetic by default, or a real
  SQuAD JSON / Du-split via flags).
- ``acnn train``     — train any model family and save a reusable bundle.
- ``acnn evaluate``  — BLEU-1..4 / ROUGE-L of a saved bundle on a test split.
- ``acnn generate``  — generate questions for sentences from a file or stdin.
- ``acnn serve``     — run sentences through the hardened inference service
  (admission, deadlines, degradation ladder, breaker; optional chaos).

Every subcommand is offline-first: with no data flags it uses the synthetic
SQuAD-style corpus, so the full train → evaluate → generate loop works on an
air-gapped machine.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.data import (
    BatchIterator,
    LoadReport,
    QGDataset,
    QGExample,
    ShardedCorpus,
    SourceMode,
    StreamingQGDataset,
    SyntheticConfig,
    collate,
    corpus_statistics,
    detokenize,
    generate_corpus,
    ingest_examples,
    load_du_split,
    load_squad_json,
    split_corpus,
    tokenize,
    vocabulary_coverage,
)
from repro.decoding import beam_decode, extended_ids_to_tokens
from repro.evaluation import analyse_predictions, evaluate_model
from repro.models import ModelConfig, build_model
from repro.observability import JsonlSink, Telemetry, TerminalSink
from repro.training import (
    ElasticConfig,
    ElasticTrainer,
    ResilienceConfig,
    Trainer,
    TrainerConfig,
    TrainingInterrupted,
)
from repro.tensor.lazy import set_fusion_enabled
from repro.training.bundle import ModelBundle

__all__ = ["main"]


def _add_fusion_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fusion",
        action="store_true",
        help="enable lazy kernel fusion (staged execution with arena "
        "replay; identical outputs, fewer Python-level ops per step)",
    )


def _apply_fusion(args) -> None:
    """Raise the process-wide fusion default when ``--fusion`` was passed."""
    if getattr(args, "fusion", False):
        set_fusion_enabled(True)


def _build_telemetry(telemetry_dir: str | None) -> Telemetry | None:
    """JSONL + terminal hub under ``telemetry_dir`` (None = no telemetry)."""
    if not telemetry_dir:
        return None
    os.makedirs(telemetry_dir, exist_ok=True)
    return Telemetry(
        [JsonlSink(os.path.join(telemetry_dir, "trace.jsonl")), TerminalSink()]
    )


def _load_report(args) -> LoadReport:
    return LoadReport(max_skip_fraction=getattr(args, "max_skip_fraction", None))


def _print_load_report(report: LoadReport) -> None:
    if report.skipped:
        print(f"[data] {report.summary()}", file=sys.stderr)


def _load_examples(args):
    """Examples from --shards / --squad-json / --du-src+--du-tgt / synthetic.

    The shard-store path returns a lazy memory-mapped sequence; the others
    return lists. Either way the result is indexable and iterable, and the
    file-backed paths count (and bound, via ``--max-skip-fraction``)
    skipped records.
    """
    if getattr(args, "shards", None):
        report = _load_report(args)
        corpus = ShardedCorpus.open(args.shards, strict=args.strict_data, report=report)
        _print_load_report(report)
        return corpus
    if args.squad_json:
        report = _load_report(args)
        examples = load_squad_json(args.squad_json, report=report)
        _print_load_report(report)
        return examples
    if args.du_src and args.du_tgt:
        report = _load_report(args)
        examples = load_du_split(
            args.du_src, args.du_tgt, args.du_para, report=report
        )
        _print_load_report(report)
        return examples
    corpus = generate_corpus(
        SyntheticConfig(
            num_train=args.train_size,
            num_dev=max(1, args.train_size // 8),
            num_test=max(1, args.train_size // 8),
            seed=args.seed,
        )
    )
    return list(corpus.train) + list(corpus.dev) + list(corpus.test)


def _add_data_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--squad-json", help="path to a SQuAD v1.1 JSON file")
    parser.add_argument("--du-src", help="Du et al. split: source sentences file")
    parser.add_argument("--du-tgt", help="Du et al. split: questions file")
    parser.add_argument("--du-para", help="Du et al. split: paragraphs file (optional)")
    parser.add_argument(
        "--shards",
        help=(
            "directory of an ingested shard store (see `acnn ingest`): "
            "memory-mapped, checksummed, shared across elastic workers"
        ),
    )
    parser.add_argument(
        "--max-skip-fraction",
        type=float,
        default=0.5,
        help=(
            "fail with a typed error when loaders skip more than this "
            "fraction of records instead of training on the survivors"
        ),
    )
    parser.add_argument(
        "--strict-data",
        action="store_true",
        help=(
            "shard store: fail fast on the first corrupt record instead of "
            "quarantining and counting it"
        ),
    )
    parser.add_argument("--train-size", type=int, default=1500, help="synthetic corpus size")
    parser.add_argument("--seed", type=int, default=13)


def _cmd_ingest(args) -> int:
    from repro.data import save_vocabs, vocab_params

    examples = _load_examples(args)
    result = ingest_examples(
        examples,
        args.out,
        shard_records=args.shard_records,
        resume=not args.no_resume,
    )
    manifest = result.manifest
    if result.ingested == 0 and result.resumed_from == manifest.total_records:
        print(f"shard store {args.out} already complete; nothing to do")
    elif result.resumed_from:
        print(
            f"resumed at record {result.resumed_from}, "
            f"ingested {result.ingested} more"
        )
    else:
        print(f"ingested {result.ingested} records")
    print(
        f"{manifest.total_records} records in {len(manifest.shards)} shards "
        f"({args.shard_records}/shard), manifest digest {result.digest[:16]}…"
    )
    if not args.no_vocabs:
        # One streaming pass over the mmapped store (never materialized):
        # the record covers the whole corpus, so it is independent of any
        # later split seed and every consumer agrees on the token ids.
        source_mode = (
            SourceMode.PARAGRAPH if args.mode == "paragraph" else SourceMode.SENTENCE
        )
        corpus = ShardedCorpus.open(args.out)
        try:
            encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
                iter(corpus),
                encoder_vocab_size=args.encoder_vocab_size,
                decoder_vocab_size=args.decoder_vocab_size,
                source_mode=source_mode,
                paragraph_length=args.paragraph_length,
            )
        finally:
            corpus.close()
        save_vocabs(
            args.out,
            encoder_vocab,
            decoder_vocab,
            result.digest,
            vocab_params(
                args.encoder_vocab_size,
                args.decoder_vocab_size,
                source_mode,
                args.paragraph_length,
            ),
        )
        print(
            f"recorded vocabularies ({len(encoder_vocab)} encoder / "
            f"{len(decoder_vocab)} decoder) — `acnn train --shards` skips the re-scan"
        )
    print(f"train from it with: acnn train --shards {args.out} ...")
    return 0


def _cmd_stats(args) -> int:
    examples = _load_examples(args)
    stats = corpus_statistics(examples)
    print(stats.render())
    if args.decoder_vocab_size:
        encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
            examples, args.encoder_vocab_size, args.decoder_vocab_size
        )
        coverage = vocabulary_coverage(examples, decoder_vocab, side="question")
        print(f"decoder vocab ({len(decoder_vocab)}) question coverage: {100 * coverage:.1f}%")
    return 0


def _cmd_train(args) -> int:
    from repro.data import split_examples

    _apply_fusion(args)

    examples = _load_examples(args)
    from_shards = bool(getattr(args, "shards", None))
    if from_shards:
        # Same seeded shuffle and cut points as split_examples, but the
        # splits stay lazy views over the shared mmap-backed corpus.
        train_examples, dev_examples, _ = split_corpus(
            examples, dev_fraction=0.15, test_fraction=0.0, seed=args.seed
        )
    else:
        train_examples, dev_examples, _ = split_examples(
            examples, dev_fraction=0.15, test_fraction=0.0, seed=args.seed
        )

    source_mode = SourceMode.PARAGRAPH if args.mode == "paragraph" else SourceMode.SENTENCE
    recorded = None
    if from_shards:
        from repro.data import load_vocabs, vocab_params

        # Vocabularies recorded at ingest time (whole-corpus, digest-stamped)
        # make the re-scan unnecessary. A record that no longer matches the
        # store or these flags raises VocabsMismatchError instead of
        # silently shifting every token id.
        recorded = load_vocabs(
            args.shards,
            examples.corpus_digest,
            vocab_params(
                args.encoder_vocab_size,
                args.decoder_vocab_size,
                source_mode,
                args.paragraph_length,
            ),
        )
    if recorded is not None:
        encoder_vocab, decoder_vocab = recorded
        print("using vocabularies recorded at ingest time (corpus re-scan skipped)")
    else:
        encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
            iter(train_examples),
            encoder_vocab_size=args.encoder_vocab_size,
            decoder_vocab_size=args.decoder_vocab_size,
            source_mode=source_mode,
            paragraph_length=args.paragraph_length,
        )
    dataset_cls = StreamingQGDataset if from_shards else QGDataset
    train_set = dataset_cls(
        train_examples, encoder_vocab, decoder_vocab,
        source_mode=source_mode, paragraph_length=args.paragraph_length,
    )
    dev_set = dataset_cls(
        dev_examples, encoder_vocab, decoder_vocab,
        source_mode=source_mode, paragraph_length=args.paragraph_length,
    )

    model_config = ModelConfig(
        embedding_dim=args.embedding_dim,
        hidden_size=args.hidden_size,
        num_layers=args.num_layers,
        dropout=args.dropout,
        seed=args.seed,
    )
    model_kwargs = {}
    if args.family == "acnn":
        if args.coverage:
            model_kwargs["use_coverage"] = True
        if args.answer_features:
            model_kwargs["use_answer_features"] = True
    model = build_model(args.family, model_config, len(encoder_vocab), len(decoder_vocab), **model_kwargs)
    print(f"{args.family}: {model.num_parameters():,} parameters")

    snapshot_dir = args.snapshot_dir
    if args.resume and not snapshot_dir:
        snapshot_dir = args.out + ".snapshots"
    resilience = None
    if snapshot_dir:
        resilience = ResilienceConfig(
            directory=snapshot_dir,
            every_n_batches=args.snapshot_every,
            max_retries=args.max_retries,
            handle_signals=True,
        )

    telemetry = _build_telemetry(args.telemetry_dir)

    def epoch_callback(r):
        line = (
            f"epoch {r.epoch}: train {r.train_loss:.4f} "
            f"dev {r.dev_loss:.4f} lr {r.learning_rate:g}"
        )
        if telemetry is not None:
            telemetry.log(line)
        else:
            print(line)

    trainer_config = TrainerConfig(
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        halve_at_epoch=args.halve_at_epoch,
        log_every=args.log_every,
        detect_anomaly=args.detect_anomaly,
        overflow_policy=args.overflow_policy,
    )
    use_elastic = args.elastic or args.workers is not None
    if use_elastic:
        workers = args.workers if args.workers is not None else 2
        trainer = ElasticTrainer(
            model,
            train_set,
            batch_size=args.batch_size,
            dev_iterator=BatchIterator(dev_set, batch_size=args.batch_size, shuffle=False),
            config=trainer_config,
            elastic=ElasticConfig(workers=workers, worker_timeout=args.worker_timeout),
            epoch_callback=epoch_callback,
            resilience=resilience,
            telemetry=telemetry,
            run_seed=args.seed,
        )
    else:
        trainer = Trainer(
            model,
            BatchIterator(train_set, batch_size=args.batch_size, seed=args.seed),
            BatchIterator(dev_set, batch_size=args.batch_size, shuffle=False),
            trainer_config,
            epoch_callback=epoch_callback,
            resilience=resilience,
            telemetry=telemetry,
        )
    try:
        history = trainer.train(resume_from=snapshot_dir if args.resume else None)
    except TrainingInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        print(
            f"resume with: acnn train --resume --snapshot-dir {snapshot_dir} "
            f"--out {args.out} (plus the original flags)",
            file=sys.stderr,
        )
        return 130
    finally:
        if telemetry is not None:
            telemetry.close()

    bundle = ModelBundle(
        model=model,
        encoder_vocab=encoder_vocab,
        decoder_vocab=decoder_vocab,
        family=args.family,
        model_config=model_config,
        model_kwargs=model_kwargs,
        metadata={
            "mode": args.mode,
            "paragraph_length": args.paragraph_length,
            "best_dev_epoch": history.best_dev_epoch,
            "best_dev_loss": history.best_dev_loss,
        },
    )
    bundle.save(args.out)
    print(f"bundle saved to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    _apply_fusion(args)
    bundle = ModelBundle.load(args.bundle)
    examples = _load_examples(args)
    test_examples = examples[-args.num_examples:] if args.num_examples else examples
    mode = bundle.metadata.get("mode", "sentence")
    source_mode = SourceMode.PARAGRAPH if mode == "paragraph" else SourceMode.SENTENCE
    dataset = QGDataset(
        test_examples,
        bundle.encoder_vocab,
        bundle.decoder_vocab,
        source_mode=source_mode,
        paragraph_length=bundle.metadata.get("paragraph_length", 100),
    )
    telemetry = _build_telemetry(args.telemetry_dir)
    try:
        result = evaluate_model(
            bundle.model,
            dataset,
            beam_size=args.beam_size,
            max_length=args.max_length,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    print(result.summary())
    analysis = analyse_predictions(result.predictions, result.references, bundle.decoder_vocab)
    print(analysis.summary())
    return 0


def _cmd_generate(args) -> int:
    _apply_fusion(args)
    bundle = ModelBundle.load(args.bundle)
    if args.input:
        with open(args.input, encoding="utf-8") as handle:
            lines = [line.strip() for line in handle if line.strip()]
    else:
        lines = [line.strip() for line in sys.stdin if line.strip()]

    for line in lines:
        tokens = tuple(tokenize(line))
        if not tokens:
            continue
        example = QGExample(sentence=tokens, paragraph=tokens, question=("?",))
        dataset = QGDataset([example], bundle.encoder_vocab, bundle.decoder_vocab)
        batch = collate(list(dataset), pad_id=0)
        hypothesis = beam_decode(
            bundle.model, batch, beam_size=args.beam_size, max_length=args.max_length
        )[0]
        question = extended_ids_to_tokens(
            hypothesis.token_ids, bundle.decoder_vocab, batch.examples[0].oov_tokens
        )
        print(detokenize(question))
    return 0


def _print_outcomes(outcomes) -> None:
    for outcome in sorted(outcomes, key=lambda o: o.request_id):
        if outcome.status == "served":
            rung = outcome.result.rung
            print(f"[{outcome.request_id}] ({rung}) {outcome.result.question}")
        else:
            detail = outcome.reason or outcome.error or ""
            print(f"[{outcome.request_id}] {outcome.status}: {detail}")


def _install_hup_reload(enabled: bool) -> dict:
    """Latch SIGHUP into a flag the serve loop polls between submissions."""
    import signal as signal_module

    flag = {"pending": False}
    if enabled and hasattr(signal_module, "SIGHUP"):
        def _hup(signum, frame):  # noqa: ARG001 - signal handler signature
            flag["pending"] = True

        signal_module.signal(signal_module.SIGHUP, _hup)
    return flag


def _cmd_serve(args) -> int:
    import json

    _apply_fusion(args)

    from repro.serving import (
        AdmissionPolicy,
        ContinuousBatchingEngine,
        DrainGuard,
        EncoderStateCache,
        EngineConfig,
        FaultPlan,
        GenerationRequest,
        InferenceService,
        MicroBatcher,
        PoolConfig,
        RequestOutcome,
        ServiceConfig,
        ServingPool,
    )

    bundle = ModelBundle.load(args.bundle)
    # Signal handlers go in before the (possibly blocking) input read: a
    # SIGTERM or SIGHUP while waiting on a pipe must latch, not kill.
    drain_guard = DrainGuard().install()
    reload_flag = _install_hup_reload(args.reload_on_hup)
    if args.input:
        with open(args.input, encoding="utf-8") as handle:
            lines = [line.strip() for line in handle if line.strip()]
    else:
        lines = [line.strip() for line in sys.stdin if line.strip()]

    telemetry = _build_telemetry(args.telemetry_dir)
    policy = AdmissionPolicy(max_unk_density=args.max_unk_density)
    service_config = ServiceConfig(default_deadline_seconds=args.deadline)
    engine_config = EngineConfig(
        max_rows=args.max_rows,
        queue_limit=args.queue_limit,
        admit_per_step=args.admit_per_step,
    )

    if args.pool_workers > 0:
        # Multi-process fleet: the coordinator owns admission + the ledger;
        # each worker runs its own continuous-batching engine over the
        # fork-shared weights. (The model-level chaos seam is per-process;
        # --fault-rate applies to single-process serving only.)
        if args.fault_rate > 0:
            print("[serve] --fault-rate is ignored with --pool-workers", file=sys.stderr)
        pool = ServingPool(
            bundle.model,
            bundle.encoder_vocab,
            bundle.decoder_vocab,
            policy=policy,
            service_config=service_config,
            engine_config=engine_config,
            config=PoolConfig(workers=args.pool_workers),
            telemetry=telemetry,
            cache_size=args.cache_size,
        )
        try:
            outcomes = []
            for index, line in enumerate(lines):
                if reload_flag["pending"]:
                    reload_flag["pending"] = False
                    fingerprint = pool.reload_weights(args.bundle)
                    print(f"[serve] reloaded weights → {fingerprint[:16]}…", file=sys.stderr)
                if drain_guard.draining:
                    pool.begin_drain()
                request = GenerationRequest(
                    line,
                    request_id=f"req-{index}",
                    beam_size=args.beam_size,
                    max_length=args.max_length,
                )
                outcome = pool.submit(request)
                if outcome is not None:
                    outcomes.append(outcome)
            outcomes.extend(pool.drain())
            _print_outcomes(outcomes)
            print(json.dumps(pool.report(), indent=2), file=sys.stderr)
        finally:
            pool.shutdown()
            drain_guard.restore()
            if telemetry is not None:
                telemetry.close()
        return 0

    fault_plan = None
    if args.fault_rate > 0:
        fault_plan = FaultPlan(
            seed=args.fault_seed,
            nan_rate=args.fault_rate,
            slow_rate=args.fault_rate,
            error_rate=args.fault_rate,
            per_request=True,
        )
    cache = EncoderStateCache(args.cache_size, telemetry=telemetry) if args.cache_size else None
    service = InferenceService(
        bundle.model,
        bundle.encoder_vocab,
        bundle.decoder_vocab,
        policy=policy,
        config=service_config,
        telemetry=telemetry,
        fault_plan=fault_plan,
        encoder_cache=cache,
    )
    if args.batching == "continuous":
        frontend = ContinuousBatchingEngine(service, engine_config)
    else:
        frontend = MicroBatcher(
            service, max_batch=args.max_batch, queue_limit=args.queue_limit
        )
    try:
        outcomes = []
        for index, line in enumerate(lines):
            if reload_flag["pending"]:
                reload_flag["pending"] = False
                from repro.training.checkpoint import load_checkpoint

                load_checkpoint(os.path.join(args.bundle, "model"), bundle.model)
                if cache is not None:
                    cache.refresh(bundle.model)
                print("[serve] reloaded weights from bundle", file=sys.stderr)
            if drain_guard.draining:
                # Graceful drain: admission stops, in-flight work still
                # resolves through the deadline machinery below.
                service.note_shed("draining")
                outcomes.append(
                    RequestOutcome(
                        f"req-{index}", "shed", error="RequestShed", reason="draining"
                    )
                )
                continue
            request = GenerationRequest(
                line,
                request_id=f"req-{index}",
                beam_size=args.beam_size,
                max_length=args.max_length,
            )
            outcome = frontend.submit(request)
            if outcome is not None:
                outcomes.append(outcome)
        outcomes.extend(frontend.drain())
        _print_outcomes(outcomes)
        print(json.dumps(service.report(), indent=2), file=sys.stderr)
    finally:
        drain_guard.restore()
        if telemetry is not None:
            telemetry.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="acnn", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    ingest = subparsers.add_parser(
        "ingest",
        help=(
            "ingest a corpus into a crash-safe memory-mapped shard store; "
            "resumable — re-running after a kill continues from the last "
            "published manifest entry, bit-identical to an uninterrupted run"
        ),
    )
    _add_data_flags(ingest)
    ingest.add_argument("--out", required=True, help="shard store output directory")
    ingest.add_argument(
        "--shard-records",
        type=int,
        default=2048,
        help="records per shard file (must match on resume)",
    )
    ingest.add_argument(
        "--no-resume",
        action="store_true",
        help="discard any existing shards/manifest in --out and rebuild",
    )
    ingest.add_argument("--mode", default="sentence", choices=["sentence", "paragraph"])
    ingest.add_argument("--paragraph-length", type=int, default=100)
    ingest.add_argument("--encoder-vocab-size", type=int, default=1500)
    ingest.add_argument("--decoder-vocab-size", type=int, default=150)
    ingest.add_argument(
        "--no-vocabs",
        action="store_true",
        help=(
            "skip recording vocabularies in the store (training will then "
            "re-scan the corpus to build them)"
        ),
    )
    ingest.set_defaults(handler=_cmd_ingest)

    stats = subparsers.add_parser("stats", help="corpus statistics")
    _add_data_flags(stats)
    stats.add_argument("--encoder-vocab-size", type=int, default=45000)
    stats.add_argument("--decoder-vocab-size", type=int, default=0)
    stats.set_defaults(handler=_cmd_stats)

    train = subparsers.add_parser("train", help="train a model and save a bundle")
    _add_data_flags(train)
    train.add_argument("--family", default="acnn", choices=["acnn", "du-attention", "seq2seq"])
    train.add_argument("--mode", default="sentence", choices=["sentence", "paragraph"])
    train.add_argument("--paragraph-length", type=int, default=100)
    train.add_argument("--encoder-vocab-size", type=int, default=1500)
    train.add_argument("--decoder-vocab-size", type=int, default=150)
    train.add_argument("--embedding-dim", type=int, default=32)
    train.add_argument("--hidden-size", type=int, default=48)
    train.add_argument("--num-layers", type=int, default=2)
    train.add_argument("--dropout", type=float, default=0.3)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--learning-rate", type=float, default=1.0)
    train.add_argument("--halve-at-epoch", type=int, default=8)
    train.add_argument("--coverage", action="store_true", help="enable the coverage extension")
    train.add_argument("--answer-features", action="store_true", help="enable answer tags")
    train.add_argument("--out", required=True, help="bundle output directory")
    train.add_argument(
        "--snapshot-dir",
        help=(
            "enable fault-tolerant training: write rotating run snapshots "
            "here and take a final graceful snapshot on SIGINT/SIGTERM "
            "(default with --resume: <out>.snapshots)"
        ),
    )
    train.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="also snapshot every N batches (0 = per-epoch snapshots only)",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="restart bit-exactly from the latest valid snapshot in --snapshot-dir",
    )
    train.add_argument(
        "--detect-anomaly",
        action="store_true",
        help=(
            "debug mode: check every tape op's forward output and backward "
            "gradient for NaN/inf; the first hit fails with the culprit op, "
            "its shapes, and the creation site (slower — per-op bookkeeping)"
        ),
    )
    train.add_argument(
        "--overflow-policy",
        choices=["skip", "rollback", "raise"],
        default="rollback",
        help=(
            "reaction to a non-finite loss/gradient: 'skip' quarantines the "
            "batch and keeps training (escalates after repeated hits), "
            "'rollback' (default) lets --max-retries restore a snapshot, "
            "'raise' fails immediately even with snapshots configured"
        ),
    )
    train.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help=(
            "divergence-recovery budget: on a non-finite loss, roll back to "
            "the last good snapshot with a halved learning rate up to this "
            "many times (default 0 = fail fast)"
        ),
    )
    train.add_argument(
        "--telemetry-dir",
        help=(
            "append a structured JSONL event trace (training gauges, span "
            "tree, health sentinels) to <dir>/trace.jsonl; resumed runs "
            "continue the same trace without gaps"
        ),
    )
    train.add_argument(
        "--log-every",
        type=int,
        default=0,
        help="emit a per-batch progress line every N batches (0 = per-epoch only)",
    )
    train.add_argument(
        "--elastic",
        action="store_true",
        help=(
            "train on the elastic multiprocess runtime: a coordinator "
            "supervises gradient workers with heartbeats, restarts or "
            "retires dead ones, and degrades to inline computation rather "
            "than dying; bit-identical parameters at any worker count"
        ),
    )
    train.add_argument(
        "--workers",
        type=int,
        help=(
            "gradient worker processes for --elastic (implies --elastic; "
            "default 2; 0 computes inline in the coordinator)"
        ),
    )
    train.add_argument(
        "--worker-timeout",
        type=float,
        default=30.0,
        help=(
            "seconds without a worker heartbeat before the supervisor "
            "declares it dead and re-shards its micro-batches"
        ),
    )
    _add_fusion_flag(train)
    train.set_defaults(handler=_cmd_train)

    evaluate = subparsers.add_parser("evaluate", help="score a saved bundle")
    _add_data_flags(evaluate)
    evaluate.add_argument("--bundle", required=True)
    evaluate.add_argument("--beam-size", type=int, default=3)
    evaluate.add_argument("--max-length", type=int, default=24)
    evaluate.add_argument("--num-examples", type=int, default=0, help="use only the last N examples")
    evaluate.add_argument(
        "--telemetry-dir",
        help="append decode/eval telemetry to <dir>/trace.jsonl",
    )
    _add_fusion_flag(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    generate = subparsers.add_parser("generate", help="generate questions for sentences")
    generate.add_argument("--bundle", required=True)
    generate.add_argument("--input", help="file with one sentence per line (default: stdin)")
    generate.add_argument("--beam-size", type=int, default=3)
    generate.add_argument("--max-length", type=int, default=24)
    _add_fusion_flag(generate)
    generate.set_defaults(handler=_cmd_generate)

    serve = subparsers.add_parser(
        "serve", help="hardened inference service over sentences (file or stdin)"
    )
    serve.add_argument("--bundle", required=True)
    serve.add_argument("--input", help="file with one sentence per line (default: stdin)")
    serve.add_argument("--beam-size", type=int, default=3)
    serve.add_argument("--max-length", type=int, default=24)
    serve.add_argument("--deadline", type=float, default=5.0, help="per-request seconds")
    serve.add_argument(
        "--batching",
        default="continuous",
        choices=["continuous", "static"],
        help="continuous = step-level frontier engine; static = MicroBatcher fallback",
    )
    serve.add_argument("--max-batch", type=int, default=8, help="static batching group size")
    serve.add_argument("--queue-limit", type=int, default=32)
    serve.add_argument(
        "--max-rows", type=int, default=12,
        help="continuous batching: frontier row budget (a request uses beam-size rows)",
    )
    serve.add_argument(
        "--admit-per-step", type=int, default=4,
        help="continuous batching: max admissions per decode step",
    )
    serve.add_argument(
        "--cache-size", type=int, default=128,
        help="encoder-state cache capacity (0 disables the cache)",
    )
    serve.add_argument("--max-unk-density", type=float, default=0.8)
    serve.add_argument(
        "--pool-workers",
        type=int,
        default=0,
        help=(
            "serve through a supervised multi-process decode pool: N forked "
            "workers share the read-only weights, dead workers restart with "
            "backoff and their in-flight requests re-dispatch to survivors "
            "(0 = single-process serving)"
        ),
    )
    serve.add_argument(
        "--reload-on-hup",
        action="store_true",
        help=(
            "hot-reload the bundle's checkpoint on SIGHUP without dropping "
            "traffic (pool: prepare/commit handshake across workers; "
            "single-process: in-place swap between requests)"
        ),
    )
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="chaos mode: per-request probability of each injected fault kind",
    )
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument(
        "--telemetry-dir",
        help="append serving telemetry to <dir>/trace.jsonl",
    )
    _add_fusion_flag(serve)
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``acnn`` console script."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
