"""Model checkpointing: parameters as .npz plus JSON metadata."""

from __future__ import annotations

import json
import os

from repro.nn.module import Module
from repro.tensor.serialization import load_arrays, save_arrays

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    metadata: dict | None = None,
) -> None:
    """Write ``<path>.npz`` (parameters) and ``<path>.json`` (metadata)."""
    base = os.fspath(path)
    save_arrays(base + ".npz", model.state_dict())
    with open(base + ".json", "w", encoding="utf-8") as handle:
        json.dump(metadata or {}, handle, indent=2)


def load_checkpoint(path: str | os.PathLike, model: Module) -> dict:
    """Restore parameters into ``model``; returns the stored metadata.

    Raises the usual :meth:`Module.load_state_dict` errors on any mismatch,
    so loading a checkpoint into the wrong architecture fails loudly.
    """
    base = os.fspath(path)
    model.load_state_dict(load_arrays(base + ".npz"))
    meta_path = base + ".json"
    if os.path.exists(meta_path):
        with open(meta_path, encoding="utf-8") as handle:
            return json.load(handle)
    return {}
