"""Model checkpointing: parameters as .npz plus JSON metadata.

The two files are written as a *unit* under the atomic-rename scheme: the
``.npz`` is published first (atomically), then the ``.json`` — which records
the SHA-256 of the exact ``.npz`` generation it belongs to — is published
atomically as the commit point. A crash at any instant leaves either the
previous complete generation or the new one; if the two files ever disagree
(e.g. a kill landed between the renames), :func:`load_checkpoint` detects
the digest mismatch and raises :class:`CheckpointCorrupted` rather than
silently pairing parameters with the wrong metadata.
"""

from __future__ import annotations

import json
import os

from repro.nn.module import Module
from repro.tensor.serialization import (
    CheckpointCorrupted,
    atomic_write,
    file_digest,
    load_arrays,
    save_arrays,
)

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointCorrupted"]

_FORMAT_VERSION = 2


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    metadata: dict | None = None,
) -> None:
    """Write ``<path>.npz`` (parameters) and ``<path>.json`` (metadata).

    Both files are written atomically; the JSON carries the digest of the
    ``.npz`` generation so the pair loads as a unit.
    """
    base = os.fspath(path)
    npz_path = base + ".npz"
    save_arrays(npz_path, model.state_dict())
    payload = {
        "format": _FORMAT_VERSION,
        "metadata": metadata or {},
        "npz_sha256": file_digest(npz_path),
    }
    atomic_write(
        base + ".json",
        lambda handle: json.dump(payload, handle, indent=2),
        binary=False,
    )


def load_checkpoint(path: str | os.PathLike, model: Module) -> dict:
    """Restore parameters into ``model``; returns the stored metadata.

    Raises
    ------
    CheckpointCorrupted
        If either file is damaged or the pair is torn (the ``.json`` does
        not belong to the ``.npz`` generation on disk).
    KeyError, ValueError
        From :meth:`Module.load_state_dict` on any architecture mismatch,
        so loading a checkpoint into the wrong model fails loudly.
    """
    base = os.fspath(path)
    npz_path = base + ".npz"
    meta_path = base + ".json"
    metadata: dict = {}
    if os.path.exists(meta_path):
        try:
            with open(meta_path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, OSError) as exc:
            raise CheckpointCorrupted(f"unreadable checkpoint metadata {meta_path}: {exc}") from exc
        if isinstance(payload, dict) and payload.get("format") == _FORMAT_VERSION:
            expected = payload.get("npz_sha256")
            if expected is not None:
                if not os.path.exists(npz_path):
                    raise CheckpointCorrupted(
                        f"checkpoint metadata {meta_path} present but {npz_path} is missing"
                    )
                actual = file_digest(npz_path)
                if actual != expected:
                    raise CheckpointCorrupted(
                        f"torn checkpoint {base}: metadata records npz digest "
                        f"{expected[:12]}… but archive on disk has {actual[:12]}…"
                    )
            metadata = payload.get("metadata", {})
        else:
            # Pre-versioning checkpoints stored the metadata dict directly.
            metadata = payload if isinstance(payload, dict) else {}
    model.load_state_dict(load_arrays(npz_path))
    return metadata
