"""Self-contained trained-model bundles.

A checkpoint alone cannot be used for generation: the vocabularies and the
model hyperparameters are needed to rebuild the network and interpret ids.
:class:`ModelBundle` packages all three and round-trips through a directory:

    bundle.save("runs/acnn")        # config.json, *.vocab.json, model.npz/json
    bundle = ModelBundle.load("runs/acnn")

This is what the CLI's ``train`` writes and ``generate``/``evaluate`` read.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.data.vocabulary import Vocabulary
from repro.models import build_model
from repro.models.base import QuestionGenerator
from repro.models.config import ModelConfig
from repro.training.checkpoint import load_checkpoint, save_checkpoint

__all__ = ["ModelBundle"]

_CONFIG_FILE = "config.json"
_ENCODER_VOCAB_FILE = "encoder.vocab.json"
_DECODER_VOCAB_FILE = "decoder.vocab.json"
_CHECKPOINT_BASE = "model"


@dataclass
class ModelBundle:
    """A trained model plus everything needed to use it."""

    model: QuestionGenerator
    encoder_vocab: Vocabulary
    decoder_vocab: Vocabulary
    family: str
    model_config: ModelConfig
    model_kwargs: dict
    metadata: dict

    # ------------------------------------------------------------------
    def save(self, directory: str | os.PathLike) -> None:
        """Write the bundle to ``directory`` (created if missing)."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        payload = {
            "family": self.family,
            "model_config": {
                "embedding_dim": self.model_config.embedding_dim,
                "hidden_size": self.model_config.hidden_size,
                "num_layers": self.model_config.num_layers,
                "dropout": self.model_config.dropout,
                "seed": self.model_config.seed,
            },
            "model_kwargs": self.model_kwargs,
            "metadata": self.metadata,
        }
        with open(os.path.join(directory, _CONFIG_FILE), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        self.encoder_vocab.save(os.path.join(directory, _ENCODER_VOCAB_FILE))
        self.decoder_vocab.save(os.path.join(directory, _DECODER_VOCAB_FILE))
        save_checkpoint(os.path.join(directory, _CHECKPOINT_BASE), self.model, self.metadata)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: str | os.PathLike) -> "ModelBundle":
        """Rebuild a bundle saved by :meth:`save`."""
        directory = os.fspath(directory)
        config_path = os.path.join(directory, _CONFIG_FILE)
        if not os.path.exists(config_path):
            raise FileNotFoundError(f"{directory} does not contain a model bundle ({_CONFIG_FILE} missing)")
        with open(config_path, encoding="utf-8") as handle:
            payload = json.load(handle)

        encoder_vocab = Vocabulary.load(os.path.join(directory, _ENCODER_VOCAB_FILE))
        decoder_vocab = Vocabulary.load(os.path.join(directory, _DECODER_VOCAB_FILE))
        model_config = ModelConfig(**payload["model_config"])
        model = build_model(
            payload["family"],
            model_config,
            len(encoder_vocab),
            len(decoder_vocab),
            **payload["model_kwargs"],
        )
        metadata = load_checkpoint(os.path.join(directory, _CHECKPOINT_BASE), model)
        return cls(
            model=model,
            encoder_vocab=encoder_vocab,
            decoder_vocab=decoder_vocab,
            family=payload["family"],
            model_config=model_config,
            model_kwargs=payload["model_kwargs"],
            metadata=metadata,
        )
