"""Training harness: trainer, history, checkpoints, fault tolerance."""

from repro.training.bundle import ModelBundle
from repro.training.checkpoint import CheckpointCorrupted, load_checkpoint, save_checkpoint
from repro.training.elastic import (
    ElasticConfig,
    ElasticTrainer,
    WorkerFaultPlan,
    compute_microbatch,
    mask_worker_signals,
)
from repro.training.history import EpochRecord, RecoveryEvent, TrainingHistory
from repro.training.overflow import BatchQuarantined, DynamicLossScaler, OverflowPolicy
from repro.training.resilience import ResilienceConfig, SnapshotStore
from repro.training.sharding import (
    ShardPlan,
    derive_rng,
    derive_seed_sequence,
    epoch_batch_plan,
    reseed_model_rngs,
    tree_reduce,
    tree_reduce_gradients,
)
from repro.training.trainer import (
    EmptyEvaluationError,
    Trainer,
    TrainerConfig,
    TrainingDiverged,
    TrainingInterrupted,
    evaluate_mean_loss,
)

__all__ = [
    "ModelBundle",
    "ElasticConfig",
    "ElasticTrainer",
    "WorkerFaultPlan",
    "compute_microbatch",
    "mask_worker_signals",
    "ShardPlan",
    "derive_rng",
    "derive_seed_sequence",
    "epoch_batch_plan",
    "reseed_model_rngs",
    "tree_reduce",
    "tree_reduce_gradients",
    "evaluate_mean_loss",
    "CheckpointCorrupted",
    "load_checkpoint",
    "save_checkpoint",
    "EpochRecord",
    "RecoveryEvent",
    "TrainingHistory",
    "BatchQuarantined",
    "DynamicLossScaler",
    "OverflowPolicy",
    "ResilienceConfig",
    "SnapshotStore",
    "EmptyEvaluationError",
    "Trainer",
    "TrainerConfig",
    "TrainingDiverged",
    "TrainingInterrupted",
]
