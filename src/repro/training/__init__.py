"""Training harness: trainer, history, checkpoints."""

from repro.training.bundle import ModelBundle
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.history import EpochRecord, TrainingHistory
from repro.training.trainer import Trainer, TrainerConfig, TrainingDiverged

__all__ = [
    "ModelBundle",
    "load_checkpoint",
    "save_checkpoint",
    "EpochRecord",
    "TrainingHistory",
    "Trainer",
    "TrainerConfig",
    "TrainingDiverged",
]
