"""Training harness: trainer, history, checkpoints, fault tolerance."""

from repro.training.bundle import ModelBundle
from repro.training.checkpoint import CheckpointCorrupted, load_checkpoint, save_checkpoint
from repro.training.history import EpochRecord, RecoveryEvent, TrainingHistory
from repro.training.overflow import BatchQuarantined, DynamicLossScaler, OverflowPolicy
from repro.training.resilience import ResilienceConfig, SnapshotStore
from repro.training.trainer import (
    EmptyEvaluationError,
    Trainer,
    TrainerConfig,
    TrainingDiverged,
    TrainingInterrupted,
)

__all__ = [
    "ModelBundle",
    "CheckpointCorrupted",
    "load_checkpoint",
    "save_checkpoint",
    "EpochRecord",
    "RecoveryEvent",
    "TrainingHistory",
    "BatchQuarantined",
    "DynamicLossScaler",
    "OverflowPolicy",
    "ResilienceConfig",
    "SnapshotStore",
    "EmptyEvaluationError",
    "Trainer",
    "TrainerConfig",
    "TrainingDiverged",
    "TrainingInterrupted",
]
