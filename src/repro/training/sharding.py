"""Deterministic sharding for elastic data-parallel training.

Three contracts make a multiprocess run reproduce a single-process run
bit for bit (see docs/architecture.md, "Elastic data-parallel training"):

1. **Global order is a pure function of the run seed.** The batch
   composition of epoch *e* is derived statelessly from
   ``(run_seed, "batch_order", e)`` — no generator state is carried across
   epochs or processes, so any world size (and any worker, after any
   membership change) computes the identical global micro-batch sequence.
2. **Per-micro-batch RNG streams.** Dropout and scheduled sampling draw
   from model-owned generators; before computing micro-batch *g* of epoch
   *e*, every generator is reseeded from ``(run_seed, "microbatch", e, g)``
   (one spawned child per generator, in sorted module-path order). The
   forward/backward of a micro-batch is therefore a function of
   ``(parameters, micro-batch index)`` alone — *which worker* runs it is
   immaterial.
3. **Pinned reduction order.** Gradient contributions are combined with
   :func:`tree_reduce` — pairwise sums over the list sorted by micro-batch
   index, never ``sum()`` over an arrival-ordered list — so the
   floating-point result is identical at every world size.

:class:`ShardPlan` maps micro-batch slots to live workers; membership
changes recompute the mapping but never the global order, so degraded
runs stay on the same example sequence.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.batching import plan_batches

__all__ = [
    "derive_seed_sequence",
    "derive_rng",
    "epoch_batch_plan",
    "reseed_model_rngs",
    "ShardPlan",
    "tree_reduce",
    "tree_reduce_gradients",
]


def _key_word(part: int | str) -> int:
    """Stable 32-bit word for a seed-key component (no builtin ``hash``)."""
    if isinstance(part, bool):  # bool is an int subclass; be explicit
        return int(part)
    if isinstance(part, (int, np.integer)):
        return int(part) & 0xFFFFFFFF
    digest = hashlib.sha256(str(part).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def derive_seed_sequence(run_seed: int, *key: int | str) -> np.random.SeedSequence:
    """A ``SeedSequence`` at a named point of the run's derivation tree.

    Purely a function of ``(run_seed, key)``: every process — coordinator,
    worker, a worker restarted three times — derives the identical stream
    for the identical key. String components are hashed with SHA-256, so
    the mapping does not depend on ``PYTHONHASHSEED``.
    """
    return np.random.SeedSequence(
        entropy=int(run_seed) & 0xFFFFFFFFFFFFFFFF,
        spawn_key=tuple(_key_word(part) for part in key),
    )


def derive_rng(run_seed: int, *key: int | str) -> np.random.Generator:
    """A fresh Generator seeded from :func:`derive_seed_sequence`."""
    return np.random.default_rng(derive_seed_sequence(run_seed, *key))


def epoch_batch_plan(
    lengths: Sequence[int],
    batch_size: int,
    run_seed: int,
    epoch: int,
    bucket_multiplier: int = 16,
    shuffle: bool = True,
) -> tuple[tuple[int, ...], ...]:
    """The global micro-batch sequence of one epoch, statelessly derived.

    Same bucketing/shuffling as :class:`~repro.data.batching.BatchIterator`
    but fed by a generator derived from ``(run_seed, epoch)``, so the plan
    can be recomputed identically by any process at any time — the property
    elastic re-sharding relies on.
    """
    rng = derive_rng(run_seed, "batch_order", epoch)
    plan = plan_batches(
        lengths, batch_size, rng, shuffle=shuffle, bucket_multiplier=bucket_multiplier
    )
    return tuple(tuple(int(i) for i in indices) for indices in plan)


def reseed_model_rngs(model, run_seed: int, epoch: int, microbatch: int) -> None:
    """Reseed every model-owned Generator for one micro-batch.

    Generators are enumerated in sorted module-path order and each receives
    its own spawned child of ``(run_seed, "microbatch", epoch, microbatch)``,
    so the dropout/sampling streams of a micro-batch do not depend on which
    worker — or how many workers — the run is using.
    """
    from repro.training.resilience import _iter_module_generators

    generators = sorted(_iter_module_generators(model), key=lambda item: item[0])
    if not generators:
        return
    root = derive_seed_sequence(run_seed, "microbatch", epoch, microbatch)
    for (_, generator), child in zip(generators, root.spawn(len(generators))):
        generator.bit_generator.state = np.random.default_rng(child).bit_generator.state


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Assignment of micro-batch slots to the current live membership.

    The global micro-batch order never changes; only the slot → rank
    mapping is recomputed when membership does. Round-robin over the
    sorted live ranks keeps per-step load within one micro-batch of even.
    """

    members: tuple[int, ...]
    """Live worker ranks, sorted ascending."""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.members)))
        if ordered != self.members:
            raise ValueError(f"members must be sorted and unique, got {self.members}")

    @property
    def world_size(self) -> int:
        return len(self.members)

    def owner_of(self, slot: int) -> int:
        """Rank responsible for global micro-batch slot ``slot``."""
        if not self.members:
            raise ValueError("empty shard plan has no owners")
        return self.members[slot % len(self.members)]

    def assignments(self, slots: Sequence[int]) -> Mapping[int, tuple[int, ...]]:
        """Slots grouped by owning rank (ranks with no slots omitted)."""
        grouped: dict[int, list[int]] = {}
        for slot in slots:
            grouped.setdefault(self.owner_of(slot), []).append(slot)
        return {rank: tuple(assigned) for rank, assigned in grouped.items()}

    def without(self, rank: int) -> "ShardPlan":
        """Membership after ``rank`` is retired (degraded mode)."""
        survivors = tuple(r for r in self.members if r != rank)
        return ShardPlan(survivors)


# ----------------------------------------------------------------------
# Deterministic reduction
# ----------------------------------------------------------------------
def tree_reduce(values: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise tree sum in the order given — THE pinned reduction.

    Floating-point addition is not associative, so a gradient exchange
    that summed contributions in arrival order would drift between world
    sizes. Every reduction in the elastic runtime instead sorts its
    contributions by global micro-batch index and folds them pairwise:
    ``(a+b) + (c+d)`` for four, left-to-right rounds for any length. The
    result is a pure function of the ordered inputs — proven equal across
    world sizes and arrival orders by test.
    """
    items = [np.asarray(value) for value in values]
    if not items:
        raise ValueError("tree_reduce of an empty sequence")
    while len(items) > 1:
        folded = [items[i] + items[i + 1] for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            folded.append(items[-1])
        items = folded
    return items[0]


def tree_reduce_gradients(
    contributions: Sequence[Sequence[np.ndarray]],
) -> list[np.ndarray]:
    """Per-parameter :func:`tree_reduce` across gradient contributions.

    ``contributions[k][j]`` is the gradient of parameter *j* from the
    micro-batch in position *k* of the pinned order; the caller sorts by
    global micro-batch index before calling.
    """
    if not contributions:
        raise ValueError("tree_reduce_gradients of an empty sequence")
    num_params = len(contributions[0])
    for contribution in contributions:
        if len(contribution) != num_params:
            raise ValueError(
                f"gradient contributions disagree on parameter count: "
                f"{len(contribution)} vs {num_params}"
            )
    return [
        tree_reduce([contribution[j] for contribution in contributions])
        for j in range(num_params)
    ]
